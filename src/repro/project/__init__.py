"""Project execution: the N2G schedule simulator and change stream."""

from .schedule import (
    ChangeEvent,
    FlowTask,
    ProjectResult,
    REWORK_FRACTION,
    n2g_task_network,
    paper_change_stream,
    simulate_project,
)

__all__ = [
    "ChangeEvent",
    "FlowTask",
    "ProjectResult",
    "REWORK_FRACTION",
    "n2g_task_network",
    "paper_change_stream",
    "simulate_project",
]
