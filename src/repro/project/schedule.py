"""Netlist-to-GDSII project simulation (experiment E11 schedule half).

Section 3: "It took three months for a team of six engineers to
complete the Netlist-to-GDSII service.  During the course, there are
many changes to the spec and netlist."  The simulator models the N2G
flow as a task network executed by a bounded engineer pool, with the
paper's change stream (:func:`repro.eco.paper_change_counts`)
arriving during execution and triggering rework on the affected
tasks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..eco import CHANGE_EFFORT_DAYS, ChangeKind, paper_change_counts


@dataclass(frozen=True)
class FlowTask:
    """One task of the netlist-to-GDSII flow."""

    name: str
    effort_person_days: float
    predecessors: tuple[str, ...] = ()
    #: Which change kinds force partial rework of this task.
    reworked_by: tuple[ChangeKind, ...] = ()


def n2g_task_network() -> list[FlowTask]:
    """The standard 2004-era Netlist-to-GDSII flow."""
    spec = ChangeKind.SPEC_CHANGE
    netlist = ChangeKind.NETLIST_ECO
    timing = ChangeKind.TIMING_ECO
    pins = ChangeKind.PIN_ASSIGNMENT
    return [
        FlowTask("netlist_intake", 8, (), (spec, netlist)),
        FlowTask("dft_insertion", 10, ("netlist_intake",), (spec, netlist)),
        FlowTask("floorplan", 12, ("netlist_intake",), (spec, pins)),
        FlowTask("power_plan", 8, ("floorplan",), (pins,)),
        FlowTask("placement", 16, ("floorplan", "dft_insertion"),
                 (spec, netlist)),
        FlowTask("cts", 10, ("placement",), (spec,)),
        FlowTask("routing", 18, ("cts",), (spec, netlist, timing)),
        FlowTask("sta_signoff", 12, ("routing",), (spec, netlist, timing)),
        FlowTask("formal_verification", 8, ("routing",), (spec, netlist)),
        FlowTask("drc_lvs", 12, ("routing",), ()),
        FlowTask("pin_assignment", 6, ("floorplan",), (pins,)),
        FlowTask("tapeout_prep", 6,
                 ("sta_signoff", "formal_verification", "drc_lvs",
                  "pin_assignment"), ()),
    ]


@dataclass(frozen=True)
class ChangeEvent:
    """One mid-project change arriving at a given day."""

    day: float
    kind: ChangeKind
    description: str


def paper_change_stream(
    *, project_days: float = 90.0, seed: int = 0
) -> list[ChangeEvent]:
    """The paper's 29 changes spread over the project window.

    Spec changes cluster early (they come from the system customer);
    timing ECOs cluster late (they follow routing); netlist ECOs and
    pin versions spread throughout.
    """
    rng = np.random.default_rng(seed)
    events: list[ChangeEvent] = []
    windows = {
        ChangeKind.SPEC_CHANGE: (0.05, 0.45),
        ChangeKind.NETLIST_ECO: (0.10, 0.85),
        ChangeKind.TIMING_ECO: (0.55, 0.95),
        ChangeKind.PIN_ASSIGNMENT: (0.05, 0.90),
    }
    for kind, count in paper_change_counts().items():
        low, high = windows[kind]
        for index in range(count):
            day = float(rng.uniform(low, high)) * project_days
            events.append(
                ChangeEvent(day, kind, f"{kind.value} #{index + 1}")
            )
    events.sort(key=lambda e: e.day)
    return events


@dataclass
class ProjectResult:
    """Outcome of one project simulation."""

    duration_days: float
    base_effort_person_days: float
    rework_effort_person_days: float
    engineers: int
    changes_absorbed: int
    task_finish_days: dict[str, float] = field(default_factory=dict)

    @property
    def total_effort_person_days(self) -> float:
        return self.base_effort_person_days + self.rework_effort_person_days

    @property
    def duration_months(self) -> float:
        return self.duration_days / 30.0

    @property
    def rework_fraction(self) -> float:
        if self.total_effort_person_days == 0:
            return 0.0
        return self.rework_effort_person_days / self.total_effort_person_days

    def format_report(self) -> str:
        return "\n".join(
            [
                "Netlist-to-GDSII project",
                f"  engineers : {self.engineers}",
                f"  duration  : {self.duration_days:.0f} days"
                f" ({self.duration_months:.1f} months)",
                f"  effort    : {self.total_effort_person_days:.0f}"
                f" person-days ({self.rework_fraction * 100:.0f}% rework)",
                f"  changes   : {self.changes_absorbed} absorbed",
            ]
        )


#: Fraction of a task's effort redone when a change hits it after
#: (or during) its execution.
REWORK_FRACTION = 0.20


def simulate_project(
    *,
    engineers: int = 6,
    tasks: list[FlowTask] | None = None,
    changes: list[ChangeEvent] | None = None,
    seed: int = 0,
) -> ProjectResult:
    """List-scheduling simulation of the N2G flow with change rework.

    Tasks run when their predecessors are done and an engineer is
    free; each task occupies one engineer (the flow's tool runs are
    serialised per block).  A change event re-queues a rework stub for
    every completed-or-running task it touches, plus its own direct
    effort.
    """
    if engineers < 1:
        raise ValueError("need at least one engineer")
    tasks = tasks if tasks is not None else n2g_task_network()
    if changes is None:
        changes = paper_change_stream(seed=seed)
    by_name = {t.name: t for t in tasks}

    finished: dict[str, float] = {}
    remaining = {t.name for t in tasks}
    #: (finish_day, engineer_free_day) heaps
    engineer_free = [0.0] * engineers
    heapq.heapify(engineer_free)
    pending_changes = sorted(changes, key=lambda e: e.day)
    base_effort = sum(t.effort_person_days for t in tasks)
    rework_effort = 0.0
    absorbed = 0
    current_day = 0.0
    rework_queue: list[tuple[str, float]] = []  # (task name, extra days)

    def ready_tasks() -> list[FlowTask]:
        return [
            by_name[name]
            for name in sorted(remaining)
            if all(p in finished for p in by_name[name].predecessors)
        ]

    guard = 0
    while remaining or rework_queue:
        guard += 1
        if guard > 10_000:
            raise RuntimeError("project simulation did not converge")
        runnable = ready_tasks()
        if not runnable and not rework_queue:
            raise RuntimeError("task network deadlock")
        # Dispatch: pick the earliest-free engineer.
        free_day = heapq.heappop(engineer_free)
        start = max(free_day, current_day)
        if rework_queue:
            name, extra = rework_queue.pop(0)
            duration = extra
        else:
            task = runnable[0]
            remaining.discard(task.name)
            name, duration = task.name, task.effort_person_days
        # Predecessor constraint: cannot start before preds finished.
        if name in by_name and name not in finished:
            pred_done = max(
                (finished.get(p, 0.0) for p in by_name[name].predecessors),
                default=0.0,
            )
            start = max(start, pred_done)
        finish = start + duration
        finished[name] = max(finished.get(name, 0.0), finish)
        heapq.heappush(engineer_free, finish)
        current_day = min(engineer_free)

        # Absorb any changes that arrived by now.
        while pending_changes and pending_changes[0].day <= current_day:
            event = pending_changes.pop(0)
            absorbed += 1
            direct = CHANGE_EFFORT_DAYS[event.kind]
            rework_effort += direct
            rework_queue.append((f"change:{event.description}", direct))
            for task in tasks:
                if event.kind in task.reworked_by and task.name in finished:
                    extra = task.effort_person_days * REWORK_FRACTION
                    rework_effort += extra
                    rework_queue.append((task.name, extra))

    # Late changes after all tasks done still need absorption.
    for event in pending_changes:
        absorbed += 1
        direct = CHANGE_EFFORT_DAYS[event.kind]
        rework_effort += direct
        free_day = heapq.heappop(engineer_free)
        heapq.heappush(engineer_free, max(free_day, event.day) + direct)

    duration = max(engineer_free)
    return ProjectResult(
        duration_days=duration,
        base_effort_person_days=base_effort,
        rework_effort_person_days=rework_effort,
        engineers=engineers,
        changes_absorbed=absorbed,
        task_finish_days=dict(finished),
    )
