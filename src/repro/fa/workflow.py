"""Failure analysis of field returns (experiment E10).

Section 3: "We have been requested to perform failure analysis on 20
returned chips that have pins shorted to GND.  After checking
substrate delaminating and popped-corner using scanning acoustics
tomography, we found no abnormality.  Finally, by sinking 400mA of
current to the corresponding pin of a good chip we concluded that the
failure was due to a system board bug."

The module models that investigation as an executable elimination
workflow: a population of returned units carries a hidden root cause;
each analysis step produces evidence that eliminates hypotheses until
one remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class RootCause(Enum):
    """Hypothesis space for a pin-short field return."""

    PACKAGE_DELAMINATION = "package_delamination"
    POPPED_CORNER = "popped_corner"
    DIE_ESD_DAMAGE = "die_esd_damage"
    WEAK_DRIVER_OVERSTRESS = "weak_driver_overstress"
    SYSTEM_BOARD_BUG = "system_board_bug"


@dataclass(frozen=True)
class FieldReturn:
    """One returned unit with its (hidden) truth."""

    serial: str
    reported_symptom: str
    true_cause: RootCause
    shorted_pin: str


def generate_returns(
    *,
    count: int = 20,
    true_cause: RootCause = RootCause.SYSTEM_BOARD_BUG,
    pin: str = "lcd_d3",
    seed: int = 0,
) -> list[FieldReturn]:
    """The paper's return population: 20 units, pins shorted to GND."""
    rng = np.random.default_rng(seed)
    return [
        FieldReturn(
            serial=f"RU{rng.integers(10_000, 99_999)}",
            reported_symptom="pin shorted to GND",
            true_cause=true_cause,
            shorted_pin=pin,
        )
        for _ in range(count)
    ]


# ---------------------------------------------------------------------------
# Analysis instruments
# ---------------------------------------------------------------------------

@dataclass
class SatInspection:
    """Scanning acoustic tomography result for one unit."""

    serial: str
    delamination: bool
    popped_corner: bool

    @property
    def abnormal(self) -> bool:
        return self.delamination or self.popped_corner


def scanning_acoustic_tomography(
    unit: FieldReturn, rng: np.random.Generator
) -> SatInspection:
    """C-SAM scan: reveals package-level damage if that is the truth."""
    if unit.true_cause is RootCause.PACKAGE_DELAMINATION:
        return SatInspection(unit.serial, delamination=True,
                             popped_corner=False)
    if unit.true_cause is RootCause.POPPED_CORNER:
        return SatInspection(unit.serial, delamination=False,
                             popped_corner=True)
    # Healthy package; tiny false-positive rate of the instrument.
    false_positive = rng.random() < 0.01
    return SatInspection(unit.serial, delamination=false_positive,
                         popped_corner=False)


@dataclass
class CurrentSinkResult:
    """Outcome of forcing current into a pin of a known-good chip."""

    pin: str
    current_ma: float
    survived: bool
    pin_resistance_ohm: float


def current_sink_test(
    pin: str,
    current_ma: float,
    *,
    weak_driver: bool = False,
    rng: np.random.Generator,
) -> CurrentSinkResult:
    """Sink ``current_ma`` into ``pin`` of a good chip.

    A healthy 0.25 um output pad withstands hundreds of mA transient
    sink without latching or fusing; a genuinely weak/overstressed
    driver would fail well below 400 mA.
    """
    withstand_ma = rng.normal(150.0 if weak_driver else 650.0, 40.0)
    survived = current_ma < withstand_ma
    resistance = float(rng.normal(1.8, 0.2)) if survived else 0.05
    return CurrentSinkResult(pin, current_ma, survived, resistance)


def esd_signature_scan(unit: FieldReturn, rng: np.random.Generator) -> bool:
    """Curve-trace for ESD damage signature; True = damage found."""
    if unit.true_cause is RootCause.DIE_ESD_DAMAGE:
        return True
    return bool(rng.random() < 0.02)


# ---------------------------------------------------------------------------
# The elimination workflow
# ---------------------------------------------------------------------------

@dataclass
class FaStep:
    name: str
    observation: str
    eliminated: list[RootCause] = field(default_factory=list)


@dataclass
class FaReport:
    """Full failure-analysis dossier."""

    units_analysed: int
    steps: list[FaStep] = field(default_factory=list)
    conclusion: RootCause | None = None

    def format_report(self) -> str:
        lines = [f"Failure analysis of {self.units_analysed} returns"]
        for step in self.steps:
            lines.append(f"  [{step.name}] {step.observation}")
            for cause in step.eliminated:
                lines.append(f"      eliminates: {cause.value}")
        if self.conclusion:
            lines.append(f"  CONCLUSION: {self.conclusion.value}")
        return "\n".join(lines)


def run_failure_analysis(
    returns: list[FieldReturn],
    *,
    seed: int = 0,
    sink_current_ma: float = 400.0,
) -> FaReport:
    """Execute the paper's FA procedure on a return population."""
    if not returns:
        raise ValueError("no returned units to analyse")
    rng = np.random.default_rng(seed)
    report = FaReport(units_analysed=len(returns))
    hypotheses = set(RootCause)

    # Step 1: C-SAM on every unit -- package damage?
    scans = [scanning_acoustic_tomography(u, rng) for u in returns]
    abnormal = sum(1 for s in scans if s.abnormal)
    if abnormal <= max(1, len(returns) // 10):  # instrument noise floor
        step = FaStep(
            "scanning acoustic tomography",
            f"{abnormal}/{len(returns)} units show any package anomaly "
            "-- no systematic delamination or popped corner",
            eliminated=[RootCause.PACKAGE_DELAMINATION,
                        RootCause.POPPED_CORNER],
        )
        hypotheses -= {RootCause.PACKAGE_DELAMINATION,
                       RootCause.POPPED_CORNER}
    else:
        step = FaStep(
            "scanning acoustic tomography",
            f"{abnormal}/{len(returns)} units show package damage",
            eliminated=[],
        )
    report.steps.append(step)

    # Step 2: ESD signature curve tracing on the returned units.
    esd_hits = sum(1 for u in returns if esd_signature_scan(u, rng))
    if esd_hits <= max(1, len(returns) // 10):
        report.steps.append(
            FaStep(
                "ESD curve trace",
                f"{esd_hits}/{len(returns)} units show an ESD signature",
                eliminated=[RootCause.DIE_ESD_DAMAGE],
            )
        )
        hypotheses.discard(RootCause.DIE_ESD_DAMAGE)

    # Step 3: the decisive experiment -- sink 400 mA into the pin of a
    # KNOWN GOOD chip.  If the good chip shrugs it off, the driver is
    # not marginal and the short seen in the field is external.
    sink = current_sink_test(
        returns[0].shorted_pin, sink_current_ma, weak_driver=False, rng=rng
    )
    if sink.survived:
        report.steps.append(
            FaStep(
                "current sink on good chip",
                f"good chip sinks {sink_current_ma:.0f} mA on pin "
                f"{sink.pin} without damage "
                f"(pin resistance {sink.pin_resistance_ohm:.2f} ohm after)",
                eliminated=[RootCause.WEAK_DRIVER_OVERSTRESS],
            )
        )
        hypotheses.discard(RootCause.WEAK_DRIVER_OVERSTRESS)
    else:
        report.steps.append(
            FaStep(
                "current sink on good chip",
                f"good chip FAILED at {sink_current_ma:.0f} mA "
                f"-- driver is marginal",
                eliminated=[RootCause.SYSTEM_BOARD_BUG],
            )
        )
        hypotheses.discard(RootCause.SYSTEM_BOARD_BUG)

    if len(hypotheses) == 1:
        report.conclusion = next(iter(hypotheses))
    return report
