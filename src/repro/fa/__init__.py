"""Failure analysis of field returns."""

from .workflow import (
    CurrentSinkResult,
    FaReport,
    FaStep,
    FieldReturn,
    RootCause,
    SatInspection,
    current_sink_test,
    esd_signature_scan,
    generate_returns,
    run_failure_analysis,
    scanning_acoustic_tomography,
)

__all__ = [
    "CurrentSinkResult",
    "FaReport",
    "FaStep",
    "FieldReturn",
    "RootCause",
    "SatInspection",
    "current_sink_test",
    "esd_signature_scan",
    "generate_returns",
    "run_failure_analysis",
    "scanning_acoustic_tomography",
]
