"""Transaction-level system bus.

Section 2: "After all IP models are made ready, whole system
integration and verification is an even bigger challenge."  The
gate-level substrate covers block implementation; this package covers
*integration*: a memory-mapped system bus with address decoding,
arbitration, wait-states and error responses, to which the behavioural
IP models of :mod:`repro.soc.peripherals` attach.

The bus is deliberately simple (single outstanding transaction,
priority arbitration) -- it is the AMBA-ASB-class fabric a 2003 SoC
used -- but it is *checked*: overlapping address ranges, unmapped
accesses and slave errors are first-class, because those are the
integration bugs the paper's team hunted.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Protocol


class BusError(Exception):
    """Integration error: bad mapping or illegal access."""


class Response(Enum):
    """Bus transaction response code."""

    OKAY = "okay"
    ERROR = "error"
    DECODE_ERROR = "decode_error"


@dataclass
class Transaction:
    """One bus read or write."""

    master: str
    address: int
    is_write: bool
    data: int = 0
    response: Response = Response.OKAY
    read_data: int = 0
    wait_states: int = 0
    cycle_issued: int = 0


class Slave(Protocol):
    """Anything mappable onto the bus."""

    def read(self, offset: int) -> tuple[int, int]:
        """Return (data, wait_states)."""

    def write(self, offset: int, data: int) -> int:
        """Return wait_states."""


@dataclass(frozen=True)
class AddressRange:
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.base < 0:
            raise BusError("address range must have positive size")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class _Mapping:
    name: str
    window: AddressRange
    slave: Slave


class SystemBus:
    """Priority-arbitrated, memory-mapped transaction bus."""

    def __init__(self, name: str = "asb", *,
                 data_width_bits: int = 32) -> None:
        self.name = name
        self.data_width_bits = data_width_bits
        self._mappings: list[_Mapping] = []
        #: Masters in priority order (index 0 wins arbitration).
        self._masters: list[str] = []
        self.cycle = 0
        self.log: list[Transaction] = []

    # -- construction -----------------------------------------------------

    def attach_slave(self, name: str, base: int, size: int, slave: Slave,
                     *, allow_overlap: bool = False) -> None:
        """Map a slave; overlapping windows are an integration error
        unless explicitly allowed (they never should be)."""
        window = AddressRange(base, size)
        if not allow_overlap:
            for mapping in self._mappings:
                if mapping.window.overlaps(window):
                    raise BusError(
                        f"address window of {name!r} "
                        f"[{base:#x}..{window.end:#x}) overlaps "
                        f"{mapping.name!r}"
                    )
        self._mappings.append(_Mapping(name, window, slave))

    def register_master(self, name: str) -> None:
        if name in self._masters:
            raise BusError(f"duplicate master {name!r}")
        self._masters.append(name)

    def decode(self, address: int) -> _Mapping | None:
        for mapping in self._mappings:
            if mapping.window.contains(address):
                return mapping
        return None

    # -- transactions -------------------------------------------------------

    def _issue(self, master: str, address: int, is_write: bool,
               data: int = 0) -> Transaction:
        if master not in self._masters:
            raise BusError(f"unknown master {master!r}")
        txn = Transaction(master=master, address=address,
                          is_write=is_write, data=data,
                          cycle_issued=self.cycle)
        mapping = self.decode(address)
        if mapping is None:
            txn.response = Response.DECODE_ERROR
        else:
            offset = address - mapping.window.base
            try:
                if is_write:
                    txn.wait_states = mapping.slave.write(offset, data)
                else:
                    txn.read_data, txn.wait_states = mapping.slave.read(
                        offset
                    )
            except BusError:
                txn.response = Response.ERROR
        self.cycle += 1 + txn.wait_states
        self.log.append(txn)
        return txn

    def write(self, master: str, address: int, data: int) -> Transaction:
        """One write transaction (arbitration is implicit: calls are
        already serialised in master-priority order by the scheduler)."""
        return self._issue(master, address, True, data)

    def read(self, master: str, address: int) -> Transaction:
        """One read transaction."""
        return self._issue(master, address, False)

    # -- integration checks ------------------------------------------------

    def iter_windows(self) -> list[tuple[str, AddressRange, Slave]]:
        """The decode map as (name, window, slave) rows, base order.

        Public introspection surface for integration audits
        (:mod:`repro.lint.socmap`).
        """
        return [(m.name, m.window, m.slave)
                for m in sorted(self._mappings, key=lambda m:
                                (m.window.base, m.name))]

    @property
    def masters(self) -> tuple[str, ...]:
        """Registered masters in priority order."""
        return tuple(self._masters)

    def memory_map_report(self) -> str:
        lines = [f"Memory map of {self.name}"]
        for mapping in sorted(self._mappings, key=lambda m: m.window.base):
            lines.append(
                f"  {mapping.window.base:#010x}..{mapping.window.end:#010x}"
                f"  {mapping.name}"
            )
        return "\n".join(lines)

    def error_transactions(self) -> list[Transaction]:
        return [t for t in self.log if t.response is not Response.OKAY]

    def utilisation(self) -> dict[str, int]:
        """Bus cycles consumed per master."""
        usage: dict[str, int] = {m: 0 for m in self._masters}
        for txn in self.log:
            usage[txn.master] += 1 + txn.wait_states
        return usage
