"""Transaction-level SoC integration: bus, peripherals, the DSC SoC."""

from .bus import (
    AddressRange,
    BusError,
    Response,
    SystemBus,
    Transaction,
)
from .peripherals import (
    DmaController,
    DmaDescriptor,
    Fifo,
    RegisterFile,
    SdramModel,
)
from .dsc_soc import (
    CHIP_ID,
    DscSoc,
    JPEG_REGISTERS,
    MEMORY_MAP,
    SLAVE_ORDER,
    broken_soc_with_overlap,
    dsc_transaction_covergroup,
    sample_bus_coverage,
)

__all__ = [
    "AddressRange",
    "BusError",
    "Response",
    "SystemBus",
    "Transaction",
    "DmaController",
    "DmaDescriptor",
    "Fifo",
    "RegisterFile",
    "SdramModel",
    "CHIP_ID",
    "DscSoc",
    "JPEG_REGISTERS",
    "MEMORY_MAP",
    "SLAVE_ORDER",
    "broken_soc_with_overlap",
    "dsc_transaction_covergroup",
    "sample_bus_coverage",
]
