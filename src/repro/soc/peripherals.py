"""Behavioural models of the DSC controller's bus peripherals.

These are the *simulation models* Section 2 says had to be created for
every IP before integration: an SDRAM controller with bank/row timing,
IP register files, a DMA controller, and FIFO-based device interfaces
(SD card, USB endpoint).  They attach to :class:`repro.soc.bus.SystemBus`
and are exercised by the integration testbench in
``examples/soc_integration.py`` and ``tests/test_soc.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import BusError, SystemBus


class SdramModel:
    """A banked SDRAM behind its controller.

    Row hits cost ``cas_latency`` waits; row misses add precharge +
    activate.  This is the timing structure that makes DMA burst order
    matter -- the performance bug integration testing finds.
    """

    #: Native data-port width; audited against the bus width (MAP-004).
    bus_width_bits = 32

    def __init__(self, *, size_bytes: int = 1 << 22, banks: int = 4,
                 row_bytes: int = 1024, cas_latency: int = 2,
                 row_miss_penalty: int = 5) -> None:
        self.size = size_bytes
        self.banks = banks
        self.row_bytes = row_bytes
        self.cas_latency = cas_latency
        self.row_miss_penalty = row_miss_penalty
        self._data: dict[int, int] = {}
        self._open_rows: dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0

    def _bank_and_row(self, offset: int) -> tuple[int, int]:
        row = offset // self.row_bytes
        return row % self.banks, row

    def _access_waits(self, offset: int) -> int:
        bank, row = self._bank_and_row(offset)
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            return self.cas_latency
        self.row_misses += 1
        self._open_rows[bank] = row
        return self.cas_latency + self.row_miss_penalty

    def read(self, offset: int) -> tuple[int, int]:
        if not 0 <= offset < self.size:
            raise BusError(f"SDRAM read out of range: {offset:#x}")
        return self._data.get(offset, 0), self._access_waits(offset)

    def write(self, offset: int, data: int) -> int:
        if not 0 <= offset < self.size:
            raise BusError(f"SDRAM write out of range: {offset:#x}")
        self._data[offset] = data & 0xFFFFFFFF
        return self._access_waits(offset)

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class RegisterFile:
    """A generic IP register block: named registers at word offsets."""

    #: Native data-port width; audited against the bus width (MAP-004).
    bus_width_bits = 32

    def __init__(self, registers: dict[str, int]) -> None:
        """``registers`` maps name -> word offset."""
        self._offset_of = dict(registers)
        self._name_of = {v: k for k, v in registers.items()}
        if len(self._name_of) != len(self._offset_of):
            raise BusError("register offsets must be unique")
        self._values: dict[int, int] = {}
        self.write_log: list[tuple[str, int]] = []

    def read(self, offset: int) -> tuple[int, int]:
        word = offset // 4
        if word not in self._name_of:
            raise BusError(f"no register at offset {offset:#x}")
        return self._values.get(word, 0), 0

    def write(self, offset: int, data: int) -> int:
        word = offset // 4
        if word not in self._name_of:
            raise BusError(f"no register at offset {offset:#x}")
        self._values[word] = data & 0xFFFFFFFF
        self.write_log.append((self._name_of[word], data))
        return 0

    @property
    def register_span_bytes(self) -> int:
        """Byte span of the decoded registers (for window-size audits)."""
        if not self._offset_of:
            return 0
        return (max(self._offset_of.values()) + 1) * 4

    def value(self, name: str) -> int:
        return self._values.get(self._offset_of[name], 0)

    def poke(self, name: str, value: int) -> None:
        self._values[self._offset_of[name]] = value & 0xFFFFFFFF


class Fifo:
    """A bus-visible FIFO (SD-card / USB endpoint style).

    Offset 0: data port (read pops, write pushes).
    Offset 4: status (bit0 = not-empty, bit1 = full, bits 16.. = level).
    """

    #: Native data-port width; audited against the bus width (MAP-004).
    bus_width_bits = 32

    #: Byte span of the decoded ports (data @0, status @4).
    register_span_bytes = 8

    def __init__(self, depth: int = 64) -> None:
        self.depth = depth
        self._entries: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def read(self, offset: int) -> tuple[int, int]:
        if offset == 0:
            if not self._entries:
                self.underflows += 1
                raise BusError("FIFO underflow")
            return self._entries.pop(0), 0
        if offset == 4:
            status = (int(bool(self._entries))
                      | (int(len(self._entries) >= self.depth) << 1)
                      | (len(self._entries) << 16))
            return status, 0
        raise BusError(f"bad FIFO offset {offset:#x}")

    def write(self, offset: int, data: int) -> int:
        if offset != 0:
            raise BusError(f"bad FIFO offset {offset:#x}")
        if len(self._entries) >= self.depth:
            self.overflows += 1
            raise BusError("FIFO overflow")
        self._entries.append(data & 0xFFFFFFFF)
        return 0

    @property
    def level(self) -> int:
        return len(self._entries)


@dataclass
class DmaDescriptor:
    """One DMA job."""

    source: int
    destination: int
    length_words: int
    stride: int = 4


@dataclass
class DmaController:
    """A single-channel DMA master.

    ``run`` moves a descriptor's words over the bus word by word,
    honouring wait states; returns total bus cycles consumed, which is
    how the SDRAM-ordering performance effects become visible.
    """

    bus: SystemBus
    master_name: str = "dma"
    completed: list[DmaDescriptor] = field(default_factory=list)

    def run(self, descriptor: DmaDescriptor) -> int:
        if descriptor.length_words <= 0:
            raise BusError("DMA length must be positive")
        start_cycle = self.bus.cycle
        for index in range(descriptor.length_words):
            src = descriptor.source + index * descriptor.stride
            dst = descriptor.destination + index * descriptor.stride
            read_txn = self.bus.read(self.master_name, src)
            if read_txn.response.value != "okay":
                raise BusError(
                    f"DMA read {read_txn.response.value} at {src:#x}"
                )
            write_txn = self.bus.write(self.master_name, dst,
                                       read_txn.read_data)
            if write_txn.response.value != "okay":
                raise BusError(
                    f"DMA write {write_txn.response.value} at {dst:#x}"
                )
        self.completed.append(descriptor)
        return self.bus.cycle - start_cycle
