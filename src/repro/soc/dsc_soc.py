"""The assembled DSC controller at transaction level.

Builds the full memory map of the paper's Section-2 IP list on the
system bus, with behavioural models for each peripheral, and provides
the integration scenarios the verification team would run: a JPEG
capture DMA chain, an SD-card store, and the register smoke test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coverage import CoverBin, CoverCross, CoverGroup, Coverpoint
from .bus import BusError, Response, SystemBus
from .peripherals import (
    DmaController,
    DmaDescriptor,
    Fifo,
    RegisterFile,
    SdramModel,
)

#: The DSC controller memory map (word-aligned, non-overlapping).
MEMORY_MAP = {
    "sdram":      (0x0000_0000, 1 << 22),
    "jpeg_regs":  (0x4000_0000, 0x100),
    "sensor_regs": (0x4001_0000, 0x100),
    "lcd_regs":   (0x4002_0000, 0x100),
    "tv_regs":    (0x4003_0000, 0x100),
    "usb_fifo":   (0x5000_0000, 0x10),
    "sd_fifo":    (0x5001_0000, 0x10),
    "sys_regs":   (0x6000_0000, 0x100),
}

JPEG_REGISTERS = {
    "control": 0, "status": 1, "src_addr": 2, "dst_addr": 3,
    "width": 4, "height": 5, "quality": 6,
}
SENSOR_REGISTERS = {"control": 0, "status": 1, "frame_addr": 2}
LCD_REGISTERS = {"control": 0, "fb_addr": 1}
TV_REGISTERS = {"control": 0, "mode": 1}
SYS_REGISTERS = {"id": 0, "clk_ctrl": 1, "irq_status": 2}

#: The chip ID readable at sys_regs.id -- the integration smoke test.
CHIP_ID = 0x05C0_2005


@dataclass
class DscSoc:
    """The integrated transaction-level DSC controller."""

    bus: SystemBus = field(default_factory=lambda: SystemBus("dsc_asb"))
    sdram: SdramModel = field(default_factory=SdramModel)
    jpeg: RegisterFile = field(
        default_factory=lambda: RegisterFile(JPEG_REGISTERS)
    )
    sensor: RegisterFile = field(
        default_factory=lambda: RegisterFile(SENSOR_REGISTERS)
    )
    lcd: RegisterFile = field(
        default_factory=lambda: RegisterFile(LCD_REGISTERS)
    )
    tv: RegisterFile = field(
        default_factory=lambda: RegisterFile(TV_REGISTERS)
    )
    usb_fifo: Fifo = field(default_factory=lambda: Fifo(depth=64))
    sd_fifo: Fifo = field(default_factory=lambda: Fifo(depth=128))
    sys: RegisterFile = field(
        default_factory=lambda: RegisterFile(SYS_REGISTERS)
    )

    def __post_init__(self) -> None:
        slaves = {
            "sdram": self.sdram,
            "jpeg_regs": self.jpeg,
            "sensor_regs": self.sensor,
            "lcd_regs": self.lcd,
            "tv_regs": self.tv,
            "usb_fifo": self.usb_fifo,
            "sd_fifo": self.sd_fifo,
            "sys_regs": self.sys,
        }
        for name, (base, size) in MEMORY_MAP.items():
            self.bus.attach_slave(name, base, size, slaves[name])
        for master in ("cpu", "dma", "jpeg_master", "usb_master"):
            self.bus.register_master(master)
        self.sys.poke("id", CHIP_ID)
        self.dma = DmaController(self.bus, "dma")

    # -- integration scenarios ----------------------------------------------

    def smoke_test(self) -> bool:
        """Every block answers at its mapped address; ID matches.

        FIFOs are probed at their status port -- popping an empty
        data port is an (intentional) error response.
        """
        chip_id = self.bus.read("cpu", MEMORY_MAP["sys_regs"][0]).read_data
        if chip_id != CHIP_ID:
            return False
        for name, (base, _) in MEMORY_MAP.items():
            probe = base + 4 if name.endswith("_fifo") else base
            txn = self.bus.read("cpu", probe)
            if txn.response.value != "okay":
                return False
        return True

    def capture_frame(self, *, frame_words: int = 256,
                      frame_base: int = 0x1000,
                      jpeg_base: int = 0x8400) -> int:
        """The camera's hot path: sensor frame -> JPEG engine -> SD.

        1. CPU programs the sensor to DMA a frame into SDRAM;
        2. CPU programs the JPEG engine (src/dst/size) and kicks it;
        3. the JPEG result is DMAed to the SD FIFO in card-block
           chunks.

        The default ``jpeg_base`` deliberately lands in a *different*
        SDRAM bank than ``frame_base`` -- with both in one bank every
        DMA word pays a row miss (an integration performance bug this
        model makes visible; see the test suite).

        Returns total bus cycles -- the integration-level performance
        figure.
        """
        cpu = "cpu"
        start = self.bus.cycle
        sdram_base = MEMORY_MAP["sdram"][0]

        # 1. sensor writes the frame (modelled as a DMA from nowhere:
        #    the sensor master fills SDRAM directly).
        for index in range(frame_words):
            self.bus.write("jpeg_master", sdram_base + frame_base
                           + 4 * index, (index * 2654435761) & 0xFFFFFFFF)

        # 2. program and "run" the JPEG engine.
        jpeg_regs = MEMORY_MAP["jpeg_regs"][0]
        self.bus.write(cpu, jpeg_regs + 4 * JPEG_REGISTERS["src_addr"],
                       sdram_base + frame_base)
        self.bus.write(cpu, jpeg_regs + 4 * JPEG_REGISTERS["dst_addr"],
                       sdram_base + jpeg_base)
        self.bus.write(cpu, jpeg_regs + 4 * JPEG_REGISTERS["width"], 2048)
        self.bus.write(cpu, jpeg_regs + 4 * JPEG_REGISTERS["height"], 1536)
        self.bus.write(cpu, jpeg_regs + 4 * JPEG_REGISTERS["control"], 1)
        # Engine moves the (compressed) payload: model 3:1 compression.
        compressed_words = max(1, frame_words // 3)
        self.dma.run(DmaDescriptor(
            source=sdram_base + frame_base,
            destination=sdram_base + jpeg_base,
            length_words=compressed_words,
        ))
        self.jpeg.poke("status", 1)  # done

        # 3. stream the JPEG to the SD FIFO in blocks.
        sd_base = MEMORY_MAP["sd_fifo"][0]
        block = self.sd_fifo.depth // 2
        for chunk_start in range(0, compressed_words, block):
            chunk = min(block, compressed_words - chunk_start)
            for index in range(chunk):
                value = self.bus.read(
                    cpu, sdram_base + jpeg_base + 4 * (chunk_start + index)
                ).read_data
                self.bus.write(cpu, sd_base, value)
            # Card drains the FIFO (the card-side clock domain).
            while self.sd_fifo.level:
                self.bus.read("usb_master", sd_base)
        return self.bus.cycle - start

    def integration_report(self) -> str:
        errors = self.bus.error_transactions()
        lines = [
            self.bus.memory_map_report(),
            f"bus cycles      : {self.bus.cycle}",
            f"error responses : {len(errors)}",
            f"sdram hit rate  : {self.sdram.hit_rate * 100:.0f}%",
        ]
        usage = self.bus.utilisation()
        for master, cycles in usage.items():
            lines.append(f"  master {master:12s}: {cycles} cycles")
        return "\n".join(lines)


# -- integration-level functional coverage ------------------------------

#: Stable slave ordering used to encode slave names as coverpoint values.
SLAVE_ORDER = tuple(sorted(MEMORY_MAP))

_RESPONSE_CODE = {Response.OKAY: 0, Response.ERROR: 1,
                  Response.DECODE_ERROR: 2}


def dsc_transaction_covergroup() -> CoverGroup:
    """Functional coverage model over DSC bus transactions.

    The integration-verification question in covergroup form: has
    every mapped slave been read *and* written, and have the error
    responses been provoked at least once?  ``slave`` x ``kind`` cross
    bins are exactly the per-block read/write matrix a sign-off review
    walks through -- running only the smoke test and the capture
    scenario leaves the write side of most register blocks as ranked
    holes (the paper's "in-sufficient test benches", made measurable).
    """
    slave_bins = tuple(
        CoverBin(name, index, index)
        for index, name in enumerate(SLAVE_ORDER)
    )
    kind_bins = (CoverBin("read", 0, 0), CoverBin("write", 1, 1))
    response_bins = (CoverBin("okay", 0, 0), CoverBin("error", 1, 2))
    return CoverGroup(
        "dsc_bus",
        coverpoints=(
            Coverpoint("slave", slave_bins),
            Coverpoint("kind", kind_bins),
            Coverpoint("response", response_bins),
        ),
        crosses=(CoverCross("slave_x_kind", "slave", "kind"),),
    )


def sample_bus_coverage(
    soc: DscSoc,
    covergroup: CoverGroup,
    hits: dict[str, int] | None = None,
) -> dict[str, int]:
    """Sample a covergroup over every transaction in the bus log.

    Decode-error transactions hit the ``response`` point only (there
    is no slave to attribute them to).  Returns the hit dict, ready
    for a :class:`repro.coverage.CoverageDatabase` test record.
    """
    if hits is None:
        hits = {}
    for txn in soc.bus.log:
        values = {
            "kind": 1 if txn.is_write else 0,
            "response": _RESPONSE_CODE[txn.response],
        }
        mapping = soc.bus.decode(txn.address)
        if mapping is not None:
            values["slave"] = SLAVE_ORDER.index(mapping.name)
        covergroup.sample(values, hits)
    return hits


def broken_soc_with_overlap() -> None:
    """The integration bug the checker exists for: two IPs decoded at
    overlapping windows.  Always raises :class:`BusError`."""
    soc = SystemBus("broken")
    regs_a = RegisterFile({"r": 0})
    regs_b = RegisterFile({"r": 0})
    soc.attach_slave("ip_a", 0x4000_0000, 0x1000, regs_a)
    soc.attach_slave("ip_b", 0x4000_0800, 0x1000, regs_b)  # overlaps!
