"""Virtual prototyping: pre-placement estimates and their correlation.

Section 4 opens the required-capabilities list with "virtual
prototyping": predicting wirelength, congestion and timing *before*
committing to placement, so floorplan/architecture decisions can be
made in minutes.  The estimator uses structural wireload models
(net length from fanout and block area); :func:`correlate_prototype`
then measures how well the prediction tracked a real placement -- the
calibration loop a prototyping flow lives or dies by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..netlist import Module
from ..sta import TimingAnalyzer, TimingConstraints
from .placement import AnnealingPlacer, WIRE_CAP_FF_PER_UM


@dataclass
class VirtualPrototype:
    """Pre-placement predictions for one block."""

    module_name: str
    estimated_area_um2: float
    estimated_wirelength_um: float
    estimated_wns_ps: float
    estimated_max_frequency_mhz: float
    congestion_risk: float  # 0..1

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Virtual prototype of {self.module_name}",
                f"  area        : {self.estimated_area_um2 / 1e6:.3f} mm^2",
                f"  wirelength  : {self.estimated_wirelength_um / 1000:.1f}"
                f" mm",
                f"  WNS         : {self.estimated_wns_ps:.0f} ps",
                f"  Fmax        : {self.estimated_max_frequency_mhz:.0f}"
                f" MHz",
                f"  congestion  : {self.congestion_risk * 100:.0f}% risk",
            ]
        )


def virtual_prototype(
    module: Module,
    constraints: TimingConstraints,
    *,
    utilization: float = 0.6,
    site_pitch_um: float = 10.0,
) -> VirtualPrototype:
    """Estimate physical quality without placing.

    Wireload model: a net with fanout *f* in a block of side *S* is
    budgeted ``S * (0.15 + 0.12 * sqrt(f))`` of length -- the classic
    fanout-based WLM shape.  Wire caps from that model feed the same
    STA used post-placement, so estimates and sign-off share one
    timing engine.
    """
    n_cells = max(len(module.instances), 1)
    side_sites = max(2, math.ceil(math.sqrt(n_cells / utilization)))
    side_um = side_sites * site_pitch_um

    wirelength = 0.0
    wire_caps: dict[str, float] = {}
    for net_name, net in module.nets.items():
        fanout = net.fanout
        if fanout == 0:
            continue
        length = side_um * (0.15 + 0.12 * math.sqrt(fanout))
        wirelength += length
        wire_caps[net_name] = length * WIRE_CAP_FF_PER_UM

    sta = TimingAnalyzer(
        module, constraints, net_wire_cap_ff=wire_caps
    ).analyze(with_critical_path=False)

    # Congestion risk: average routing demand per grid edge vs a
    # nominal capacity (pins per site heuristics).
    demand = wirelength / site_pitch_um  # edge-lengths needed
    supply = 2.0 * side_sites * side_sites * 8  # edges x capacity
    risk = min(1.0, demand / supply)

    return VirtualPrototype(
        module_name=module.name,
        estimated_area_um2=side_um * side_um * utilization,
        estimated_wirelength_um=wirelength,
        estimated_wns_ps=sta.wns_ps,
        estimated_max_frequency_mhz=sta.max_frequency_mhz,
        congestion_risk=risk,
    )


@dataclass
class PrototypeCorrelation:
    """Prototype vs placed-reality scorecard."""

    wirelength_ratio: float      # predicted / actual
    wns_error_ps: float          # predicted - actual
    fmax_ratio: float

    @property
    def wirelength_within_2x(self) -> bool:
        return 0.5 <= self.wirelength_ratio <= 2.0

    def format_report(self) -> str:
        return (
            f"prototype correlation: wirelength x{self.wirelength_ratio:.2f}"
            f", WNS error {self.wns_error_ps:+.0f} ps,"
            f" Fmax x{self.fmax_ratio:.2f}"
        )


def correlate_prototype(
    module: Module,
    constraints: TimingConstraints,
    *,
    iterations: int = 6000,
    seed: int = 0,
) -> tuple[VirtualPrototype, PrototypeCorrelation]:
    """Run the prototype, then a real placement, and compare."""
    prototype = virtual_prototype(module, constraints)
    placer = AnnealingPlacer(module, seed=seed)
    placement, report = placer.place(iterations=iterations)
    caps = placer.wire_caps_ff(placement)
    sta = TimingAnalyzer(
        module, constraints, net_wire_cap_ff=caps
    ).analyze(with_critical_path=False)
    actual_wirelength = report.hpwl_final_um
    correlation = PrototypeCorrelation(
        wirelength_ratio=(
            prototype.estimated_wirelength_um / max(actual_wirelength, 1e-9)
        ),
        wns_error_ps=prototype.estimated_wns_ps - sta.wns_ps,
        fmax_ratio=(
            prototype.estimated_max_frequency_mhz
            / max(sta.max_frequency_mhz, 1e-9)
        ),
    )
    return prototype, correlation
