"""Physical implementation: floorplan, placement, routing, CTS."""

from .floorplan import (
    Floorplan,
    FloorplanError,
    HardMacro,
    PlacedMacro,
    build_floorplan,
    place_macros_peripheral,
    size_die,
)
from .placement import (
    AnnealingPlacer,
    Placement,
    PlacementReport,
    WIRE_CAP_FF_PER_UM,
)
from .routing import GlobalRouter, RoutingReport
from .cts import (
    ClockTreeNode,
    ClockTreeReport,
    build_clock_tree,
)
from .prototype import (
    PrototypeCorrelation,
    VirtualPrototype,
    correlate_prototype,
    virtual_prototype,
)

__all__ = [
    "Floorplan",
    "FloorplanError",
    "HardMacro",
    "PlacedMacro",
    "build_floorplan",
    "place_macros_peripheral",
    "size_die",
    "AnnealingPlacer",
    "Placement",
    "PlacementReport",
    "WIRE_CAP_FF_PER_UM",
    "GlobalRouter",
    "RoutingReport",
    "ClockTreeNode",
    "ClockTreeReport",
    "build_clock_tree",
    "PrototypeCorrelation",
    "VirtualPrototype",
    "correlate_prototype",
    "virtual_prototype",
]
