"""Congestion-aware global routing on a grid graph.

Nets are decomposed into driver-to-load two-pin connections and routed
one at a time over a coarse routing grid with per-edge capacity;
already-congested edges cost more, spreading later nets around
hotspots (classic sequential global routing with negotiation-lite).
Reports wirelength, per-edge congestion and overflow -- the signals a
P&R team watches when closing a 240K-gate die.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..netlist import Module
from .placement import Placement


@dataclass
class RoutingReport:
    """Outcome of one global-routing run."""

    nets_routed: int
    connections_routed: int
    total_wirelength_um: float
    overflow_edges: int
    max_congestion: float
    failed_connections: int = 0

    @property
    def clean(self) -> bool:
        return self.overflow_edges == 0 and self.failed_connections == 0

    def format_report(self) -> str:
        lines = [
            "Global routing",
            f"  nets / connections : {self.nets_routed} / "
            f"{self.connections_routed}",
            f"  wirelength         : {self.total_wirelength_um / 1000:.1f} mm",
            f"  overflow edges     : {self.overflow_edges}",
            f"  max congestion     : {self.max_congestion * 100:.0f}%",
        ]
        return "\n".join(lines)


class GlobalRouter:
    """Sequential maze router over the placement grid."""

    def __init__(
        self,
        module: Module,
        placement: Placement,
        *,
        edge_capacity: int = 8,
        congestion_penalty: float = 4.0,
    ) -> None:
        self.module = module
        self.placement = placement
        self.edge_capacity = edge_capacity
        self.congestion_penalty = congestion_penalty
        self.usage: dict[tuple, int] = {}
        self.width = placement.grid_width
        self.height = placement.grid_height

    def _edge(self, a: tuple[int, int], b: tuple[int, int]) -> tuple:
        return (a, b) if a <= b else (b, a)

    def _edge_cost(self, a: tuple[int, int], b: tuple[int, int]) -> float:
        used = self.usage.get(self._edge(a, b), 0)
        if used < self.edge_capacity:
            return 1.0 + used / self.edge_capacity
        return self.congestion_penalty * (1 + used - self.edge_capacity)

    def _neighbours(self, node: tuple[int, int]):
        x, y = node
        if x > 0:
            yield (x - 1, y)
        if x < self.width - 1:
            yield (x + 1, y)
        if y > 0:
            yield (x, y - 1)
        if y < self.height - 1:
            yield (x, y + 1)

    def route_connection(
        self, source: tuple[int, int], sink: tuple[int, int]
    ) -> list[tuple[int, int]] | None:
        """A* route one two-pin connection; returns the node path."""
        if source == sink:
            return [source]

        def heuristic(node):
            return abs(node[0] - sink[0]) + abs(node[1] - sink[1])

        open_heap = [(heuristic(source), 0.0, source)]
        best_cost = {source: 0.0}
        parent: dict[tuple[int, int], tuple[int, int]] = {}
        while open_heap:
            _, cost, node = heapq.heappop(open_heap)
            if node == sink:
                path = [node]
                while node in parent:
                    node = parent[node]
                    path.append(node)
                path.reverse()
                return path
            if cost > best_cost.get(node, float("inf")):
                continue
            for neighbour in self._neighbours(node):
                new_cost = cost + self._edge_cost(node, neighbour)
                if new_cost < best_cost.get(neighbour, float("inf")):
                    best_cost[neighbour] = new_cost
                    parent[neighbour] = node
                    heapq.heappush(
                        open_heap,
                        (new_cost + heuristic(neighbour), new_cost, neighbour),
                    )
        return None

    def _commit(self, path: list[tuple[int, int]]) -> None:
        for a, b in zip(path, path[1:]):
            edge = self._edge(a, b)
            self.usage[edge] = self.usage.get(edge, 0) + 1

    def route_all(self) -> RoutingReport:
        """Route every multi-cell net, driver to each load."""
        nets = 0
        connections = 0
        wirelength = 0.0
        failed = 0
        pitch = self.placement.site_pitch_um
        # Longest-first gives congested nets first pick -- mirrors
        # timing-driven ordering where critical nets route first.
        net_jobs: list[tuple[float, str, tuple, list[tuple]]] = []
        for net_name, net in self.module.nets.items():
            if net.driver is None:
                continue
            driver_loc = self.placement.locations.get(net.driver.instance)
            if driver_loc is None:
                continue
            sinks = []
            for load in net.loads:
                loc = self.placement.locations.get(load.instance)
                if loc is not None and loc != driver_loc:
                    sinks.append(loc)
            if not sinks:
                continue
            span = max(
                abs(s[0] - driver_loc[0]) + abs(s[1] - driver_loc[1])
                for s in sinks
            )
            net_jobs.append((-span, net_name, driver_loc, sinks))
        net_jobs.sort()

        for _, _name, driver_loc, sinks in net_jobs:
            nets += 1
            for sink in sinks:
                connections += 1
                path = self.route_connection(driver_loc, sink)
                if path is None:
                    failed += 1
                    continue
                self._commit(path)
                wirelength += (len(path) - 1) * pitch

        overflow = sum(
            1 for used in self.usage.values() if used > self.edge_capacity
        )
        max_cong = max(
            (used / self.edge_capacity for used in self.usage.values()),
            default=0.0,
        )
        return RoutingReport(
            nets_routed=nets,
            connections_routed=connections,
            total_wirelength_um=wirelength,
            overflow_edges=overflow,
            max_congestion=max_cong,
            failed_connections=failed,
        )
