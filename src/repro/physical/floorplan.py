"""Die sizing and macro floorplanning.

Models the physical top-level of the DSC controller: a core of
standard-cell rows surrounded by an I/O pad ring, with the 30 SRAM
macros and the hardened CPU placed around the core periphery (the
standard layout recipe for a macro-heavy 0.25 um SoC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class HardMacro:
    """A pre-hardened block: SRAM macro or the CPU hard core."""

    name: str
    width_um: float
    height_um: float

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    @classmethod
    def from_area(cls, name: str, area_um2: float, aspect: float = 2.0
                  ) -> "HardMacro":
        """Build a macro of a given area with a width/height aspect."""
        height = math.sqrt(area_um2 / aspect)
        return cls(name, aspect * height, height)


@dataclass(frozen=True)
class PlacedMacro:
    macro: HardMacro
    x_um: float
    y_um: float
    edge: str  # which die edge it hugs


@dataclass
class Floorplan:
    """A sized die with peripheral macros and a core cell area."""

    die_width_um: float
    die_height_um: float
    pad_ring_um: float
    macros: list[PlacedMacro] = field(default_factory=list)
    core_utilization: float = 0.0

    @property
    def die_area_mm2(self) -> float:
        return self.die_width_um * self.die_height_um / 1e6

    @property
    def core_origin(self) -> tuple[float, float]:
        return (self.pad_ring_um, self.pad_ring_um)

    @property
    def core_size(self) -> tuple[float, float]:
        return (
            self.die_width_um - 2 * self.pad_ring_um,
            self.die_height_um - 2 * self.pad_ring_um,
        )

    def format_report(self) -> str:
        lines = [
            "Floorplan",
            f"  die      : {self.die_width_um:.0f} x {self.die_height_um:.0f} um"
            f" ({self.die_area_mm2:.2f} mm^2)",
            f"  macros   : {len(self.macros)} placed on periphery",
            f"  core util: {self.core_utilization * 100:.1f}%",
        ]
        return "\n".join(lines)


class FloorplanError(Exception):
    """The blocks do not fit the requested die."""


def size_die(
    *,
    stdcell_area_um2: float,
    macro_area_um2: float,
    target_utilization: float = 0.70,
    pad_ring_um: float = 350.0,
    aspect_ratio: float = 1.0,
) -> tuple[float, float]:
    """Choose die dimensions for the given content.

    Core area = (std cells / utilization) + macro area * keepout
    factor; the pad ring is added on each side.
    """
    if not 0.3 <= target_utilization <= 0.95:
        raise FloorplanError("utilization must be within 0.3..0.95")
    core_area = stdcell_area_um2 / target_utilization + macro_area_um2 * 1.15
    core_height = math.sqrt(core_area / aspect_ratio)
    core_width = aspect_ratio * core_height
    return (core_width + 2 * pad_ring_um, core_height + 2 * pad_ring_um)


def place_macros_peripheral(
    die_width_um: float,
    die_height_um: float,
    macros: list[HardMacro],
    *,
    pad_ring_um: float = 350.0,
    spacing_um: float = 20.0,
) -> list[PlacedMacro]:
    """Pack macros around the core edges, largest first.

    Walks the four core edges (bottom, top, left, right) placing each
    macro flush against the edge; raises :class:`FloorplanError` when
    the periphery is exhausted.
    """
    ordered = sorted(macros, key=lambda m: m.area_um2, reverse=True)
    placed: list[PlacedMacro] = []
    core_left = pad_ring_um
    core_bottom = pad_ring_um
    core_right = die_width_um - pad_ring_um
    core_top = die_height_um - pad_ring_um

    # The side edges start above/below a corner keepout sized to the
    # largest macro dimension, so corner macros can never overlap.
    corner_keepout = max(
        (max(m.width_um, m.height_um) for m in macros), default=0.0
    ) + spacing_um

    cursors = {
        "bottom": core_left,
        "top": core_left,
        "left": core_bottom + corner_keepout,
        "right": core_bottom + corner_keepout,
    }
    edge_cycle = ["bottom", "top", "left", "right"]
    edge_index = 0
    for macro in ordered:
        placed_ok = False
        for _ in range(len(edge_cycle)):
            edge = edge_cycle[edge_index % len(edge_cycle)]
            edge_index += 1
            if edge in ("bottom", "top"):
                extent = macro.width_um
                limit = core_right
                cursor = cursors[edge]
                if cursor + extent <= limit:
                    y = (core_bottom if edge == "bottom"
                         else core_top - macro.height_um)
                    placed.append(PlacedMacro(macro, cursor, y, edge))
                    cursors[edge] = cursor + extent + spacing_um
                    placed_ok = True
                    break
            else:
                extent = macro.height_um
                limit = core_top - corner_keepout
                cursor = cursors[edge]
                if cursor + extent <= limit:
                    x = (core_left if edge == "left"
                         else core_right - macro.width_um)
                    placed.append(PlacedMacro(macro, x, cursor, edge))
                    cursors[edge] = cursor + extent + spacing_um
                    placed_ok = True
                    break
        if not placed_ok:
            raise FloorplanError(
                f"macro {macro.name} ({macro.width_um:.0f}x"
                f"{macro.height_um:.0f} um) does not fit the periphery"
            )
    return placed


def build_floorplan(
    *,
    stdcell_area_um2: float,
    macros: list[HardMacro],
    target_utilization: float = 0.70,
    pad_ring_um: float = 350.0,
) -> Floorplan:
    """Size the die and place the macros; grows the die until fit."""
    macro_area = sum(m.area_um2 for m in macros)
    width, height = size_die(
        stdcell_area_um2=stdcell_area_um2,
        macro_area_um2=macro_area,
        target_utilization=target_utilization,
        pad_ring_um=pad_ring_um,
    )
    for attempt in range(8):
        try:
            placed = place_macros_peripheral(
                width, height, macros, pad_ring_um=pad_ring_um
            )
        except FloorplanError:
            width *= 1.12
            height *= 1.12
            continue
        core_area = (width - 2 * pad_ring_um) * (height - 2 * pad_ring_um)
        used = stdcell_area_um2 + macro_area * 1.15
        return Floorplan(
            die_width_um=width,
            die_height_um=height,
            pad_ring_um=pad_ring_um,
            macros=placed,
            core_utilization=min(used / core_area, 1.0),
        )
    raise FloorplanError("could not converge on a die size")
