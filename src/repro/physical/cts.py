"""Clock-tree synthesis (geometric-matching H-tree).

Builds a balanced buffer tree over the placed flip-flops by recursive
pairwise matching: at each level, nearest sinks are paired and a
tapping point is placed at their midpoint, until a single root
remains.  Reports insertion delay, skew (max-min sink wire distance)
and buffer count -- the numbers a CTS run is judged on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..netlist import Module
from .placement import Placement

#: Clock wire delay per micron (ps) -- RC ballpark for a buffered
#: 0.25 um clock net.
CLOCK_DELAY_PS_PER_UM = 0.08
#: Delay through one clock buffer (ps).
CLOCK_BUFFER_DELAY_PS = 120.0


@dataclass
class ClockTreeNode:
    """One tapping point of the tree."""

    x_um: float
    y_um: float
    level: int
    children: list["ClockTreeNode"] = field(default_factory=list)
    sink: str | None = None  # flop instance for leaves


@dataclass
class ClockTreeReport:
    """CTS quality summary."""

    sinks: int
    levels: int
    buffers: int
    insertion_delay_ps: float
    skew_ps: float
    wirelength_um: float

    def format_report(self) -> str:
        return "\n".join(
            [
                "Clock tree",
                f"  sinks          : {self.sinks}",
                f"  levels/buffers : {self.levels} / {self.buffers}",
                f"  insertion delay: {self.insertion_delay_ps:.0f} ps",
                f"  skew           : {self.skew_ps:.1f} ps",
                f"  wirelength     : {self.wirelength_um / 1000:.2f} mm",
            ]
        )


def _distance(a: ClockTreeNode, b: ClockTreeNode) -> float:
    return math.hypot(a.x_um - b.x_um, a.y_um - b.y_um)


def _pair_level(nodes: list[ClockTreeNode], level: int) -> list[ClockTreeNode]:
    """Greedy nearest-neighbour matching into parent nodes."""
    remaining = list(nodes)
    parents: list[ClockTreeNode] = []
    while len(remaining) > 1:
        node = remaining.pop(0)
        best_index = min(
            range(len(remaining)),
            key=lambda k: _distance(node, remaining[k]),
        )
        partner = remaining.pop(best_index)
        parents.append(
            ClockTreeNode(
                x_um=(node.x_um + partner.x_um) / 2,
                y_um=(node.y_um + partner.y_um) / 2,
                level=level,
                children=[node, partner],
            )
        )
    if remaining:
        orphan = remaining.pop()
        parents.append(
            ClockTreeNode(orphan.x_um, orphan.y_um, level, children=[orphan])
        )
    return parents


def build_clock_tree(
    module: Module, placement: Placement
) -> tuple[ClockTreeNode, ClockTreeReport]:
    """Synthesise the clock tree for all flops in the module."""
    leaves = []
    for flop in module.sequential_instances:
        x, y = placement.position_um(flop.name)
        leaves.append(ClockTreeNode(x, y, level=0, sink=flop.name))
    if not leaves:
        raise ValueError(f"module {module.name} has no clock sinks")

    level = 0
    nodes = leaves
    wirelength = 0.0
    buffers = 0
    while len(nodes) > 1:
        level += 1
        parents = _pair_level(nodes, level)
        for parent in parents:
            buffers += 1
            for child in parent.children:
                wirelength += _distance(parent, child)
        nodes = parents
    root = nodes[0]

    # Per-sink delay: buffer levels crossed + wire distance root->sink.
    delays: list[float] = []

    def walk(node: ClockTreeNode, wire_so_far: float, buffers_so_far: int):
        if node.sink is not None:
            delays.append(
                buffers_so_far * CLOCK_BUFFER_DELAY_PS
                + wire_so_far * CLOCK_DELAY_PS_PER_UM
            )
            return
        for child in node.children:
            walk(child, wire_so_far + _distance(node, child),
                 buffers_so_far + 1)

    walk(root, 0.0, 0)
    report = ClockTreeReport(
        sinks=len(leaves),
        levels=level,
        buffers=buffers,
        insertion_delay_ps=max(delays),
        skew_ps=max(delays) - min(delays),
        wirelength_um=wirelength,
    )
    return root, report
