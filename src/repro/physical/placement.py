"""Timing-driven standard-cell placement by simulated annealing.

The placer maps every instance of a module onto a site grid and
minimises a weighted half-perimeter wirelength (HPWL).  Net weights
come from timing criticality (negative-slack endpoints upstream of a
net raise its weight), which is what "timing-driven placement" meant
in the paper's flow; ablation A5 compares pure-wirelength against
timing-driven annealing.

Placement results feed wire capacitances back into
:mod:`repro.sta` (cap per micron of HPWL), closing the placement <->
timing loop the way physical synthesis does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..netlist import Module
from ..sta import TimingAnalyzer, TimingConstraints

#: Routed-wire capacitance per micron of estimated length (0.25 um
#: metal stack ballpark).
WIRE_CAP_FF_PER_UM = 0.18


@dataclass
class Placement:
    """Cell coordinates on a uniform site grid."""

    module_name: str
    site_pitch_um: float
    grid_width: int
    grid_height: int
    locations: dict[str, tuple[int, int]] = field(default_factory=dict)

    def position_um(self, instance: str) -> tuple[float, float]:
        col, row = self.locations[instance]
        return (col * self.site_pitch_um, row * self.site_pitch_um)


@dataclass
class PlacementReport:
    """Quality metrics of one placement run."""

    hpwl_initial_um: float
    hpwl_final_um: float
    moves_attempted: int
    moves_accepted: int
    timing_driven: bool

    @property
    def improvement(self) -> float:
        if self.hpwl_initial_um == 0:
            return 0.0
        return 1.0 - self.hpwl_final_um / self.hpwl_initial_um


class AnnealingPlacer:
    """Simulated-annealing placer for one flat module."""

    def __init__(
        self,
        module: Module,
        *,
        site_pitch_um: float = 10.0,
        utilization: float = 0.6,
        seed: int = 0,
    ) -> None:
        self.module = module
        self.site_pitch_um = site_pitch_um
        self.rng = np.random.default_rng(seed)
        cells = list(module.instances)
        side = max(2, math.ceil(math.sqrt(len(cells) / utilization)))
        self.grid_width = side
        self.grid_height = side
        self._cells = cells
        self._net_pins = self._collect_net_pins()

    def _collect_net_pins(self) -> dict[str, list[str]]:
        """Instances on each multi-pin net (ports pinned to the edge)."""
        net_pins: dict[str, list[str]] = {}
        for inst in self.module.instances.values():
            for net_name in inst.connections.values():
                net_pins.setdefault(net_name, []).append(inst.name)
        # Only nets with 2+ distinct cells contribute to HPWL.
        return {
            net: sorted(set(members))
            for net, members in net_pins.items()
            if len(set(members)) >= 2
        }

    # -- cost -------------------------------------------------------------

    def _net_hpwl(self, net: str, locations: Mapping[str, tuple[int, int]]
                  ) -> float:
        xs = [locations[i][0] for i in self._net_pins[net]]
        ys = [locations[i][1] for i in self._net_pins[net]]
        return (max(xs) - min(xs) + max(ys) - min(ys)) * self.site_pitch_um

    def total_hpwl(self, locations: Mapping[str, tuple[int, int]],
                   weights: Mapping[str, float] | None = None) -> float:
        total = 0.0
        for net in self._net_pins:
            weight = 1.0 if weights is None else weights.get(net, 1.0)
            total += weight * self._net_hpwl(net, locations)
        return total

    # -- timing weights ------------------------------------------------------

    def criticality_weights(
        self, constraints: TimingConstraints
    ) -> dict[str, float]:
        """Net weights from slack: negative-slack cones get weight 3,
        near-critical 2, everything else 1."""
        analyzer = TimingAnalyzer(self.module, constraints)
        arrivals = analyzer.compute_arrivals(worst=True)
        slacks = analyzer.endpoint_slacks()
        if not slacks:
            return {}
        worst = min(slacks.values())
        threshold = max(worst, 0.0)
        weights: dict[str, float] = {}
        # Weight nets by how close their arrival is to the worst path.
        max_arrival = max(arrivals.values()) if arrivals else 1.0
        for net in self._net_pins:
            arrival = arrivals.get(net, 0.0)
            ratio = arrival / max(max_arrival, 1e-9)
            if ratio > 0.85:
                weights[net] = 3.0
            elif ratio > 0.6:
                weights[net] = 2.0
            else:
                weights[net] = 1.0
        return weights

    # -- annealing -------------------------------------------------------------

    def initial_placement(self) -> dict[str, tuple[int, int]]:
        """Deterministic scan-order seeding."""
        locations: dict[str, tuple[int, int]] = {}
        for index, name in enumerate(self._cells):
            locations[name] = (index % self.grid_width,
                               index // self.grid_width)
        return locations

    def place(
        self,
        *,
        iterations: int | None = None,
        timing_constraints: TimingConstraints | None = None,
        initial_temperature: float | None = None,
    ) -> tuple[Placement, PlacementReport]:
        """Run the anneal; returns the placement and its report."""
        locations = self.initial_placement()
        weights = None
        if timing_constraints is not None:
            weights = self.criticality_weights(timing_constraints)
        occupied: dict[tuple[int, int], str] = {
            loc: name for name, loc in locations.items()
        }
        current_cost = self.total_hpwl(locations, weights)
        initial_cost = current_cost

        n = len(self._cells)
        if iterations is None:
            iterations = max(2000, 40 * n)
        temperature = (
            initial_temperature
            if initial_temperature is not None
            else max(current_cost / max(len(self._net_pins), 1), 1.0)
        )
        cooling = 0.995 if n < 500 else 0.999
        accepted = 0

        cell_nets: dict[str, list[str]] = {name: [] for name in self._cells}
        for net, members in self._net_pins.items():
            for member in members:
                cell_nets[member].append(net)

        for step in range(iterations):
            mover = self._cells[int(self.rng.integers(0, n))]
            target = (
                int(self.rng.integers(0, self.grid_width)),
                int(self.rng.integers(0, self.grid_height)),
            )
            swap_partner = occupied.get(target)
            if swap_partner == mover:
                continue
            affected = set(cell_nets[mover])
            if swap_partner is not None:
                affected |= set(cell_nets[swap_partner])
            before = sum(
                (1.0 if weights is None else weights.get(net, 1.0))
                * self._net_hpwl(net, locations)
                for net in affected
            )
            old_loc = locations[mover]
            locations[mover] = target
            if swap_partner is not None:
                locations[swap_partner] = old_loc
            after = sum(
                (1.0 if weights is None else weights.get(net, 1.0))
                * self._net_hpwl(net, locations)
                for net in affected
            )
            delta = after - before
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            ):
                # Accept: update occupancy and cost.
                occupied.pop(old_loc, None)
                occupied[target] = mover
                if swap_partner is not None:
                    occupied[old_loc] = swap_partner
                current_cost += delta
                accepted += 1
            else:
                # Reject: roll back.
                locations[mover] = old_loc
                if swap_partner is not None:
                    locations[swap_partner] = target
            temperature *= cooling

        placement = Placement(
            module_name=self.module.name,
            site_pitch_um=self.site_pitch_um,
            grid_width=self.grid_width,
            grid_height=self.grid_height,
            locations=dict(locations),
        )
        report = PlacementReport(
            hpwl_initial_um=initial_cost if weights is None
            else self.total_hpwl(self.initial_placement()),
            hpwl_final_um=self.total_hpwl(locations),
            moves_attempted=iterations,
            moves_accepted=accepted,
            timing_driven=weights is not None,
        )
        return placement, report

    # -- STA feedback -----------------------------------------------------------

    def wire_caps_ff(self, placement: Placement) -> dict[str, float]:
        """Per-net wire capacitance from placed HPWL, for STA."""
        caps: dict[str, float] = {}
        for net in self._net_pins:
            caps[net] = (
                self._net_hpwl(net, placement.locations) * WIRE_CAP_FF_PER_UM
            )
        return caps
