"""Timing-driven standard-cell placement by simulated annealing.

The placer maps every instance of a module onto a site grid and
minimises a weighted half-perimeter wirelength (HPWL).  Net weights
come from timing criticality (negative-slack endpoints upstream of a
net raise its weight), which is what "timing-driven placement" meant
in the paper's flow; ablation A5 compares pure-wirelength against
timing-driven annealing.

Placement results feed wire capacitances back into
:mod:`repro.sta` (cap per micron of HPWL), closing the placement <->
timing loop the way physical synthesis does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..liberty import CellLibrary
from ..netlist import Module
from ..perf import fanout, stage_timer
from ..sta import TimingAnalyzer, TimingConstraints

#: Routed-wire capacitance per micron of estimated length (0.25 um
#: metal stack ballpark).
WIRE_CAP_FF_PER_UM = 0.18


def _restart_worker(task):
    """One independent anneal for :meth:`AnnealingPlacer.multi_restart`.

    Module-level so it pickles into a process pool; rebuilds the placer
    from the task tuple, which makes the restart a pure function of its
    seed.
    """
    (module, site_pitch_um, utilization, seed, iterations,
     timing_constraints, initial_temperature) = task
    placer = AnnealingPlacer(
        module,
        site_pitch_um=site_pitch_um,
        utilization=utilization,
        seed=seed,
    )
    return placer.place(
        iterations=iterations,
        timing_constraints=timing_constraints,
        initial_temperature=initial_temperature,
    )


@dataclass
class Placement:
    """Cell coordinates on a uniform site grid."""

    module_name: str
    site_pitch_um: float
    grid_width: int
    grid_height: int
    locations: dict[str, tuple[int, int]] = field(default_factory=dict)

    def position_um(self, instance: str) -> tuple[float, float]:
        col, row = self.locations[instance]
        return (col * self.site_pitch_um, row * self.site_pitch_um)


@dataclass
class PlacementReport:
    """Quality metrics of one placement run."""

    hpwl_initial_um: float
    hpwl_final_um: float
    moves_attempted: int
    moves_accepted: int
    timing_driven: bool

    @property
    def improvement(self) -> float:
        if self.hpwl_initial_um == 0:
            return 0.0
        return 1.0 - self.hpwl_final_um / self.hpwl_initial_um


class AnnealingPlacer:
    """Simulated-annealing placer for one flat module."""

    def __init__(
        self,
        module: Module,
        *,
        site_pitch_um: float = 10.0,
        utilization: float = 0.6,
        seed: int = 0,
    ) -> None:
        self.module = module
        self.site_pitch_um = site_pitch_um
        self._seed = seed
        self._utilization = utilization
        self.rng = np.random.default_rng(seed)
        cells = list(module.instances)
        side = max(2, math.ceil(math.sqrt(len(cells) / utilization)))
        self.grid_width = side
        self.grid_height = side
        self._cells = cells
        self._net_pins = self._collect_net_pins()

    def _collect_net_pins(self) -> dict[str, list[str]]:
        """Instances on each multi-pin net (ports pinned to the edge)."""
        net_pins: dict[str, list[str]] = {}
        for inst in self.module.instances.values():
            for net_name in inst.connections.values():
                net_pins.setdefault(net_name, []).append(inst.name)
        # Only nets with 2+ distinct cells contribute to HPWL.
        return {
            net: sorted(set(members))
            for net, members in net_pins.items()
            if len(set(members)) >= 2
        }

    # -- cost -------------------------------------------------------------

    def _net_hpwl(self, net: str, locations: Mapping[str, tuple[int, int]]
                  ) -> float:
        xs = [locations[i][0] for i in self._net_pins[net]]
        ys = [locations[i][1] for i in self._net_pins[net]]
        return (max(xs) - min(xs) + max(ys) - min(ys)) * self.site_pitch_um

    def total_hpwl(self, locations: Mapping[str, tuple[int, int]],
                   weights: Mapping[str, float] | None = None) -> float:
        total = 0.0
        for net in self._net_pins:
            weight = 1.0 if weights is None else weights.get(net, 1.0)
            total += weight * self._net_hpwl(net, locations)
        return total

    # -- timing weights ------------------------------------------------------

    def criticality_weights(
        self, constraints: TimingConstraints
    ) -> dict[str, float]:
        """Net weights from slack: negative-slack cones get weight 3,
        near-critical 2, everything else 1."""
        analyzer = TimingAnalyzer(self.module, constraints)
        arrivals = analyzer.compute_arrivals(worst=True)
        slacks = analyzer.endpoint_slacks()
        if not slacks:
            return {}
        worst = min(slacks.values())
        threshold = max(worst, 0.0)
        weights: dict[str, float] = {}
        # Weight nets by how close their arrival is to the worst path.
        max_arrival = max(arrivals.values()) if arrivals else 1.0
        for net in self._net_pins:
            arrival = arrivals.get(net, 0.0)
            ratio = arrival / max(max_arrival, 1e-9)
            if ratio > 0.85:
                weights[net] = 3.0
            elif ratio > 0.6:
                weights[net] = 2.0
            else:
                weights[net] = 1.0
        return weights

    # -- annealing -------------------------------------------------------------

    def initial_placement(self) -> dict[str, tuple[int, int]]:
        """Deterministic scan-order seeding."""
        locations: dict[str, tuple[int, int]] = {}
        for index, name in enumerate(self._cells):
            locations[name] = (index % self.grid_width,
                               index // self.grid_width)
        return locations

    def place(
        self,
        *,
        iterations: int | None = None,
        timing_constraints: TimingConstraints | None = None,
        initial_temperature: float | None = None,
        engine: str = "fast",
    ) -> tuple[Placement, PlacementReport]:
        """Run the anneal; returns the placement and its report.

        ``engine="fast"`` (default) runs the incremental-HPWL engine:
        integer coordinate arrays, a flat occupancy grid, and per-net
        cached HPWL so a move only re-measures the nets touching the
        moved cell(s).  ``engine="reference"`` runs the original
        dict-based implementation.  Both consume the generator stream
        identically (three ``integers`` draws per attempted move, one
        ``random`` draw only when ``delta > 0``), and with the default
        integer-exact geometry (site coordinates times a pitch like
        10.0, weights from {1, 2, 3}) every float in the delta is
        exact, so the two engines accept the same moves and return
        bit-identical placements.
        """
        if engine == "reference":
            return self._place_reference(
                iterations=iterations,
                timing_constraints=timing_constraints,
                initial_temperature=initial_temperature,
            )
        if engine != "fast":
            raise ValueError(f"unknown placement engine: {engine!r}")
        with stage_timer("placement.anneal") as stats:
            placement, report = self._place_fast(
                iterations=iterations,
                timing_constraints=timing_constraints,
                initial_temperature=initial_temperature,
            )
            stats.add(moves=report.moves_attempted)
        return placement, report

    def _place_fast(
        self,
        *,
        iterations: int | None = None,
        timing_constraints: TimingConstraints | None = None,
        initial_temperature: float | None = None,
    ) -> tuple[Placement, PlacementReport]:
        weights = None
        if timing_constraints is not None:
            weights = self.criticality_weights(timing_constraints)

        names = self._cells
        n = len(names)
        grid_w = self.grid_width
        grid_h = self.grid_height
        pitch = self.site_pitch_um
        rng = self.rng

        net_names = list(self._net_pins)
        index_of = {name: i for i, name in enumerate(names)}
        members: list[list[int]] = [
            [index_of[m] for m in self._net_pins[net]] for net in net_names
        ]
        net_weight: list[float] = [
            1.0 if weights is None else weights.get(net, 1.0)
            for net in net_names
        ]
        cell_nets: list[list[int]] = [[] for _ in range(n)]
        for nid, mem in enumerate(members):
            for cell in mem:
                cell_nets[cell].append(nid)
        cell_net_sets = [set(nets) for nets in cell_nets]

        # Initial placement: scan order, one cell per site.
        xs = [i % grid_w for i in range(n)]
        ys = [i // grid_w for i in range(n)]
        grid = [-1] * (grid_w * grid_h)
        for i in range(n):
            grid[ys[i] * grid_w + xs[i]] = i

        def measure(nid: int) -> float:
            mem = members[nid]
            first = mem[0]
            min_x = max_x = xs[first]
            min_y = max_y = ys[first]
            for cell in mem[1:]:
                x = xs[cell]
                y = ys[cell]
                if x < min_x:
                    min_x = x
                elif x > max_x:
                    max_x = x
                if y < min_y:
                    min_y = y
                elif y > max_y:
                    max_y = y
            return (max_x - min_x + max_y - min_y) * pitch

        net_hpwl = [measure(nid) for nid in range(len(members))]
        current_cost = 0.0
        for nid in range(len(net_names)):
            current_cost += net_weight[nid] * net_hpwl[nid]
        initial_cost = current_cost

        if iterations is None:
            iterations = max(2000, 40 * n)
        temperature = (
            initial_temperature
            if initial_temperature is not None
            else max(current_cost / max(len(net_names), 1), 1.0)
        )
        cooling = 0.995 if n < 500 else 0.999
        accepted = 0
        exp = math.exp

        for _step in range(iterations):
            mover = int(rng.integers(0, n))
            tx = int(rng.integers(0, grid_w))
            ty = int(rng.integers(0, grid_h))
            partner = grid[ty * grid_w + tx]
            if partner == mover:
                continue
            nets_m = cell_nets[mover]
            if partner >= 0:
                set_m = cell_net_sets[mover]
                affected = nets_m + [
                    nid for nid in cell_nets[partner] if nid not in set_m
                ]
            else:
                affected = nets_m
            before = 0.0
            for nid in affected:
                before += net_weight[nid] * net_hpwl[nid]
            old_x = xs[mover]
            old_y = ys[mover]
            xs[mover] = tx
            ys[mover] = ty
            if partner >= 0:
                xs[partner] = old_x
                ys[partner] = old_y
            after = 0.0
            new_hpwl = []
            for nid in affected:
                h = measure(nid)
                new_hpwl.append(h)
                after += net_weight[nid] * h
            delta = after - before
            if delta <= 0 or rng.random() < exp(
                -delta / max(temperature, 1e-9)
            ):
                grid[old_y * grid_w + old_x] = partner
                grid[ty * grid_w + tx] = mover
                for nid, h in zip(affected, new_hpwl):
                    net_hpwl[nid] = h
                current_cost += delta
                accepted += 1
            else:
                xs[mover] = old_x
                ys[mover] = old_y
                if partner >= 0:
                    xs[partner] = tx
                    ys[partner] = ty
            temperature *= cooling

        locations = {name: (xs[i], ys[i]) for i, name in enumerate(names)}
        placement = Placement(
            module_name=self.module.name,
            site_pitch_um=self.site_pitch_um,
            grid_width=grid_w,
            grid_height=grid_h,
            locations=locations,
        )
        # Unweighted final HPWL; the cache holds unweighted values.
        final_cost = 0.0
        for nid in range(len(members)):
            final_cost += measure(nid)
        report = PlacementReport(
            hpwl_initial_um=initial_cost if weights is None
            else self.total_hpwl(self.initial_placement()),
            hpwl_final_um=final_cost,
            moves_attempted=iterations,
            moves_accepted=accepted,
            timing_driven=weights is not None,
        )
        return placement, report

    def _place_reference(
        self,
        *,
        iterations: int | None = None,
        timing_constraints: TimingConstraints | None = None,
        initial_temperature: float | None = None,
    ) -> tuple[Placement, PlacementReport]:
        """Original non-incremental anneal, kept as the equivalence
        reference for the fast engine."""
        locations = self.initial_placement()
        weights = None
        if timing_constraints is not None:
            weights = self.criticality_weights(timing_constraints)
        occupied: dict[tuple[int, int], str] = {
            loc: name for name, loc in locations.items()
        }
        current_cost = self.total_hpwl(locations, weights)
        initial_cost = current_cost

        n = len(self._cells)
        if iterations is None:
            iterations = max(2000, 40 * n)
        temperature = (
            initial_temperature
            if initial_temperature is not None
            else max(current_cost / max(len(self._net_pins), 1), 1.0)
        )
        cooling = 0.995 if n < 500 else 0.999
        accepted = 0

        cell_nets: dict[str, list[str]] = {name: [] for name in self._cells}
        for net, members in self._net_pins.items():
            for member in members:
                cell_nets[member].append(net)

        for step in range(iterations):
            mover = self._cells[int(self.rng.integers(0, n))]
            target = (
                int(self.rng.integers(0, self.grid_width)),
                int(self.rng.integers(0, self.grid_height)),
            )
            swap_partner = occupied.get(target)
            if swap_partner == mover:
                continue
            affected = set(cell_nets[mover])
            if swap_partner is not None:
                affected |= set(cell_nets[swap_partner])
            before = sum(
                (1.0 if weights is None else weights.get(net, 1.0))
                * self._net_hpwl(net, locations)
                for net in affected
            )
            old_loc = locations[mover]
            locations[mover] = target
            if swap_partner is not None:
                locations[swap_partner] = old_loc
            after = sum(
                (1.0 if weights is None else weights.get(net, 1.0))
                * self._net_hpwl(net, locations)
                for net in affected
            )
            delta = after - before
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            ):
                # Accept: update occupancy and cost.
                occupied.pop(old_loc, None)
                occupied[target] = mover
                if swap_partner is not None:
                    occupied[old_loc] = swap_partner
                current_cost += delta
                accepted += 1
            else:
                # Reject: roll back.
                locations[mover] = old_loc
                if swap_partner is not None:
                    locations[swap_partner] = target
            temperature *= cooling

        placement = Placement(
            module_name=self.module.name,
            site_pitch_um=self.site_pitch_um,
            grid_width=self.grid_width,
            grid_height=self.grid_height,
            locations=dict(locations),
        )
        report = PlacementReport(
            hpwl_initial_um=initial_cost if weights is None
            else self.total_hpwl(self.initial_placement()),
            hpwl_final_um=self.total_hpwl(locations),
            moves_attempted=iterations,
            moves_accepted=accepted,
            timing_driven=weights is not None,
        )
        return placement, report

    # -- multi-restart ----------------------------------------------------------

    def multi_restart(
        self,
        *,
        restarts: int = 4,
        seed: int | None = None,
        workers: int | None = None,
        iterations: int | None = None,
        timing_constraints: TimingConstraints | None = None,
        initial_temperature: float | None = None,
    ) -> tuple[Placement, PlacementReport, int]:
        """Anneal ``restarts`` times from seeds ``seed .. seed+restarts-1``
        and keep the best (lowest final HPWL; ties break to the lowest
        seed).  Restarts are independent, so they fan out across a
        process pool when ``workers > 1`` -- the winner is identical for
        any worker count.  Returns ``(placement, report, winning_seed)``.
        """
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        base_seed = self._seed if seed is None else seed
        tasks = [
            (
                self.module,
                self.site_pitch_um,
                self._utilization,
                base_seed + k,
                iterations,
                timing_constraints,
                initial_temperature,
            )
            for k in range(restarts)
        ]
        results = fanout(
            _restart_worker, tasks, workers=workers,
            stage="placement.restarts",
        )
        best = min(
            range(restarts), key=lambda k: results[k][1].hpwl_final_um
        )
        placement, report = results[best]
        return placement, report, base_seed + best

    # -- STA feedback -----------------------------------------------------------

    def wire_caps_ff(
        self,
        placement: Placement,
        *,
        library: CellLibrary | None = None,
        corner: str = "tt",
    ) -> dict[str, float]:
        """Per-net wire capacitance from placed HPWL, for STA.

        With a characterized ``library`` the per-micron capacitance
        comes from the library's process node, derated to ``corner``;
        otherwise the legacy flat constant applies (identical numbers
        at the typical corner of the default 0.25 um node).
        """
        if library is not None:
            cap_per_um = library.wire_cap_per_um(corner)
        else:
            cap_per_um = WIRE_CAP_FF_PER_UM
        caps: dict[str, float] = {}
        for net in self._net_pins:
            caps[net] = (
                self._net_hpwl(net, placement.locations) * cap_per_um
            )
        return caps
