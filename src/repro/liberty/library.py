"""Characterized-library object model.

A :class:`CellLibrary` is the signoff-grade companion of
:class:`repro.netlist.StdCellLibrary`: where the netlist library
carries one linear delay constant per cell, the characterized library
carries full NLDM lookup tables (delay and output transition over an
input-slew x output-load grid), per-arc internal-power tables, pin
capacitances, leakage, and a set of process :class:`Corner` derates --
the data a multi-corner STA signoff actually consumes.

Everything is an immutable dataclass over plain tuples, so libraries
pickle cleanly for process fan-out, compare with ``==``, and digest
into a stable :meth:`CellLibrary.fingerprint` that keys the compiled
timing-graph cache exactly like ``Module.fingerprint()`` keys the
compiled simulation cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from .tables import TableValues, validate_table


@dataclass(frozen=True)
class Corner:
    """One process/voltage/temperature corner as a set of derates.

    Delay and slew derates multiply interpolated table values; the
    leakage derate scales characterized leakage; the wire derate
    scales extracted wire capacitance (metal corners track process).
    """

    name: str
    delay_derate: float = 1.0
    slew_derate: float = 1.0
    vdd_v: float = 2.5
    leakage_derate: float = 1.0
    wire_derate: float = 1.0

    def __post_init__(self) -> None:
        if self.delay_derate <= 0 or self.slew_derate <= 0:
            raise ValueError(f"corner {self.name}: derates must be positive")


#: The standard signoff corner set: slow/typical/fast.
STANDARD_CORNERS: tuple[Corner, ...] = (
    Corner("ss", delay_derate=1.18, slew_derate=1.22, vdd_v=2.25,
           leakage_derate=0.55, wire_derate=1.05),
    Corner("tt"),
    Corner("ff", delay_derate=0.85, slew_derate=0.82, vdd_v=2.75,
           leakage_derate=2.60, wire_derate=0.97),
)


@dataclass(frozen=True)
class LibertyPin:
    """One characterized cell pin."""

    name: str
    direction: str  # "input" | "output"
    capacitance_ff: float = 0.0
    is_clock: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise ValueError(f"bad pin direction {self.direction!r}")


@dataclass(frozen=True)
class TimingArc:
    """One characterized input->output timing arc.

    ``delay_ps`` and ``transition_ps`` are NLDM tables over the
    library's shared (slew, load) grid; ``internal_energy_fj`` is the
    per-switching-event internal energy over the same grid.  ``kind``
    is ``"combinational"`` for gate arcs and ``"rising_edge"`` for
    flop clock-to-output arcs.
    """

    related_pin: str
    output_pin: str
    kind: str
    delay_ps: TableValues
    transition_ps: TableValues
    internal_energy_fj: TableValues

    def __post_init__(self) -> None:
        if self.kind not in ("combinational", "rising_edge"):
            raise ValueError(f"bad arc kind {self.kind!r}")


@dataclass(frozen=True)
class LibertyCell:
    """One characterized standard cell."""

    name: str
    area_um2: float
    leakage_nw: float
    vt_class: str
    drive_strength: int
    footprint: str
    is_sequential: bool
    clock_pin: str | None
    data_pin: str | None
    pins: tuple[LibertyPin, ...]
    arcs: tuple[TimingArc, ...]

    def pin(self, name: str) -> LibertyPin:
        """Look up one pin spec by name."""
        for spec in self.pins:
            if spec.name == name:
                return spec
        raise KeyError(f"cell {self.name} has no pin {name!r}")

    @property
    def input_pins(self) -> tuple[str, ...]:
        """Input pin names in declaration order."""
        return tuple(p.name for p in self.pins if p.direction == "input")

    @property
    def output_pins(self) -> tuple[str, ...]:
        """Output pin names in declaration order."""
        return tuple(p.name for p in self.pins if p.direction == "output")

    def arcs_to(self, output_pin: str) -> tuple[TimingArc, ...]:
        """All arcs ending at one output pin, in declaration order."""
        return tuple(a for a in self.arcs if a.output_pin == output_pin)


@dataclass(frozen=True)
class CellLibrary:
    """A characterized NLDM cell library with multi-corner derates.

    One shared (slew, load) grid indexes every table in the library --
    the restriction that lets the vectorized STA stack all tables into
    a single ``[T, S, L]`` array and interpolate every arc of a level
    in one gather.
    """

    name: str
    source_library: str
    process_node_um: float
    seed: int
    slew_index_ps: tuple[float, ...]
    load_index_ff: tuple[float, ...]
    wire_cap_ff_per_um: float
    corners: tuple[Corner, ...] = STANDARD_CORNERS
    cells: dict[str, LibertyCell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [c.name for c in self.corners]
        if len(names) != len(set(names)):
            raise ValueError("duplicate corner names")
        for cell in self.cells.values():
            for arc in cell.arcs:
                for label, values in (
                    ("delay", arc.delay_ps),
                    ("transition", arc.transition_ps),
                    ("internal", arc.internal_energy_fj),
                ):
                    validate_table(
                        values, self.slew_index_ps, self.load_index_ff,
                        name=f"{cell.name}.{arc.related_pin}->"
                             f"{arc.output_pin} {label}",
                    )

    # -- lookups -----------------------------------------------------

    def cell(self, name: str) -> LibertyCell:
        """Look up one characterized cell by name."""
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"library {self.name} has no characterized cell {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self) -> Iterator[LibertyCell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def corner(self, name: str) -> Corner:
        """Look up one corner by name."""
        for corner in self.corners:
            if corner.name == name:
                return corner
        raise KeyError(
            f"library {self.name} has no corner {name!r}; available: "
            f"{[c.name for c in self.corners]}"
        )

    def corner_names(self) -> tuple[str, ...]:
        """All corner names in declaration (slow-to-fast) order."""
        return tuple(c.name for c in self.corners)

    def wire_cap_per_um(self, corner: str = "tt") -> float:
        """Wire capacitance per micron at one corner (fF/um)."""
        return self.wire_cap_ff_per_um * self.corner(corner).wire_derate

    def drive_variants(self, footprint: str, *, vt_class: str = "svt"
                       ) -> list[LibertyCell]:
        """Drive-strength variants sharing a footprint, weakest first."""
        variants = [
            c for c in self.cells.values()
            if c.footprint == footprint and c.vt_class == vt_class
        ]
        return sorted(variants, key=lambda c: (c.drive_strength, c.name))

    def vt_variant(self, cell_name: str, vt_class: str) -> LibertyCell | None:
        """The same cell in another Vt class, or None if absent."""
        base = self.cell(cell_name)
        for candidate in self.cells.values():
            if (candidate.footprint == base.footprint
                    and candidate.vt_class == vt_class
                    and candidate.drive_strength == base.drive_strength):
                return candidate
        return None

    # -- identity ----------------------------------------------------

    def _canonical(self) -> tuple:
        cells = tuple(
            (
                cell.name, cell.area_um2, cell.leakage_nw, cell.vt_class,
                cell.drive_strength, cell.footprint, cell.is_sequential,
                cell.clock_pin, cell.data_pin,
                tuple(
                    (p.name, p.direction, p.capacitance_ff, p.is_clock)
                    for p in cell.pins
                ),
                tuple(
                    (a.related_pin, a.output_pin, a.kind, a.delay_ps,
                     a.transition_ps, a.internal_energy_fj)
                    for a in cell.arcs
                ),
            )
            for name, cell in sorted(self.cells.items())
        )
        corners = tuple(
            (c.name, c.delay_derate, c.slew_derate, c.vdd_v,
             c.leakage_derate, c.wire_derate)
            for c in self.corners
        )
        return (
            self.name, self.source_library, self.process_node_um, self.seed,
            self.slew_index_ps, self.load_index_ff, self.wire_cap_ff_per_um,
            corners, cells,
        )

    def fingerprint(self) -> str:
        """Stable sha256 digest of the full characterized content.

        Two libraries with equal fingerprints produce identical timing
        for any netlist; the digest keys the compiled timing-graph
        cache and the artifact cache alongside ``Module.fingerprint``.
        """
        return hashlib.sha256(repr(self._canonical()).encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellLibrary):
            return NotImplemented
        return self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CellLibrary {self.name}: {len(self.cells)} cells, "
            f"{len(self.corners)} corners, "
            f"{len(self.slew_index_ps)}x{len(self.load_index_ff)} grid>"
        )
