"""Deterministic NLDM characterization of a standard-cell library.

Real libraries come out of SPICE characterization runs; here we play
the characterization tool: :func:`characterize_library` derives full
NLDM delay/transition/internal-power tables for every cell of a
:class:`repro.netlist.StdCellLibrary` from seeded, monotone scaling
laws over the cell's electrical attributes (intrinsic delay, drive
resistance, Vt class, drive strength).

The laws are physical in shape -- delay grows affinely in input slew
and output load with a weak sqrt coupling term, HVT cells are more
slew-sensitive than LVT -- and every coefficient is positive, so all
tables are strictly monotone along both axes (a property the test
suite checks via hypothesis).  A per-arc jitter drawn from
``np.random.default_rng([seed, crc32(arc name)])`` makes tables
realistically non-uniform while staying bit-reproducible regardless
of cell iteration order.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.netlist.library import Cell, StdCellLibrary, make_default_library

from .library import (
    STANDARD_CORNERS,
    CellLibrary,
    Corner,
    LibertyCell,
    LibertyPin,
    TimingArc,
)
from .tables import TableValues

#: Default characterization grid: input transition in ps ...
DEFAULT_SLEW_INDEX_PS: tuple[float, ...] = (10.0, 25.0, 60.0, 150.0, 400.0)
#: ... by output load in fF.
DEFAULT_LOAD_INDEX_FF: tuple[float, ...] = (1.0, 4.0, 10.0, 25.0, 60.0, 150.0)

#: Wire capacitance per micron of estimated route at the 0.25 um
#: reference node; thinner nodes route on proportionally thinner metal.
_BASE_WIRE_CAP_FF_PER_UM = 0.18
_REFERENCE_NODE_UM = 0.25

#: Slew-sensitivity of delay per Vt class: high-Vt transistors switch
#: later on a slow edge, low-Vt earlier.
_VT_SLEW_SENSITIVITY = {"hvt": 1.10, "svt": 1.00, "lvt": 0.92}

#: Fraction of an event's load energy dissipated inside the cell.
_INTERNAL_ENERGY_PER_AREA_FJ = 0.012


def _arc_rng(seed: int, cell: str, related: str, output: str
             ) -> np.random.Generator:
    """The per-arc jitter stream; depends only on the seed + arc name."""
    tag = zlib.crc32(f"{cell}:{related}->{output}".encode())
    return np.random.default_rng([seed, tag])


def _arc_tables(
    cell: Cell,
    related: str,
    output: str,
    seed: int,
    slew_index: tuple[float, ...],
    load_index: tuple[float, ...],
) -> tuple[TableValues, TableValues, TableValues]:
    """Characterize one arc: (delay, transition, internal energy)."""
    rng = _arc_rng(seed, cell.name, related, output)
    # A fixed number of draws in a fixed order keeps the stream stable
    # if laws gain parameters later.
    j_delay = float(rng.uniform(0.96, 1.04))
    j_slope = float(rng.uniform(0.94, 1.06))
    j_tran = float(rng.uniform(0.95, 1.05))
    j_energy = float(rng.uniform(0.92, 1.08))

    intrinsic = cell.intrinsic_delay_ps
    r_drive = cell.drive_resistance_kohm
    slew_sens = _VT_SLEW_SENSITIVITY.get(cell.vt_class, 1.0)

    # delay(s, l) = a*I + b*s + R*l + c*sqrt(s*l): affine in both axes
    # with a weak positive coupling term.  kohm x fF = ps, so the load
    # slope is the cell's drive resistance directly.
    a_coeff = 0.85 * j_delay
    b_coeff = 0.16 * slew_sens * j_slope
    c_coeff = 0.040 * r_drive

    # transition(s, l) = t0 + 0.08*s + k*R*l: the output edge is set
    # mostly by R*C, with a weak dependence on the input edge.
    t0 = 9.0 * j_tran + 0.06 * intrinsic
    k_tran = 0.90 * j_tran

    # internal energy per event (fJ): crowbar + internal node charge.
    e0 = _INTERNAL_ENERGY_PER_AREA_FJ * cell.area_um2 * j_energy
    e_slew = 0.0035 * j_energy  # fJ per ps of input slew (crowbar)
    e_load = 0.0080 * r_drive  # fJ per fF (internal node coupling)

    delay_rows = []
    tran_rows = []
    energy_rows = []
    for s in slew_index:
        delay_row = []
        tran_row = []
        energy_row = []
        for load in load_index:
            coupling = c_coeff * math.sqrt(s * load)
            delay_row.append(
                a_coeff * intrinsic + b_coeff * s + r_drive * load + coupling
            )
            tran_row.append(t0 + 0.08 * s + k_tran * r_drive * load)
            energy_row.append(e0 + e_slew * s + e_load * load)
        delay_rows.append(tuple(delay_row))
        tran_rows.append(tuple(tran_row))
        energy_rows.append(tuple(energy_row))
    return tuple(delay_rows), tuple(tran_rows), tuple(energy_rows)


def _characterize_cell(
    cell: Cell,
    seed: int,
    slew_index: tuple[float, ...],
    load_index: tuple[float, ...],
) -> LibertyCell:
    pins = tuple(
        LibertyPin(
            name=p.name,
            direction=p.direction,
            capacitance_ff=p.capacitance_ff,
            is_clock=(cell.clock_pin == p.name),
        )
        for p in cell.pins
    )

    arcs: list[TimingArc] = []
    if cell.is_sequential:
        # One rising-edge clock-to-output arc per output pin.
        assert cell.clock_pin is not None
        for out in cell.output_pins:
            delay, tran, energy = _arc_tables(
                cell, cell.clock_pin, out, seed, slew_index, load_index)
            arcs.append(TimingArc(cell.clock_pin, out, "rising_edge",
                                  delay, tran, energy))
    else:
        for out in cell.output_pins:
            for inp in cell.input_pins:
                delay, tran, energy = _arc_tables(
                    cell, inp, out, seed, slew_index, load_index)
                arcs.append(TimingArc(inp, out, "combinational",
                                      delay, tran, energy))

    return LibertyCell(
        name=cell.name,
        area_um2=cell.area_um2,
        leakage_nw=cell.leakage_nw,
        vt_class=cell.vt_class,
        drive_strength=cell.drive_strength,
        footprint=cell.footprint,
        is_sequential=cell.is_sequential,
        clock_pin=cell.clock_pin,
        data_pin=cell.data_pin,
        pins=pins,
        arcs=tuple(arcs),
    )


def characterize_library(
    std_lib: StdCellLibrary,
    *,
    seed: int = 0,
    corners: tuple[Corner, ...] = STANDARD_CORNERS,
    slew_index_ps: tuple[float, ...] = DEFAULT_SLEW_INDEX_PS,
    load_index_ff: tuple[float, ...] = DEFAULT_LOAD_INDEX_FF,
) -> CellLibrary:
    """Characterize every cell of ``std_lib`` into a :class:`CellLibrary`.

    Deterministic: the same (library, seed, grid) always yields the
    same tables and therefore the same fingerprint, independent of
    cell registration order.
    """
    wire_cap = _BASE_WIRE_CAP_FF_PER_UM * (
        std_lib.process_node_um / _REFERENCE_NODE_UM
    )
    cells = {
        cell.name: _characterize_cell(cell, seed, slew_index_ps, load_index_ff)
        for cell in sorted(std_lib, key=lambda c: c.name)
    }
    return CellLibrary(
        name=f"{std_lib.name}_nldm_s{seed}",
        source_library=std_lib.name,
        process_node_um=std_lib.process_node_um,
        seed=seed,
        slew_index_ps=slew_index_ps,
        load_index_ff=load_index_ff,
        wire_cap_ff_per_um=wire_cap,
        corners=corners,
        cells=cells,
    )


_DEFAULT_CACHE: dict[tuple[str, float, int, int], CellLibrary] = {}


def default_cell_library(
    std_lib: StdCellLibrary | None = None, *, seed: int = 0
) -> CellLibrary:
    """The memoized default characterized library for one netlist library.

    Consumers (:mod:`repro.eco`, :mod:`repro.lowpower`,
    :mod:`repro.physical`) call this when no explicit library is
    supplied, so repeated analyses share one characterization.
    """
    if std_lib is None:
        std_lib = make_default_library()
    key = (std_lib.name, std_lib.process_node_um, len(std_lib), seed)
    cached = _DEFAULT_CACHE.get(key)
    if cached is None:
        cached = characterize_library(std_lib, seed=seed)
        _DEFAULT_CACHE[key] = cached
    return cached
