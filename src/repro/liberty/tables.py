"""NLDM lookup tables and bilinear interpolation.

A Liberty NLDM timing arc is a small 2-D table of values indexed by
(input transition, output load).  This module owns the two lookup
implementations the STA engines use:

* :func:`lookup_scalar` -- one (slew, load) point at a time, plain
  Python arithmetic, used by the retained per-arc reference walker;
* :func:`lookup_vector` -- batched numpy lookup over arrays of query
  points against a stack of tables, used by the vectorized sweep.

Both clamp queries to the characterized grid (no extrapolation) and
evaluate the *same* bilinear formula in the same operation order, so a
scalar lookup and the corresponding lane of a vector lookup return
bit-identical float64 values -- the foundation of the engine
equivalence contract in :mod:`repro.sta.nldm`.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]

#: Table values are stored row-major as ``values[slew_index][load_index]``.
TableValues = tuple[tuple[float, ...], ...]


def grid_interval_scalar(grid: tuple[float, ...], x: float) -> tuple[int, float]:
    """Clamped interval index and fraction for one query on one axis.

    Returns ``(i, f)`` with ``grid[i] <= x' <= grid[i+1]`` where ``x'``
    is ``x`` clamped into ``[grid[0], grid[-1]]`` and
    ``f = (x' - grid[i]) / (grid[i+1] - grid[i])``.
    """
    lo, hi = grid[0], grid[-1]
    if x < lo:
        x = lo
    elif x > hi:
        x = hi
    i = bisect_right(grid, x) - 1
    last = len(grid) - 2
    if i < 0:
        i = 0
    elif i > last:
        i = last
    return i, (x - grid[i]) / (grid[i + 1] - grid[i])


def grid_interval_vector(
    grid: FloatArray, x: FloatArray
) -> tuple[IntArray, FloatArray]:
    """Vectorized :func:`grid_interval_scalar` over an array of queries."""
    clamped = np.clip(x, grid[0], grid[-1])
    i = np.searchsorted(grid, clamped, side="right") - 1
    i = np.clip(i, 0, len(grid) - 2)
    return i, (clamped - grid[i]) / (grid[i + 1] - grid[i])


def bilinear_scalar(
    values: FloatArray,
    si: int,
    fs: float,
    li: int,
    fl: float,
) -> float:
    """Bilinear blend of one table cell; ``values`` is a 2-D float64 array."""
    v00 = values[si, li]
    v01 = values[si, li + 1]
    v10 = values[si + 1, li]
    v11 = values[si + 1, li + 1]
    v0 = v00 + (v01 - v00) * fl
    v1 = v10 + (v11 - v10) * fl
    return float(v0 + (v1 - v0) * fs)


def lookup_scalar(
    values: FloatArray,
    slew_grid: tuple[float, ...],
    load_grid: tuple[float, ...],
    slew: float,
    load: float,
) -> float:
    """Interpolate one NLDM table at one (slew, load) query point."""
    si, fs = grid_interval_scalar(slew_grid, slew)
    li, fl = grid_interval_scalar(load_grid, load)
    return bilinear_scalar(values, si, fs, li, fl)


def lookup_vector(
    tables: FloatArray,
    table_ids: IntArray,
    slew_grid: FloatArray,
    load_grid: FloatArray,
    slews: FloatArray,
    loads: FloatArray,
) -> FloatArray:
    """Batched bilinear lookup against a ``[T, S, L]`` table stack.

    ``table_ids`` selects a table per query; ``slews``/``loads`` are
    broadcast-compatible query arrays (the STA sweep passes
    ``[corners, arcs]`` slews against ``[arcs]`` ids and loads).
    Returns float64 results with the broadcast shape.
    """
    si, fs = grid_interval_vector(slew_grid, slews)
    li, fl = grid_interval_vector(load_grid, loads)
    v00 = tables[table_ids, si, li]
    v01 = tables[table_ids, si, li + 1]
    v10 = tables[table_ids, si + 1, li]
    v11 = tables[table_ids, si + 1, li + 1]
    v0 = v00 + (v01 - v00) * fl
    v1 = v10 + (v11 - v10) * fl
    return np.asarray(v0 + (v1 - v0) * fs, dtype=np.float64)


def table_array(values: TableValues) -> FloatArray:
    """A table's tuple-of-tuples payload as a float64 array."""
    return np.asarray(values, dtype=np.float64)


def validate_table(
    values: TableValues,
    slew_grid: tuple[float, ...],
    load_grid: tuple[float, ...],
    *,
    name: str = "table",
) -> None:
    """Check table/grid shape consistency; raises ``ValueError``."""
    if len(slew_grid) < 2 or len(load_grid) < 2:
        raise ValueError(f"{name}: grids need at least 2 points per axis")
    if any(b <= a for a, b in zip(slew_grid, slew_grid[1:])):
        raise ValueError(f"{name}: slew grid must be strictly increasing")
    if any(b <= a for a, b in zip(load_grid, load_grid[1:])):
        raise ValueError(f"{name}: load grid must be strictly increasing")
    if len(values) != len(slew_grid):
        raise ValueError(
            f"{name}: {len(values)} rows != {len(slew_grid)} slew points"
        )
    for row in values:
        if len(row) != len(load_grid):
            raise ValueError(
                f"{name}: row width {len(row)} != {len(load_grid)} "
                "load points"
            )
