"""Liberty-subset text format: serializer and parser.

:func:`write_lib` emits a :class:`CellLibrary` as a Liberty-style
group tree (``library { cell { pin { timing { ... } } } }``) and
:func:`parse_lib` reads it back.  The subset keeps Liberty's surface
syntax -- groups with parenthesized arguments, ``name : value;``
simple attributes, ``name ("...", ...);`` complex attributes, ``/* */``
and ``//`` comments -- but only the constructs this repo produces.

Floats are serialized with ``repr``, which Python guarantees to
round-trip exactly, so ``parse_lib(write_lib(lib)) == lib`` holds
bit-for-bit and the fingerprint survives a trip through the text
format unchanged (the library round-trip contract in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .library import CellLibrary, Corner, LibertyCell, LibertyPin, TimingArc
from .tables import TableValues

# ---------------------------------------------------------------------------
# Generic group-tree model + tokenizer + parser
# ---------------------------------------------------------------------------


@dataclass
class LibertyGroup:
    """One parsed ``kind (args) { ... }`` group."""

    kind: str
    args: tuple[str, ...]
    attrs: dict[str, str] = field(default_factory=dict)
    complex_attrs: list[tuple[str, tuple[str, ...]]] = field(
        default_factory=list)
    children: list["LibertyGroup"] = field(default_factory=list)

    def child(self, kind: str) -> "LibertyGroup | None":
        """First child group of one kind, or None."""
        for group in self.children:
            if group.kind == kind:
                return group
        return None

    def children_of(self, kind: str) -> list["LibertyGroup"]:
        """All child groups of one kind, in file order."""
        return [g for g in self.children if g.kind == kind]

    def complex_attr(self, name: str) -> tuple[str, ...]:
        """Arguments of the first complex attribute with this name."""
        for attr, args in self.complex_attrs:
            if attr == name:
                return args
        raise KeyError(f"group {self.kind} has no complex attr {name!r}")


class LibertyParseError(ValueError):
    """Raised on malformed library text."""


_SYMBOLS = set("{}():;,")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LibertyParseError("unterminated /* comment")
            i = end + 2
        elif text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
        elif ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise LibertyParseError("unterminated string literal")
            tokens.append(text[i:end + 1])
            i = end + 1
        elif ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2  # Liberty line continuation
        elif ch in _SYMBOLS:
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in _SYMBOLS \
                    and text[j] != '"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _unquote(token: str) -> str:
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    return token


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset: int = 0) -> str | None:
        idx = self._pos + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def _next(self) -> str:
        if self._pos >= len(self._tokens):
            raise LibertyParseError("unexpected end of input")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, symbol: str) -> None:
        token = self._next()
        if token != symbol:
            raise LibertyParseError(f"expected {symbol!r}, got {token!r}")

    def _arg_list(self) -> tuple[str, ...]:
        self._expect("(")
        args: list[str] = []
        while True:
            token = self._peek()
            if token == ")":
                self._next()
                return tuple(args)
            if token == ",":
                self._next()
                continue
            args.append(_unquote(self._next()))

    def parse_group(self) -> LibertyGroup:
        kind = self._next()
        args = self._arg_list()
        self._expect("{")
        group = LibertyGroup(kind=kind, args=args)
        self._parse_body_into(group)
        return group

    def _parse_body_into(self, group: LibertyGroup) -> None:
        while True:
            token = self._peek()
            if token is None:
                raise LibertyParseError(f"unterminated group {group.kind!r}")
            if token == "}":
                self._next()
                return
            name = self._next()
            follow = self._peek()
            if follow == ":":
                self._next()
                value = _unquote(self._next())
                self._expect(";")
                group.attrs[name] = value
            elif follow == "(":
                # Either a nested group or a complex attribute --
                # disambiguated by what follows the closing paren.
                attr_args = self._arg_list()
                after = self._peek()
                if after == "{":
                    self._next()
                    child = LibertyGroup(kind=name, args=attr_args)
                    self._parse_body_into(child)
                    group.children.append(child)
                else:
                    self._expect(";")
                    group.complex_attrs.append((name, attr_args))
            else:
                raise LibertyParseError(
                    f"expected ':' or '(' after {name!r}, got {follow!r}")


def parse_groups(text: str) -> LibertyGroup:
    """Parse library text into its top-level group tree."""
    parser = _Parser(_tokenize(text))
    group = parser.parse_group()
    if parser._peek() is not None:
        raise LibertyParseError(
            f"trailing tokens after library group: {parser._peek()!r}")
    return group


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Exact round-trip float formatting (``float(repr(x)) == x``)."""
    return repr(float(value))


def _grid_string(grid: tuple[float, ...]) -> str:
    return '"' + ", ".join(_fmt(x) for x in grid) + '"'


def _values_lines(values: TableValues, indent: str) -> str:
    rows = [f'"{", ".join(_fmt(v) for v in row)}"' for row in values]
    joiner = ", \\\n" + indent + "        "
    return joiner.join(rows)


def _write_table(out: list[str], name: str, template: str,
                 values: TableValues, indent: str) -> None:
    out.append(f"{indent}{name} ({template}) {{")
    out.append(f"{indent}    values ( \\")
    out.append(f"{indent}        {_values_lines(values, indent)} \\")
    out.append(f"{indent}    );")
    out.append(f"{indent}}}")


def _bool(flag: bool) -> str:
    return "true" if flag else "false"


def write_lib(library: CellLibrary) -> str:
    """Serialize a :class:`CellLibrary` as Liberty-subset text."""
    template = (
        f"tmpl_{len(library.slew_index_ps)}x{len(library.load_index_ff)}"
    )
    out: list[str] = []
    out.append(f"library ({library.name}) {{")
    out.append("    /* generated by repro.liberty; units: ps, fF, nW, fJ */")
    out.append(f'    source_library : "{library.source_library}";')
    out.append(f"    process_node_um : {_fmt(library.process_node_um)};")
    out.append(f"    characterization_seed : {library.seed};")
    out.append(
        f"    wire_cap_ff_per_um : {_fmt(library.wire_cap_ff_per_um)};")

    out.append(f"    lu_table_template ({template}) {{")
    out.append("        variable_1 : input_net_transition;")
    out.append("        variable_2 : total_output_net_capacitance;")
    out.append(f"        index_1 ({_grid_string(library.slew_index_ps)});")
    out.append(f"        index_2 ({_grid_string(library.load_index_ff)});")
    out.append("    }")

    for corner in library.corners:
        out.append(f"    operating_conditions ({corner.name}) {{")
        out.append(f"        delay_derate : {_fmt(corner.delay_derate)};")
        out.append(f"        slew_derate : {_fmt(corner.slew_derate)};")
        out.append(f"        voltage : {_fmt(corner.vdd_v)};")
        out.append(
            f"        leakage_derate : {_fmt(corner.leakage_derate)};")
        out.append(f"        wire_derate : {_fmt(corner.wire_derate)};")
        out.append("    }")

    for name in sorted(library.cells):
        cell = library.cells[name]
        out.append(f"    cell ({cell.name}) {{")
        out.append(f"        area : {_fmt(cell.area_um2)};")
        out.append(
            f"        cell_leakage_power : {_fmt(cell.leakage_nw)};")
        out.append(f'        vt_class : "{cell.vt_class}";')
        out.append(f"        drive_strength : {cell.drive_strength};")
        out.append(f'        cell_footprint : "{cell.footprint}";')
        out.append(f"        is_sequential : {_bool(cell.is_sequential)};")
        if cell.clock_pin is not None:
            out.append(f'        clock_pin : "{cell.clock_pin}";')
        if cell.data_pin is not None:
            out.append(f'        data_pin : "{cell.data_pin}";')
        for pin in cell.pins:
            out.append(f"        pin ({pin.name}) {{")
            out.append(f"            direction : {pin.direction};")
            out.append(
                f"            capacitance : {_fmt(pin.capacitance_ff)};")
            if pin.is_clock:
                out.append("            clock : true;")
            for arc in cell.arcs:
                if arc.output_pin != pin.name:
                    continue
                out.append("            timing () {")
                out.append(f'                related_pin : "{arc.related_pin}";')
                out.append(f"                timing_type : {arc.kind};")
                _write_table(out, "cell_delay", template, arc.delay_ps,
                             "                ")
                _write_table(out, "output_transition", template,
                             arc.transition_ps, "                ")
                _write_table(out, "internal_energy", template,
                             arc.internal_energy_fj, "                ")
                out.append("            }")
            out.append("        }")
        out.append("    }")
    out.append("}")
    out.append("")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------


def _parse_grid(group: LibertyGroup, attr: str) -> tuple[float, ...]:
    (raw,) = group.complex_attr(attr)
    return tuple(float(tok) for tok in raw.split(","))


def _parse_table(group: LibertyGroup) -> TableValues:
    rows = group.complex_attr("values")
    return tuple(
        tuple(float(tok) for tok in row.split(",")) for row in rows
    )


def _parse_corner(group: LibertyGroup) -> Corner:
    return Corner(
        name=group.args[0],
        delay_derate=float(group.attrs["delay_derate"]),
        slew_derate=float(group.attrs["slew_derate"]),
        vdd_v=float(group.attrs["voltage"]),
        leakage_derate=float(group.attrs["leakage_derate"]),
        wire_derate=float(group.attrs["wire_derate"]),
    )


def _parse_cell(group: LibertyGroup) -> LibertyCell:
    pins: list[LibertyPin] = []
    arcs: list[TimingArc] = []
    for pin_group in group.children_of("pin"):
        pins.append(
            LibertyPin(
                name=pin_group.args[0],
                direction=pin_group.attrs["direction"],
                capacitance_ff=float(pin_group.attrs["capacitance"]),
                is_clock=pin_group.attrs.get("clock") == "true",
            )
        )
        for timing in pin_group.children_of("timing"):
            tables: dict[str, TableValues] = {}
            for table_group in timing.children:
                tables[table_group.kind] = _parse_table(table_group)
            arcs.append(
                TimingArc(
                    related_pin=timing.attrs["related_pin"],
                    output_pin=pin_group.args[0],
                    kind=timing.attrs["timing_type"],
                    delay_ps=tables["cell_delay"],
                    transition_ps=tables["output_transition"],
                    internal_energy_fj=tables["internal_energy"],
                )
            )
    return LibertyCell(
        name=group.args[0],
        area_um2=float(group.attrs["area"]),
        leakage_nw=float(group.attrs["cell_leakage_power"]),
        vt_class=group.attrs["vt_class"],
        drive_strength=int(group.attrs["drive_strength"]),
        footprint=group.attrs["cell_footprint"],
        is_sequential=group.attrs["is_sequential"] == "true",
        clock_pin=group.attrs.get("clock_pin"),
        data_pin=group.attrs.get("data_pin"),
        pins=tuple(pins),
        arcs=tuple(arcs),
    )


def parse_lib(text: str) -> CellLibrary:
    """Parse Liberty-subset text back into a :class:`CellLibrary`."""
    root = parse_groups(text)
    if root.kind != "library":
        raise LibertyParseError(f"expected library group, got {root.kind!r}")
    template = root.child("lu_table_template")
    if template is None:
        raise LibertyParseError("library has no lu_table_template")
    corners = tuple(
        _parse_corner(g) for g in root.children_of("operating_conditions")
    )
    cells = {
        g.args[0]: _parse_cell(g) for g in root.children_of("cell")
    }
    return CellLibrary(
        name=root.args[0],
        source_library=root.attrs["source_library"],
        process_node_um=float(root.attrs["process_node_um"]),
        seed=int(root.attrs["characterization_seed"]),
        slew_index_ps=_parse_grid(template, "index_1"),
        load_index_ff=_parse_grid(template, "index_2"),
        wire_cap_ff_per_um=float(root.attrs["wire_cap_ff_per_um"]),
        corners=corners,
        cells=cells,
    )
