"""repro.liberty -- characterized NLDM cell library for signoff STA.

The signoff data layer of the flow: deterministic characterization of
the netlist standard-cell library into NLDM lookup tables
(:mod:`repro.liberty.characterize`), an immutable
:class:`CellLibrary` object model with multi-corner derates and stable
fingerprints (:mod:`repro.liberty.library`), the bilinear table
interpolation shared by both STA engines
(:mod:`repro.liberty.tables`), and a Liberty-subset text format with
exact float round-trip (:mod:`repro.liberty.libfile`).

Consumers: :mod:`repro.sta` (table-driven multi-corner timing),
:mod:`repro.eco` (library-priced upsize/Vt-swap moves),
:mod:`repro.lowpower` (characterized leakage/internal power) and
:mod:`repro.physical` (corner-derated wire capacitance).
"""

from .characterize import (
    DEFAULT_LOAD_INDEX_FF,
    DEFAULT_SLEW_INDEX_PS,
    characterize_library,
    default_cell_library,
)
from .library import (
    STANDARD_CORNERS,
    CellLibrary,
    Corner,
    LibertyCell,
    LibertyPin,
    TimingArc,
)
from .libfile import LibertyParseError, parse_lib, write_lib
from .tables import lookup_scalar, lookup_vector, table_array

__all__ = [
    "DEFAULT_LOAD_INDEX_FF",
    "DEFAULT_SLEW_INDEX_PS",
    "STANDARD_CORNERS",
    "CellLibrary",
    "Corner",
    "LibertyCell",
    "LibertyParseError",
    "LibertyPin",
    "TimingArc",
    "characterize_library",
    "default_cell_library",
    "lookup_scalar",
    "lookup_vector",
    "parse_lib",
    "table_array",
    "write_lib",
]
