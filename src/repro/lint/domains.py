"""Clock and reset domain inference from netlist structure.

No constraints file exists in this flow, so domains are inferred the
way structural lint tools bootstrap them: every sequential element's
clock (and reset) pin is traced backwards through transparent cells --
buffers, inverters, pads and integrated clock gates -- to a *root*:
an input port, another flop's output, a tie cell, a multi-input
combinational gate ("derived") or an undriven net.  Two flops share a
clock domain iff their traces reach the same root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.netlist import Module, Net


@dataclass(frozen=True)
class SourceTrace:
    """Where a control net (clock/reset) ultimately comes from.

    ``kind`` is one of ``"port"``, ``"flop"``, ``"derived"``, ``"tie"``
    or ``"undriven"``; ``root`` names the port / instance / net;
    ``through_gate`` records an ICG on the path and ``inverted`` the
    parity of inverters crossed.
    """

    root: str
    kind: str
    through_gate: bool = False
    inverted: bool = False
    path: tuple[str, ...] = ()

    @property
    def domain(self) -> str:
        """Domain label: the root, annotated when gated."""
        label = f"{self.kind}:{self.root}"
        return label + "+gated" if self.through_gate else label


def trace_control_source(module: Module, net_name: str) -> SourceTrace:
    """Trace one net back to its control root (see module docstring)."""
    through_gate = False
    inverted = False
    path: list[str] = []
    seen: set[str] = set()
    current = net_name
    while True:
        if current in seen:  # combinational loop on the control path
            return SourceTrace(current, "derived", through_gate,
                               inverted, tuple(path))
        seen.add(current)
        net: Net = module.nets[current]
        if net.driver is None:
            if net.driver_port is not None:
                return SourceTrace(net.driver_port, "port", through_gate,
                                   inverted, tuple(path))
            return SourceTrace(current, "undriven", through_gate,
                               inverted, tuple(path))
        inst = module.instances[net.driver.instance]
        cell = inst.cell
        if cell.is_sequential:
            return SourceTrace(inst.name, "flop", through_gate,
                               inverted, tuple(path))
        inputs = cell.input_pins
        if cell.is_clock_gate:
            through_gate = True
            path.append(inst.name)
            current = inst.net_of("CK")
            continue
        if len(inputs) == 0:
            return SourceTrace(inst.name, "tie", through_gate,
                               inverted, tuple(path))
        if len(inputs) == 1:  # buffer / inverter / pad: transparent
            from ..netlist.logic import logic_not

            if cell.function is logic_not:
                inverted = not inverted
            path.append(inst.name)
            current = inst.net_of(inputs[0])
            continue
        return SourceTrace(inst.name, "derived", through_gate,
                           inverted, tuple(path))


@dataclass
class DomainMap:
    """Per-flop control-source traces plus the domain partition."""

    #: flop instance name -> trace of its clock (or reset) net.
    trace_of: dict[str, SourceTrace] = field(default_factory=dict)

    @property
    def domain_of(self) -> dict[str, str]:
        return {name: trace.domain for name, trace in self.trace_of.items()}

    @property
    def domains(self) -> dict[str, tuple[str, ...]]:
        """Domain label -> sorted flop names."""
        grouped: dict[str, list[str]] = {}
        for name, trace in self.trace_of.items():
            grouped.setdefault(trace.domain, []).append(name)
        return {label: tuple(sorted(members))
                for label, members in sorted(grouped.items())}

    @property
    def n_domains(self) -> int:
        return len(self.domains)


def infer_clock_domains(module: Module) -> DomainMap:
    """Clock-domain partition over every sequential instance."""
    result = DomainMap()
    for inst in module.sequential_instances:
        clock_pin = inst.cell.clock_pin
        if clock_pin is None:  # level-sensitive latch: no clock to trace
            continue
        result.trace_of[inst.name] = trace_control_source(
            module, inst.net_of(clock_pin)
        )
    return result


def infer_reset_domains(module: Module) -> DomainMap:
    """Reset-domain partition over the resettable flops."""
    result = DomainMap()
    for inst in module.sequential_instances:
        reset_pin = inst.cell.reset_pin
        if reset_pin is None:
            continue
        result.trace_of[inst.name] = trace_control_source(
            module, inst.net_of(reset_pin)
        )
    return result
