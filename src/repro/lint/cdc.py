"""Clock-domain-crossing (CDC) rules.

The static complement of the paper's cross-simulator divergence hunt
(Section 3, experiment E13/S2): a signal launched in one inferred
clock domain and captured in another is only safe through a proper
synchronizer.  The recognised safe shape is the standard two-flop
synchronizer -- a buffer-only path from the source flop into the
first capture flop, whose output feeds nothing but same-domain flop
data inputs.

Rules:

* ``CDC-001`` -- unsynchronized crossing (combinational logic on the
  crossing path, or the first capture flop's output re-converges into
  logic before a second stage);
* ``CDC-002`` -- clock derived from multi-input combinational logic
  (glitch-capable clock, also breaks domain inference);
* ``CDC-003`` -- gated clock (ICG) noted for test planning (info).
"""

from __future__ import annotations

from ..netlist.netlist import Module
from .core import Finding, Rule, Severity, register
from .domains import infer_clock_domains


def _data_fanin_flops(module: Module, flop_name: str) -> dict[str, bool]:
    """Source flops feeding this flop's D pin.

    Returns ``{source_flop: pure}`` where ``pure`` is True when some
    path from that source crosses only buffers/inverters (a candidate
    synchronizer path) -- any multi-input gate on every path makes the
    crossing combinational.
    """
    inst = module.instances[flop_name]
    data_pin = inst.cell.data_pin
    if data_pin is None or data_pin not in inst.connections:
        return {}
    sources: dict[str, bool] = {}
    # (net, pure-so-far); track the best (purest) state seen per net.
    best: dict[str, bool] = {}
    stack = [(inst.net_of(data_pin), True)]
    while stack:
        net_name, pure = stack.pop()
        if best.get(net_name) is True or best.get(net_name) == pure:
            continue
        best[net_name] = pure or best.get(net_name, False)
        net = module.nets[net_name]
        if net.driver is None:
            continue
        driver = module.instances[net.driver.instance]
        if driver.cell.is_sequential:
            sources[driver.name] = sources.get(driver.name, False) or pure
            continue
        n_inputs = len(driver.cell.input_pins)
        next_pure = pure and n_inputs == 1 and not driver.cell.is_clock_gate
        for pin in driver.cell.input_pins:
            stack.append((driver.net_of(pin), next_pure))
    return sources


def _is_sync_first_stage(module: Module, flop_name: str,
                         domain_of: dict[str, str]) -> bool:
    """True when a capture flop looks like synchronizer stage one: its
    output feeds only data/scan-in pins of flops in its own domain."""
    inst = module.instances[flop_name]
    domain = domain_of.get(flop_name)
    for pin in inst.cell.output_pins:
        net = module.nets[inst.net_of(pin)]
        if net.load_ports:
            return False
        for load in net.loads:
            sink = module.instances[load.instance]
            if not sink.cell.is_sequential:
                return False
            if load.pin not in (sink.cell.data_pin, sink.cell.scan_in_pin):
                return False
            if domain_of.get(sink.name) != domain:
                return False
    return True


@register("CDC-001", Severity.ERROR, "cdc",
          "unsynchronized clock-domain crossing")
def check_unsynchronized_crossings(rule: Rule,
                                   module: Module) -> list[Finding]:
    domains = infer_clock_domains(module)
    if domains.n_domains <= 1:
        return []
    domain_of = domains.domain_of
    findings = []
    for dst in sorted(domain_of):
        dst_domain = domain_of[dst]
        for src, pure in sorted(_data_fanin_flops(module, dst).items()):
            src_domain = domain_of.get(src)
            if src_domain is None or src_domain == dst_domain:
                continue
            synchronized = pure and _is_sync_first_stage(
                module, dst, domain_of
            )
            if synchronized:
                continue
            why = ("combinational logic on the crossing path"
                   if not pure else
                   "capture flop output re-converges before a second"
                   " synchronizer stage")
            findings.append(rule.finding(
                module.name, f"{src}->{dst}",
                f"unsynchronized crossing {src} ({src_domain}) ->"
                f" {dst} ({dst_domain}): {why}",
            ))
    return findings


@register("CDC-002", Severity.WARNING, "cdc",
          "clock derived from combinational logic")
def check_derived_clocks(rule: Rule, module: Module) -> list[Finding]:
    findings = []
    domains = infer_clock_domains(module)
    for flop in sorted(domains.trace_of):
        trace = domains.trace_of[flop]
        if trace.kind == "derived":
            findings.append(rule.finding(
                module.name, flop,
                f"clock of flop {flop} derived from combinational"
                f" logic at {trace.root} (glitch-capable clock)",
            ))
        elif trace.kind in ("flop", "undriven"):
            findings.append(rule.finding(
                module.name, flop,
                f"clock of flop {flop} rooted at {trace.kind}"
                f" {trace.root} (not a primary clock source)",
            ))
    return findings


@register("CDC-003", Severity.INFO, "cdc", "gated clock (ICG)")
def check_gated_clocks(rule: Rule, module: Module) -> list[Finding]:
    findings = []
    domains = infer_clock_domains(module)
    for flop in sorted(domains.trace_of):
        trace = domains.trace_of[flop]
        if trace.through_gate and trace.kind == "port":
            icg = next((p for p in trace.path), "?")
            findings.append(rule.finding(
                module.name, flop,
                f"clock of flop {flop} gated through ICG {icg}"
                f" (root {trace.root})",
            ))
    return findings
