"""Rule framework for static design-rule analysis.

The machinery every rule family plugs into:

* :class:`Rule` -- one registered check with a stable id, severity and
  category, discovered through the module-level registry;
* :class:`Finding` -- one reported violation with a *stable
  fingerprint* (a hash of the rule id and the structural subject, never
  of the human-readable message) so waivers survive message rewording;
* :class:`Waiver` / :class:`WaiverSet` -- the sign-off escape hatch: a
  JSON file of glob/fingerprint matchers with mandatory reasons;
* :class:`LintReport` -- text and canonical-JSON output.  The JSON form
  is byte-identical for the same design no matter how the rule engine
  was parallelised (the same contract as the coverage database);
* :func:`run_lint` -- the engine: module-scope rules fan out across
  modules via :func:`repro.perf.fanout` (deterministic task-order
  merge), SoC-scope rules run over the bus/catalog view in-process.
"""

from __future__ import annotations

import enum
import fnmatch
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..perf import fanout
from ..store import get_default_store

#: Result-schema/algorithm version of cached per-module lint results.
#: Bump whenever any module-scope rule changes behaviour.
LINT_VERSION = "1"

#: Store domain for per-module finding lists.
LINT_STORE_DOMAIN = "lint.module"


class LintError(Exception):
    """Problem in the lint configuration itself (bad waiver file...)."""


class Severity(enum.IntEnum):
    """Finding severity; comparison follows escalation order."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise LintError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``subject`` is the structural object at fault (a net, an instance,
    a ``src->dst`` pair, an address window); together with the rule id
    and the module name it determines the :attr:`fingerprint`.  The
    ``message`` is presentation only and deliberately excluded from the
    fingerprint so reworded diagnostics never invalidate waivers.
    """

    rule_id: str
    severity: Severity
    category: str
    module: str
    subject: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable 12-hex-digit identity of this violation."""
        key = f"{self.rule_id}|{self.module}|{self.subject}"
        return hashlib.sha1(key.encode()).hexdigest()[:12]

    def to_dict(self) -> dict:
        """Canonical JSON-ready form."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.name.lower(),
            "category": self.category,
            "module": self.module,
            "subject": self.subject,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Finding":
        """Inverse of :meth:`to_dict` (the fingerprint is re-derived)."""
        return cls(
            rule_id=str(data["rule"]),
            severity=Severity.parse(str(data["severity"])),
            category=str(data["category"]),
            module=str(data["module"]),
            subject=str(data["subject"]),
            message=str(data["message"]),
        )

    def sort_key(self) -> tuple:
        return (self.module, self.rule_id, self.subject, self.message)


@dataclass(frozen=True)
class Rule:
    """One registered design-rule check."""

    id: str
    severity: Severity
    category: str
    title: str
    scope: str  # "module" | "soc" | "property"
    check: Callable[..., Iterable[Finding]]

    def finding(self, module: str, subject: str, message: str,
                *, severity: Severity | None = None) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule_id=self.id,
            severity=self.severity if severity is None else severity,
            category=self.category,
            module=module,
            subject=subject,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(
    rule_id: str,
    severity: Severity,
    category: str,
    title: str,
    *,
    scope: str = "module",
) -> Callable[
    [Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]
]:
    """Decorator registering a check function as a :class:`Rule`.

    Module-scope checks receive ``(rule, module)``; SoC-scope checks
    receive ``(rule, view)`` where ``view`` is a
    :class:`repro.lint.socmap.SocView`; property-scope checks receive
    ``(rule, report)`` where ``report`` is a formal result (they are
    registered for metadata/waiver/SARIF purposes but invoked through
    :mod:`repro.lint.properties`, never by the structural engine).
    """
    if scope not in ("module", "soc", "property"):
        raise LintError(f"bad rule scope {scope!r}")

    def decorator(
        fn: Callable[..., Iterable[Finding]]
    ) -> Callable[..., Iterable[Finding]]:
        if rule_id in _REGISTRY:
            raise LintError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id, severity, category, title,
                                  scope, fn)
        return fn

    return decorator


def load_builtin_rules() -> None:
    """Import every rule module so the registry is populated.

    Idempotent; called by the engine (including inside worker
    processes, which unpickle the task function without importing the
    ``repro.lint`` package itself).
    """
    from . import (  # noqa: F401
        analysis,
        cdc,
        properties,
        scandrc,
        socmap,
        structural,
        xsource,
    )


def all_rules(scope: str | None = None) -> list[Rule]:
    """Registered rules in id order, optionally filtered by scope."""
    load_builtin_rules()
    rules = [_REGISTRY[rid] for rid in sorted(_REGISTRY)]
    if scope is not None:
        rules = [r for r in rules if r.scope == scope]
    return rules


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule."""
    load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown rule {rule_id!r}") from None


def select_rules(selection: Iterable[str] | None,
                 scope: str | None = None) -> list[Rule]:
    """Filter registered rules by ids or categories.

    ``selection`` entries match either a rule id (``CDC-001``) or a
    whole category (``cdc``); ``None`` selects everything.
    """
    rules = all_rules(None)
    if selection is not None:
        wanted = {entry.strip() for entry in selection if entry.strip()}
        known = {r.id for r in rules} | {r.category for r in rules}
        unknown = wanted - known
        if unknown:
            raise LintError(f"unknown rules/categories: {sorted(unknown)}")
        rules = [r for r in rules if r.id in wanted or r.category in wanted]
    if scope is not None:
        rules = [r for r in rules if r.scope == scope]
    return rules


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Waiver:
    """One waiver entry: glob matchers plus a mandatory reason.

    A finding is waived when *every* provided matcher matches; an
    explicit ``fingerprint`` pins exactly one violation, while
    ``rule``/``module``/``subject`` globs waive families (e.g. every
    ``X-001`` in a debug-only block).
    """

    reason: str
    rule: str = "*"
    module: str = "*"
    subject: str = "*"
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise LintError("waiver must carry a non-empty reason")

    def matches(self, finding: Finding) -> bool:
        if self.fingerprint and self.fingerprint != finding.fingerprint:
            return False
        return (fnmatch.fnmatchcase(finding.rule_id, self.rule)
                and fnmatch.fnmatchcase(finding.module, self.module)
                and fnmatch.fnmatchcase(finding.subject, self.subject))

    def to_dict(self) -> dict:
        entry: dict = {"reason": self.reason}
        for key in ("rule", "module", "subject"):
            if getattr(self, key) != "*":
                entry[key] = getattr(self, key)
        if self.fingerprint:
            entry["fingerprint"] = self.fingerprint
        return entry

    @classmethod
    def from_dict(cls, data: Mapping) -> "Waiver":
        unknown = set(data) - {"reason", "rule", "module", "subject",
                               "fingerprint"}
        if unknown:
            raise LintError(f"unknown waiver keys: {sorted(unknown)}")
        if "reason" not in data:
            raise LintError("waiver entry missing 'reason'")
        return cls(
            reason=str(data["reason"]),
            rule=str(data.get("rule", "*")),
            module=str(data.get("module", "*")),
            subject=str(data.get("subject", "*")),
            fingerprint=str(data.get("fingerprint", "")),
        )


class WaiverSet:
    """An ordered collection of waivers (a waiver *file* in memory)."""

    def __init__(self, waivers: Iterable[Waiver] = ()) -> None:
        self.waivers = list(waivers)

    def __len__(self) -> int:
        return len(self.waivers)

    def __iter__(self) -> Iterator[Waiver]:
        return iter(self.waivers)

    def match(self, finding: Finding) -> Waiver | None:
        """First waiver covering the finding, or None."""
        for waiver in self.waivers:
            if waiver.matches(finding):
                return waiver
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"waivers": [w.to_dict() for w in self.waivers]},
            sort_keys=True, indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "WaiverSet":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LintError(f"bad waiver file: {exc}") from None
        entries = data.get("waivers") if isinstance(data, dict) else None
        if not isinstance(entries, list):
            raise LintError("waiver file must be {'waivers': [...]}")
        return cls(Waiver.from_dict(entry) for entry in entries)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "WaiverSet":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

@dataclass
class LintReport:
    """The outcome of one lint run: active findings + waived findings.

    ``unused_waivers`` lists waiver entries that matched nothing this
    run -- stale sign-offs that should be pruned (or that silently
    stopped covering what they were written for).
    """

    design: str
    findings: list[Finding] = field(default_factory=list)
    waived: list[tuple[Finding, Waiver]] = field(default_factory=list)
    unused_waivers: list[Waiver] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def failed(self, fail_on: Severity | str | None) -> bool:
        """True when any active finding reaches the fail threshold."""
        if fail_on is None:
            return False
        if isinstance(fail_on, str):
            if fail_on.lower() == "none":
                return False
            fail_on = Severity.parse(fail_on)
        return any(f.severity >= fail_on for f in self.findings)

    def to_dict(self) -> dict:
        """Canonical sorted form: a pure function of the findings."""
        return {
            "design": self.design,
            "modules_checked": self.modules_checked,
            "rules_run": self.rules_run,
            "counts": {
                severity.name.lower(): self.count(severity)
                for severity in Severity
            },
            "findings": [
                f.to_dict()
                for f in sorted(self.findings, key=Finding.sort_key)
            ],
            "waived": [
                {**f.to_dict(), "waived_by": w.reason}
                for f, w in sorted(self.waived, key=lambda p: p[0].sort_key())
            ],
            "unused_waivers": [
                w.to_dict() for w in self.unused_waivers
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON: byte-identical across worker counts."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_dict(cls, data: Mapping) -> "LintReport":
        """Rebuild a report from its canonical dict (baseline loading).

        Waived entries come back paired with a wildcard waiver carrying
        the recorded reason; ``counts`` is re-derived from the
        findings.
        """
        report = cls(
            design=str(data.get("design", "design")),
            modules_checked=int(data.get("modules_checked", 0)),
            rules_run=int(data.get("rules_run", 0)),
        )
        for entry in data.get("findings", []):
            report.findings.append(Finding.from_dict(entry))
        for entry in data.get("waived", []):
            report.waived.append((
                Finding.from_dict(entry),
                Waiver(reason=str(entry.get("waived_by", "unknown"))),
            ))
        for entry in data.get("unused_waivers", []):
            report.unused_waivers.append(Waiver.from_dict(entry))
        return report

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LintError(f"bad lint baseline: {exc}") from None
        if not isinstance(data, Mapping):
            raise LintError("lint baseline must be a JSON object")
        return cls.from_dict(data)

    def delta(self, baseline: "LintReport | Mapping") -> "LintDelta":
        """Diff this run against a prior one by finding fingerprint.

        Waived findings on either side are excluded: waiving is a
        sign-off decision, not a design change, so a newly-waived
        finding reports as *fixed* and an un-waived one as *new*.
        """
        if not isinstance(baseline, LintReport):
            baseline = LintReport.from_dict(baseline)
        base_by_fp = {f.fingerprint: f for f in baseline.findings}
        current_fps = {f.fingerprint for f in self.findings}
        new = [f for f in sorted(self.findings, key=Finding.sort_key)
               if f.fingerprint not in base_by_fp]
        carried = [f for f in sorted(self.findings, key=Finding.sort_key)
                   if f.fingerprint in base_by_fp]
        fixed = [f for f in sorted(baseline.findings, key=Finding.sort_key)
                 if f.fingerprint not in current_fps]
        return LintDelta(
            design=self.design, new=new, carried=carried, fixed=fixed
        )

    def to_sarif(self, *, baseline: dict | None = None) -> dict:
        """SARIF 2.1.0 log object (see :mod:`repro.lint.sarif`)."""
        from .sarif import report_to_sarif

        return report_to_sarif(self, baseline=baseline)

    def to_sarif_json(self, *, baseline: dict | None = None) -> str:
        """Canonical SARIF 2.1.0 JSON for code-scanning upload."""
        from .sarif import report_to_sarif_json

        return report_to_sarif_json(self, baseline=baseline)

    def format_report(self) -> str:
        lines = [
            f"Lint report for {self.design}",
            f"  modules checked : {self.modules_checked}",
            f"  rules run       : {self.rules_run}",
            f"  findings        : {len(self.findings)}"
            f" ({self.count(Severity.ERROR)} error,"
            f" {self.count(Severity.WARNING)} warning,"
            f" {self.count(Severity.INFO)} info),"
            f" {len(self.waived)} waived",
        ]
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
            group = [f for f in sorted(self.findings, key=Finding.sort_key)
                     if f.severity is severity]
            if not group:
                continue
            lines.append(f"  -- {severity.name} --")
            for f in group:
                lines.append(
                    f"  {f.rule_id} [{f.fingerprint}] {f.module}: {f.message}"
                )
        for f, waiver in sorted(self.waived, key=lambda p: p[0].sort_key()):
            lines.append(
                f"  waived {f.rule_id} [{f.fingerprint}] {f.module}:"
                f" {f.message} ({waiver.reason})"
            )
        if self.unused_waivers:
            lines.append(
                f"  -- UNUSED WAIVERS ({len(self.unused_waivers)}) --"
            )
            for waiver in self.unused_waivers:
                matchers = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(waiver.to_dict().items())
                    if key != "reason"
                ) or "match-all"
                lines.append(
                    f"  unused waiver [{matchers}] ({waiver.reason})"
                )
        if not self.findings and not self.waived:
            lines.append("  clean: no findings")
        return "\n".join(lines)


@dataclass
class LintDelta:
    """Fingerprint diff of one lint run against a baseline run."""

    design: str
    new: list[Finding] = field(default_factory=list)
    carried: list[Finding] = field(default_factory=list)
    fixed: list[Finding] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "counts": {
                "new": len(self.new),
                "carried": len(self.carried),
                "fixed": len(self.fixed),
            },
            "new": [f.to_dict() for f in self.new],
            "carried": [f.to_dict() for f in self.carried],
            "fixed": [f.to_dict() for f in self.fixed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def format_report(self) -> str:
        lines = [
            f"Lint delta for {self.design}",
            f"  new     : {len(self.new)}",
            f"  carried : {len(self.carried)}",
            f"  fixed   : {len(self.fixed)}",
        ]
        for label, group in (("new", self.new), ("fixed", self.fixed)):
            for f in group:
                lines.append(
                    f"  {label} {f.rule_id} [{f.fingerprint}]"
                    f" {f.module}: {f.message}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def _lint_module_task(task: tuple) -> list[Finding]:
    """Worker: run the named module-scope rules over one module.

    Module-level and self-contained so it pickles into worker
    processes; the registry is (re)populated on first use there.
    """
    module, rule_ids = task
    load_builtin_rules()
    findings: list[Finding] = []
    for rule_id in rule_ids:
        rule = _REGISTRY[rule_id]
        findings.extend(rule.check(rule, module))
    return findings


def lint_modules(
    modules: Sequence,
    *,
    rules: Iterable[str] | None = None,
    workers: int | None = None,
) -> list[Finding]:
    """Run every module-scope rule over every module, in parallel.

    Work is partitioned per module before execution and merged in task
    order, so the finding list is a pure function of the inputs
    regardless of ``workers``.

    Per-module results are cached in the ambient
    :class:`repro.store.ArtifactStore` under the module fingerprint and
    the selected rule-id list: a warm rerun (or a post-ECO rerun over
    untouched modules) decodes cached findings and only fans out the
    modules whose content changed.
    """
    chosen = select_rules(rules, scope="module")
    rule_ids = tuple(r.id for r in chosen)
    store = get_default_store()
    config = ["rules", list(rule_ids)]
    per_module: dict[int, list[Finding]] = {}
    missing: list[int] = []
    for index, module in enumerate(modules):
        payload = store.get(
            LINT_STORE_DOMAIN, LINT_VERSION,
            (module.fingerprint(),), config,
        )
        if payload is not None:
            per_module[index] = [Finding.from_dict(e) for e in payload]
        else:
            missing.append(index)
    if missing:
        tasks = [(modules[index], rule_ids) for index in missing]
        results = fanout(_lint_module_task, tasks, workers=workers,
                         stage="lint.modules")
        for index, found in zip(missing, results):
            per_module[index] = found
            store.put(
                LINT_STORE_DOMAIN, LINT_VERSION,
                (modules[index].fingerprint(),),
                [f.to_dict() for f in found], config,
            )
    return [
        finding
        for index in range(len(modules))
        for finding in per_module[index]
    ]


def run_lint(
    modules: Sequence = (),
    *,
    soc=None,
    catalog=None,
    binding: Mapping[str, str] | None = None,
    design: str = "design",
    rules: Iterable[str] | None = None,
    workers: int | None = None,
    waivers: WaiverSet | None = None,
) -> LintReport:
    """The full static-analysis pass: modules + optional SoC audit.

    ``soc`` accepts a :class:`repro.soc.SystemBus` or anything with a
    ``bus`` attribute (e.g. :class:`repro.soc.DscSoc`); ``catalog`` and
    ``binding`` feed the dangling-IP audit.  Findings matching a waiver
    are reported separately and never count toward failure.
    """
    findings = lint_modules(modules, rules=rules, workers=workers)

    soc_rules = select_rules(rules, scope="soc")
    if soc is not None and soc_rules:
        from .socmap import soc_view

        view = soc_view(soc, catalog=catalog, binding=binding)
        for rule in soc_rules:
            findings.extend(rule.check(rule, view))

    report = LintReport(
        design=design,
        modules_checked=len(modules) + (1 if soc is not None else 0),
        rules_run=len(select_rules(rules, scope="module"))
        + (len(soc_rules) if soc is not None else 0),
    )
    findings.sort(key=Finding.sort_key)
    used_waivers: set[int] = set()
    for finding in findings:
        waiver = waivers.match(finding) if waivers is not None else None
        if waiver is None:
            report.findings.append(finding)
        else:
            used_waivers.add(id(waiver))
            report.waived.append((finding, waiver))
    if waivers is not None:
        report.unused_waivers = [
            w for w in waivers if id(w) not in used_waivers
        ]
    return report
