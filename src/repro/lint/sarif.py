"""SARIF 2.1.0 export of a :class:`~repro.lint.core.LintReport`.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests, so ``python -m repro lint --sarif out.sarif`` plus an
``upload-sarif`` CI step annotates pull requests with lint findings.

Mapping decisions:

* each registered rule becomes a ``reportingDescriptor``; severities
  map ``ERROR -> error``, ``WARNING -> warning``, ``INFO -> note``;
* a finding's stable fingerprint lands in ``partialFingerprints``
  (key ``reproLintFingerprint/v1``), so code-scanning alert identity
  survives message rewording exactly like waivers do;
* the module/subject pair is a ``logicalLocation`` -- netlists have no
  source files, so no ``physicalLocation`` is emitted;
* waived findings are included with a ``suppression`` of kind
  ``external`` carrying the waiver reason, matching how code scanning
  displays dismissed alerts;
* with a baseline SARIF log (``lint --sarif out --sarif-baseline
  prior``), every result carries a ``baselineState``: ``unchanged``
  when its partial fingerprint appears in the baseline, ``new``
  otherwise -- so CI annotates only regressions.

The output is canonical (sorted keys, stable ordering): byte-identical
for the same report no matter how the lint engine was parallelised.
"""

from __future__ import annotations

import json

from .core import Finding, LintReport, Severity, Waiver, get_rule

#: SARIF severity levels by lint severity.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: The partialFingerprints key carrying the stable lint fingerprint.
FINGERPRINT_KEY = "reproLintFingerprint/v1"


def sarif_fingerprints(log: dict) -> frozenset[str]:
    """Every lint fingerprint recorded in a SARIF log's results."""
    out = set()
    for run in log.get("runs", []):
        for result in run.get("results", []):
            fingerprint = result.get("partialFingerprints", {}).get(
                FINGERPRINT_KEY
            )
            if fingerprint:
                out.add(fingerprint)
    return frozenset(out)


def _result(
    finding: Finding,
    waiver: Waiver | None = None,
    *,
    known: frozenset[str] | None = None,
) -> dict:
    result: dict = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "partialFingerprints": {
            FINGERPRINT_KEY: finding.fingerprint,
        },
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": finding.subject,
                        "fullyQualifiedName":
                            f"{finding.module}::{finding.subject}",
                        "kind": "object",
                    }
                ]
            }
        ],
        "properties": {
            "category": finding.category,
            "module": finding.module,
        },
    }
    if known is not None:
        result["baselineState"] = (
            "unchanged" if finding.fingerprint in known else "new"
        )
    if waiver is not None:
        result["suppressions"] = [
            {"kind": "external", "justification": waiver.reason}
        ]
    return result


def report_to_sarif(
    report: LintReport, *, baseline: dict | None = None
) -> dict:
    """The full SARIF 2.1.0 log object for one lint report.

    ``baseline`` is a previously-emitted SARIF log (parsed): when
    given, each result is stamped ``baselineState: unchanged`` if its
    fingerprint already appeared there, ``new`` otherwise.
    """
    entries: list[tuple[Finding, Waiver | None]] = [
        (f, None) for f in report.findings
    ]
    entries += [(f, w) for f, w in report.waived]
    entries.sort(key=lambda pair: pair[0].sort_key())
    known = sarif_fingerprints(baseline) if baseline is not None else None

    rule_ids = sorted({f.rule_id for f, _ in entries})
    descriptors = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        descriptors.append({
            "id": rule.id,
            "name": rule.id.replace("-", ""),
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            "properties": {"category": rule.category},
        })

    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://github.com/repro/repro",
                        "rules": descriptors,
                    }
                },
                "automationDetails": {"id": f"repro-lint/{report.design}"},
                "results": [
                    _result(f, w, known=known) for f, w in entries
                ],
            }
        ],
    }


def report_to_sarif_json(
    report: LintReport, *, baseline: dict | None = None
) -> str:
    """Canonical SARIF JSON (sorted keys, stable result order)."""
    return json.dumps(
        report_to_sarif(report, baseline=baseline),
        sort_keys=True, indent=1,
    )
