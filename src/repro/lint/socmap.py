"""SoC-level memory-map and integration audit.

The paper's S16 bug class: address-map integration errors -- two IPs
decoded at overlapping windows, a block left off the bus, a register
file wider than its window.  These are the checks a sign-off review
walks the memory map with, run statically over the
:class:`repro.soc.SystemBus` decode table and the
:class:`repro.ip.IpCatalog`.

Rules (scope ``soc``):

* ``MAP-001`` -- overlapping address windows;
* ``MAP-002`` -- window size not a power of two, or base not aligned
  to the size (partial-decode hazard);
* ``MAP-003`` -- dangling IP: a digital catalogue block with no bus
  binding (no window and no master);
* ``MAP-004`` -- slave data-port width differs from the bus width;
* ``MAP-005`` -- register span larger than the decoded window;
* ``MAP-006`` -- suspicious decode gap: a hole smaller than one page
  (4 KiB) between adjacent windows usually means a mis-sized window.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core import Finding, Rule, Severity, register

#: Gaps smaller than this between adjacent windows are flagged.
SMALL_GAP_BYTES = 4096


@dataclass(frozen=True)
class SocWindow:
    """One decoded slave window, normalised for auditing."""

    name: str
    base: int
    size: int
    width_bits: int | None
    register_span_bytes: int | None

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass(frozen=True)
class SocView:
    """Everything the SoC-scope rules audit, decoupled from live
    bus/slave objects (and trivially picklable)."""

    bus_name: str
    data_width_bits: int
    windows: tuple[SocWindow, ...]
    masters: tuple[str, ...]
    #: (block name, gate budget) for every digital catalogue block.
    digital_blocks: tuple[tuple[str, int], ...]
    #: block name -> window or master name carrying its traffic.
    binding: tuple[tuple[str, str], ...]


def soc_view(soc, *, catalog=None, binding=None) -> SocView:
    """Build the audit view from a bus (or anything with ``.bus``)."""
    bus = getattr(soc, "bus", soc)
    windows = tuple(
        SocWindow(
            name=name,
            base=window.base,
            size=window.size,
            width_bits=getattr(slave, "bus_width_bits", None),
            register_span_bytes=getattr(slave, "register_span_bytes", None),
        )
        for name, window, slave in bus.iter_windows()
    )
    blocks: tuple[tuple[str, int], ...] = ()
    if catalog is not None:
        digital = (catalog.digital_blocks() if hasattr(catalog,
                                                       "digital_blocks")
                   else [b for b in catalog
                         if not b.is_analog and b.gate_budget > 0])
        blocks = tuple((b.name, b.gate_budget) for b in digital)
    return SocView(
        bus_name=bus.name,
        data_width_bits=getattr(bus, "data_width_bits", 32),
        windows=windows,
        masters=tuple(getattr(bus, "masters", ())),
        digital_blocks=blocks,
        binding=tuple(sorted((binding or {}).items())),
    )


@register("MAP-001", Severity.ERROR, "socmap",
          "overlapping address windows", scope="soc")
def check_window_overlap(rule: Rule, view: SocView) -> list[Finding]:
    findings = []
    windows = sorted(view.windows, key=lambda w: (w.base, w.name))
    for index, first in enumerate(windows):
        for second in windows[index + 1:]:
            if second.base >= first.end:
                break  # sorted by base: nothing later can overlap first
            findings.append(rule.finding(
                view.bus_name, f"{first.name}|{second.name}",
                f"address window of {second.name!r}"
                f" [{second.base:#x}..{second.end:#x}) overlaps"
                f" {first.name!r} [{first.base:#x}..{first.end:#x})",
            ))
    return findings


@register("MAP-002", Severity.WARNING, "socmap",
          "window not size-aligned", scope="soc")
def check_window_alignment(rule: Rule, view: SocView) -> list[Finding]:
    findings = []
    for window in view.windows:
        power_of_two = window.size > 0 and (window.size
                                            & (window.size - 1)) == 0
        aligned = power_of_two and window.base % window.size == 0
        if power_of_two and aligned:
            continue
        why = ("size is not a power of two" if not power_of_two
               else "base is not aligned to the window size")
        findings.append(rule.finding(
            view.bus_name, window.name,
            f"window {window.name!r} [{window.base:#x}, size"
            f" {window.size:#x}): {why} (partial-decode hazard)",
        ))
    return findings


@register("MAP-003", Severity.ERROR, "socmap",
          "dangling IP (no bus binding)", scope="soc")
def check_dangling_ip(rule: Rule, view: SocView) -> list[Finding]:
    if not view.digital_blocks:
        return []
    binding = dict(view.binding)
    reachable = {w.name for w in view.windows} | set(view.masters)
    findings = []
    for name, gates in view.digital_blocks:
        target = binding.get(name)
        if target is None:
            findings.append(rule.finding(
                view.bus_name, name,
                f"digital IP {name!r} ({gates} gates) has no bus"
                f" binding: its ports dangle off the fabric",
            ))
        elif target not in reachable:
            findings.append(rule.finding(
                view.bus_name, name,
                f"digital IP {name!r} bound to {target!r}, which is"
                f" neither a mapped window nor a master",
            ))
    return findings


@register("MAP-004", Severity.ERROR, "socmap",
          "bus-width mismatch", scope="soc")
def check_bus_width(rule: Rule, view: SocView) -> list[Finding]:
    findings = []
    for window in view.windows:
        if window.width_bits is None:
            continue
        if window.width_bits != view.data_width_bits:
            findings.append(rule.finding(
                view.bus_name, window.name,
                f"slave {window.name!r} data port is"
                f" {window.width_bits} bits on a"
                f" {view.data_width_bits}-bit bus",
            ))
    return findings


@register("MAP-005", Severity.ERROR, "socmap",
          "register span exceeds window", scope="soc")
def check_register_span(rule: Rule, view: SocView) -> list[Finding]:
    findings = []
    for window in view.windows:
        span = window.register_span_bytes
        if span is not None and span > window.size:
            findings.append(rule.finding(
                view.bus_name, window.name,
                f"slave {window.name!r} decodes {span:#x} bytes of"
                f" registers inside a {window.size:#x}-byte window",
            ))
    return findings


@register("MAP-006", Severity.WARNING, "socmap",
          "suspicious decode gap", scope="soc")
def check_decode_gaps(rule: Rule, view: SocView) -> list[Finding]:
    findings = []
    windows = sorted(view.windows, key=lambda w: (w.base, w.name))
    for first, second in zip(windows, windows[1:]):
        gap = second.base - first.end
        if 0 < gap < SMALL_GAP_BYTES:
            findings.append(rule.finding(
                view.bus_name, f"{first.name}|{second.name}",
                f"{gap:#x}-byte decode hole between {first.name!r}"
                f" (ends {first.end:#x}) and {second.name!r}"
                f" (starts {second.base:#x}): likely mis-sized window",
            ))
    return findings
