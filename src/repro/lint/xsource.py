"""Static X-source analysis.

The paper's S2 bug class: two simulators disagreed because unknown
(``X``) values were modelled differently, and the divergence was only
caught by running both.  Statically, every X has a *source* -- an
uninitialized flop, an undriven net, a spare cell -- and a *surface*
where it matters: the module outputs.  These rules enumerate the
sources and propagate them through the connectivity graph to the
outputs, without a single simulation cycle.

Rules:

* ``X-001`` -- uninitialized flop (no reset pin): power-on state is X;
* ``X-002`` -- a structural X source (undriven-but-loaded net, spare
  cell output with loads) reaches an output port;
* ``X-003`` -- an uninitialized flop's X can reach an output port
  before reset discipline clears it (the cross-simulator divergence
  surface).
"""

from __future__ import annotations

from ..netlist.netlist import Module
from .core import Finding, Rule, Severity, register


def x_sources(module: Module) -> list[tuple[str, str, str]]:
    """All static X sources as ``(kind, name, net)`` triples.

    ``kind`` is ``"uninit_flop"``, ``"undriven"`` or ``"spare"``; the
    ``net`` is where the X enters the connectivity graph.
    """
    sources: list[tuple[str, str, str]] = []
    for inst in module.sequential_instances:
        if inst.cell.reset_pin is None:
            for pin in inst.cell.output_pins:
                sources.append(("uninit_flop", inst.name, inst.net_of(pin)))
    for inst in module.instances.values():
        if inst.cell.is_spare:
            for pin in inst.cell.output_pins:
                net = inst.net_of(pin)
                if module.nets[net].fanout > 0:
                    sources.append(("spare", inst.name, net))
    for net in module.nets.values():
        if not net.is_driven and net.fanout > 0:
            sources.append(("undriven", net.name, net.name))
    return sources


def reachable_output_ports(module: Module, start_net: str,
                           *, through_flops: bool) -> list[str]:
    """Output ports reachable from a net through the structure.

    ``through_flops`` also crosses sequential elements -- the right
    model for power-on X, which persists across clock edges until
    overwritten.
    """
    reached: set[str] = set()
    visited: set[str] = set()
    stack = [start_net]
    while stack:
        net_name = stack.pop()
        if net_name in visited:
            continue
        visited.add(net_name)
        net = module.nets[net_name]
        reached.update(net.load_ports)
        for load in net.loads:
            inst = module.instances[load.instance]
            if inst.cell.is_sequential and not through_flops:
                continue
            for pin in inst.cell.output_pins:
                stack.append(inst.net_of(pin))
    out_ports = {p.name for p in module.ports.values()
                 if p.direction == "output"}
    return sorted(reached & out_ports)


def _describe(ports: list[str], limit: int = 4) -> str:
    shown = ", ".join(ports[:limit])
    if len(ports) > limit:
        shown += f", ... ({len(ports)} total)"
    return shown


@register("X-001", Severity.WARNING, "xprop", "uninitialized flop")
def check_uninitialized_flops(rule: Rule, module: Module) -> list[Finding]:
    findings = []
    for inst in module.sequential_instances:
        if inst.cell.reset_pin is None:
            findings.append(rule.finding(
                module.name, inst.name,
                f"flop {inst.name} ({inst.cell.name}) has no reset:"
                f" power-on state is X",
            ))
    return findings


@register("X-002", Severity.ERROR, "xprop",
          "structural X source reaches output")
def check_structural_x_to_output(rule: Rule, module: Module) -> list[Finding]:
    findings = []
    for kind, name, net in x_sources(module):
        if kind == "uninit_flop":
            continue
        ports = reachable_output_ports(module, net, through_flops=True)
        if ports:
            desc = ("undriven net" if kind == "undriven"
                    else "spare cell output")
            findings.append(rule.finding(
                module.name, name,
                f"X from {desc} {name!r} reaches output port(s):"
                f" {_describe(ports)}",
            ))
    return findings


@register("X-003", Severity.WARNING, "xprop",
          "uninitialized flop X reaches output")
def check_flop_x_to_output(rule: Rule, module: Module) -> list[Finding]:
    findings = []
    for kind, name, net in x_sources(module):
        if kind != "uninit_flop":
            continue
        ports = reachable_output_ports(module, net, through_flops=True)
        if ports:
            findings.append(rule.finding(
                module.name, name,
                f"power-on X of flop {name} can reach output port(s)"
                f" {_describe(ports)} -- the cross-simulator"
                f" divergence surface",
            ))
    return findings
