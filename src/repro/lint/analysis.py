"""Semantic lint rules backed by the dataflow engine.

Where the structural/CDC/X families of PR 3 pattern-match the netlist,
these rules consume the abstract-interpretation fixpoints of
:mod:`repro.analysis` -- each family is a thin adapter from one
analysis query to :class:`~repro.lint.core.Finding` objects, so
waivers, fingerprints, canonical reports, the CLI and the flow gate
all work unchanged.

* ``CONST-001/002`` -- constant propagation: stuck nets and flops that
  can never toggle;
* ``DEAD-001/002``  -- logic proven unobservable at any output, and
  combinational cones computing a proven constant;
* ``DIV-001/002/003`` -- static X-divergence: output ports the two
  simulator dialects can disagree on, mux-select-X policy sites, and
  reconvergent-X sites (each DIV prediction is checkable in real
  simulation via :func:`repro.verification.cross_validate_divergence`);
* ``RACE-001/002/003`` -- zero-delay races: order-sensitive
  multi-driven nets, and same-root flop-to-flop paths through a clock
  gate or with opposite clock parity.

One :func:`repro.analysis.analyze_module` pass is shared by all rules
on a module (it is cached per module), so enabling all four families
costs a single engine run per domain.
"""

from __future__ import annotations

from ..analysis import (
    clock_path_races,
    constant_cones,
    divergent_output_ports,
    multi_driver_races,
    mux_select_x_sites,
    never_toggling_flops,
    reconvergent_x_sites,
    stuck_nets,
    unobservable_instances,
)
from ..analysis.analyses import analyze_module
from ..netlist.netlist import Module
from .core import Finding, Rule, Severity, register


@register("CONST-001", Severity.WARNING, "const",
          "net is stuck at a constant")
def check_stuck_nets(rule: Rule, module: Module) -> list[Finding]:
    """Constant propagation proved the net frozen at 0 or 1 under any
    binary stimulus; its downstream logic is partially dead."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, net,
            f"net {net!r} is stuck at {value} under all binary stimulus",
        )
        for net, value in stuck_nets(analysis)
    ]


@register("CONST-002", Severity.WARNING, "const",
          "flop can never toggle")
def check_never_toggling_flops(rule: Rule, module: Module) -> list[Finding]:
    """The flop's reachable state set misses 0 or 1: it can never
    complete a toggle, so it is either redundant or mis-wired."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, flop,
            f"flop {flop!r} never toggles: reachable states {states}",
        )
        for flop, states in never_toggling_flops(analysis)
    ]


@register("DEAD-001", Severity.WARNING, "dead",
          "logic unobservable at any output")
def check_unobservable(rule: Rule, module: Module) -> list[Finding]:
    """No output port can ever see this instance's value, even across
    clock cycles -- transitively dead logic (spares are exempt)."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, inst,
            f"instance {inst!r} drives no path to any output port",
        )
        for inst in unobservable_instances(analysis)
    ]


@register("DEAD-002", Severity.INFO, "dead",
          "combinational cone computes a constant")
def check_constant_cones(rule: Rule, module: Module) -> list[Finding]:
    """The instance's output is a proven constant: the cone feeding it
    is redundant and could be replaced by a tie cell."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, inst,
            f"instance {inst!r} always drives {value} onto {net!r}",
        )
        for inst, net, value in constant_cones(analysis)
    ]


@register("DIV-001", Severity.ERROR, "divergence",
          "output port can diverge between simulator dialects")
def check_divergent_outputs(rule: Rule, module: Module) -> list[Finding]:
    """The dual-dialect fixpoint reaches an off-diagonal value pair on
    an output port: the two simulators can print different results for
    the same stimulus -- the paper's Section-3 sign-off twist."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, port,
            f"output {port!r} can differ between dialects: "
            f"reachable (A,B) pairs {pairs}",
        )
        for port, pairs in divergent_output_ports(analysis)
    ]


@register("DIV-002", Severity.WARNING, "divergence",
          "mux select can be X with unequal data legs")
def check_mux_select_x(rule: Rule, module: Module) -> list[Finding]:
    """An X can reach the select of a MUX2 whose data legs are not
    provably equal: optimistic and pessimistic X policies disagree
    here, so this site amplifies any dialect difference."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, inst,
            f"mux {inst!r} select can be X with unequal legs "
            f"(output {net!r})",
        )
        for inst, net in mux_select_x_sites(analysis)
    ]


@register("DIV-003", Severity.INFO, "divergence",
          "X source reconverges on one gate")
def check_reconvergent_x(rule: Rule, module: Module) -> list[Finding]:
    """One X source reaches two or more pins of the same gate; exact
    X-cancellation (e.g. ``XOR(q, ~q)``) makes the dialects' values
    observably different where optimism computes a known result."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, inst,
            f"gate {inst!r} sees {', '.join(sources)} on multiple pins "
            f"(output {net!r})",
        )
        for inst, net, sources in reconvergent_x_sites(analysis)
    ]


@register("RACE-001", Severity.ERROR, "race",
          "multi-driven net resolution is order sensitive")
def check_multi_driver_race(rule: Rule, module: Module) -> list[Finding]:
    """Two sources can drive different values onto one net; in a
    zero-delay simulator the settled value depends on event order."""
    analysis = analyze_module(module)
    return [
        rule.finding(
            module.name, net,
            f"net {net!r} has order-sensitive drivers: {detail}",
        )
        for net, detail in multi_driver_races(analysis)
    ]


@register("RACE-002", Severity.WARNING, "race",
          "flop-to-flop path races through a clock gate")
def check_gated_clock_race(rule: Rule, module: Module) -> list[Finding]:
    """Source and destination share a clock root but only one path
    crosses an ICG: the gate's delta delay makes capture order -- and
    therefore old-vs-new data -- event-order dependent."""
    return [
        rule.finding(
            module.name, f"{src}->{dst}",
            f"zero-delay race {src} -> {dst}: one clock path crosses a "
            f"clock gate",
        )
        for src, dst, kind in clock_path_races(module)
        if kind == "gated"
    ]


@register("RACE-003", Severity.WARNING, "race",
          "flop-to-flop path crosses clock polarity")
def check_inverted_clock_race(rule: Rule, module: Module) -> list[Finding]:
    """Source and destination share a clock root with opposite
    inverter parity: a half-cycle path whose zero-delay capture order
    is event-order dependent."""
    return [
        rule.finding(
            module.name, f"{src}->{dst}",
            f"zero-delay race {src} -> {dst}: clock paths differ in "
            f"inverter parity",
        )
        for src, dst, kind in clock_path_races(module)
        if kind == "inverted"
    ]
