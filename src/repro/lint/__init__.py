"""Static design-rule analysis over the design database.

The sign-off checks the paper's flow runs *without* simulation:
structural netlist lint (the checks :meth:`repro.netlist.Module.validate`
delegates to), clock/reset-domain inference and CDC detection, static
X-source analysis (S2), scan design rules gating DFT insertion (S5),
and the SoC memory-map/integration audit (S16).  Rules plug into a
registry, findings carry stable fingerprints, waivers are first-class,
and the engine fans out across modules deterministically via
:mod:`repro.perf`.
"""

from .core import (
    Finding,
    LINT_STORE_DOMAIN,
    LINT_VERSION,
    LintDelta,
    LintError,
    LintReport,
    Rule,
    Severity,
    Waiver,
    WaiverSet,
    all_rules,
    get_rule,
    lint_modules,
    load_builtin_rules,
    register,
    run_lint,
    select_rules,
)
from .domains import (
    DomainMap,
    SourceTrace,
    infer_clock_domains,
    infer_reset_domains,
    trace_control_source,
)
from .properties import (
    PROP_RULE_IDS,
    findings_from_bmc,
    findings_from_bus,
)
from .sarif import (
    report_to_sarif,
    report_to_sarif_json,
    sarif_fingerprints,
)
from .scandrc import SCAN_RULE_IDS, check_scan_drc
from .socmap import SocView, SocWindow, soc_view
from .structural import structural_problems
from .dsc import DSC_BUS_BINDING, DscLintTargets, dsc_lint_targets

load_builtin_rules()

__all__ = [
    "Finding",
    "LINT_STORE_DOMAIN",
    "LINT_VERSION",
    "LintDelta",
    "LintError",
    "LintReport",
    "Rule",
    "Severity",
    "Waiver",
    "WaiverSet",
    "all_rules",
    "get_rule",
    "lint_modules",
    "load_builtin_rules",
    "register",
    "run_lint",
    "select_rules",
    "DomainMap",
    "SourceTrace",
    "infer_clock_domains",
    "infer_reset_domains",
    "trace_control_source",
    "PROP_RULE_IDS",
    "findings_from_bmc",
    "findings_from_bus",
    "report_to_sarif",
    "report_to_sarif_json",
    "sarif_fingerprints",
    "SCAN_RULE_IDS",
    "check_scan_drc",
    "SocView",
    "SocWindow",
    "soc_view",
    "structural_problems",
    "DSC_BUS_BINDING",
    "DscLintTargets",
    "dsc_lint_targets",
]
