"""Lint targets for the paper's DSC controller.

Bundles everything ``python -m repro lint`` (and the flow gate) needs
to audit the whole chip: gate-level netlists for the digital blocks
scaled from their catalogue gate budgets, the transaction-level SoC
with its memory map, the IP catalogue, and the block-to-bus binding
table that says which decode window (or bus master) carries each
digital IP's traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ip import dsc_ip_catalog
from ..netlist import (
    Module,
    StdCellLibrary,
    block_from_budget,
    make_default_library,
)
from ..soc import DscSoc

#: Which bus resource carries each digital IP's traffic.  The CPU is a
#: master; every other block is reached through its decode window.
#: This is the integration table MAP-003 audits -- remove an entry and
#: the corresponding IP dangles off the fabric.
DSC_BUS_BINDING = {
    "risc_dsp": "cpu",
    "jpeg_codec": "jpeg_regs",
    "usb11": "usb_fifo",
    "sd_mmc": "sd_fifo",
    "sdram_ctrl": "sdram",
    "image_pipe": "sensor_regs",
    "lcd_if": "lcd_regs",
    "tv_encoder": "tv_regs",
    "system_fabric": "sys_regs",
}


@dataclass
class DscLintTargets:
    """The full audit surface of the DSC controller."""

    modules: list[Module]
    soc: DscSoc
    catalog: object
    binding: dict[str, str]


def dsc_lint_targets(*, scale: float = 0.02, seed: int = 0,
                     library: StdCellLibrary | None = None) -> DscLintTargets:
    """Build the DSC design database for a lint run.

    ``scale`` shrinks each block's catalogue gate budget so a full-chip
    lint stays interactive (0.02 keeps ~4.8K of the 240K gates);
    generation is deterministic in ``seed``.
    """
    if library is None:
        library = make_default_library()
    catalog = dsc_ip_catalog()
    modules = []
    for index, block in enumerate(catalog.digital_blocks()):
        budget = max(50, int(block.gate_budget * scale))
        modules.append(block_from_budget(
            block.name, library, gate_budget=budget, seed=seed + index,
        ))
    return DscLintTargets(
        modules=modules,
        soc=DscSoc(),
        catalog=catalog,
        binding=dict(DSC_BUS_BINDING),
    )
