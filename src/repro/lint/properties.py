"""Formal property results as lint findings (the ``PROP`` family).

Bounded model checking (:mod:`repro.formal.bmc`) produces structured
reports; sign-off wants them in the same currency as every other
static check -- findings with stable fingerprints that waivers,
SARIF export and fail-on thresholds already understand.  These rules
translate:

* ``PROP-001`` -- an assert property was **falsified**: BMC found a
  concrete stimulus (replayable on both simulator dialects) driving
  the property to zero;
* ``PROP-002`` -- a property passed **vacuously**: its assumes are
  jointly unsatisfiable, so the proof says nothing about the design;
* ``PROP-003`` -- a cover property is **unreachable** within the
  checked bound: the scenario it describes cannot be exercised;
* ``PROP-004`` -- two bus decode windows **overlap**: the CNF
  address-comparator check found a doubly-decoded address (the
  formal twin of the structural ``MAP`` rules).

The rules carry scope ``"property"``: they are registered (so SARIF
metadata, waivers and ``get_rule`` resolve them) but never selected
by the structural engine -- findings enter a report through
:func:`findings_from_bmc` / :func:`findings_from_bus`, typically via
``DesignServiceFlow``'s ``verify_props`` stage.

A ``PROP`` finding's subject is the property name (or window pair),
never the message, so fingerprints survive diagnostic rewording --
and a waiver pinned to one falsified property keeps gating every
other one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .core import Finding, Rule, Severity, register

if TYPE_CHECKING:  # import cycle: repro.formal.bmc imports repro.lint
    from ..formal.bmc import BmcReport, BusExclusivityResult

PROP_RULE_IDS = ("PROP-001", "PROP-002", "PROP-003", "PROP-004")


@register(
    "PROP-001", Severity.ERROR, "property",
    "Assert property falsified by bounded model checking",
    scope="property",
)
def check_falsified(rule: Rule, report: "BmcReport") -> Iterable[Finding]:
    """One finding per falsified assert, pinned to the cex frame."""
    for check in report.checks:
        if check.kind != "assert" or check.status != "falsified":
            continue
        frame = (
            check.counterexample.frame
            if check.counterexample is not None else -1
        )
        detail = f": {check.message}" if check.message else ""
        yield rule.finding(
            report.module,
            check.name,
            f"assert {check.name} {check.expr} falsified at frame "
            f"{frame} (depth {check.depth}, {report.config})"
            f"{detail}",
        )


@register(
    "PROP-002", Severity.WARNING, "property",
    "Property proven vacuously (assumes unsatisfiable)",
    scope="property",
)
def check_vacuous(rule: Rule, report: "BmcReport") -> Iterable[Finding]:
    """One finding per vacuous pass."""
    for check in report.checks:
        if not check.vacuous:
            continue
        yield rule.finding(
            report.module,
            check.name,
            f"{check.kind} {check.name} passed vacuously: its "
            f"assumptions are jointly unsatisfiable at depth "
            f"{check.depth}",
        )


@register(
    "PROP-003", Severity.WARNING, "property",
    "Cover property unreachable within the checked bound",
    scope="property",
)
def check_unreachable(
    rule: Rule, report: "BmcReport"
) -> Iterable[Finding]:
    """One finding per unreachable cover."""
    for check in report.checks:
        if check.kind != "cover" or check.status != "unreachable":
            continue
        yield rule.finding(
            report.module,
            check.name,
            f"cover {check.name} {check.expr} has no witness within "
            f"{check.depth} frames",
        )


@register(
    "PROP-004", Severity.ERROR, "property",
    "Bus decode windows overlap (doubly-decoded address)",
    scope="property",
)
def check_bus_overlap(
    rule: Rule, result: "BusExclusivityResult"
) -> Iterable[Finding]:
    """One finding per proven-overlapping window pair."""
    if result.exclusive or result.overlapping is None:
        return
    first, second = result.overlapping
    yield rule.finding(
        "soc",
        f"{first}<->{second}",
        f"windows {first} and {second} both decode address "
        f"{result.witness_address:#x}",
    )


def findings_from_bmc(report: "BmcReport") -> list[Finding]:
    """All ``PROP`` findings a BMC report implies, in sort order."""
    from .core import get_rule

    findings: list[Finding] = []
    for rule_id in ("PROP-001", "PROP-002", "PROP-003"):
        rule = get_rule(rule_id)
        findings.extend(rule.check(rule, report))
    findings.sort(key=Finding.sort_key)
    return findings


def findings_from_bus(result: "BusExclusivityResult") -> list[Finding]:
    """The ``PROP-004`` findings of one bus-exclusivity check."""
    from .core import get_rule

    rule = get_rule("PROP-004")
    return list(rule.check(rule, result))
