"""Structural lint rules: connectivity problems a netlist can carry.

This family subsumes (and is delegated to by) the historical
``Module.validate()``: undriven and unloaded nets, unconnected pins
and combinational loops, extended with multi-driven nets and floating
input ports.  All checks are purely structural -- no simulation, no
library timing data.
"""

from __future__ import annotations

from ..netlist.netlist import Module
from .core import Finding, Rule, Severity, register


@register("STR-001", Severity.ERROR, "structural",
          "net has loads but no driver")
def check_undriven_nets(rule: Rule, module: Module) -> list[Finding]:
    """A loaded net with neither an instance driver nor an input port
    floats -- in silicon it is an X generator (see ``X-002``)."""
    findings = []
    for net in module.nets.values():
        if not net.is_driven and net.fanout > 0:
            findings.append(rule.finding(
                module.name, net.name,
                f"net {net.name!r} has loads but no driver",
            ))
    return findings


@register("STR-002", Severity.WARNING, "structural",
          "net is driven but unloaded")
def check_unloaded_nets(rule: Rule, module: Module) -> list[Finding]:
    """Driven-but-unloaded nets are dead logic (spare-cell outputs are
    intentionally uncommitted and exempt)."""
    findings = []
    for net in module.nets.values():
        if net.is_driven and net.fanout == 0:
            if net.driver is not None and \
                    module.instances[net.driver.instance].cell.is_spare:
                continue
            findings.append(rule.finding(
                module.name, net.name,
                f"net {net.name!r} is driven but unloaded",
            ))
    return findings


@register("STR-003", Severity.ERROR, "structural",
          "instance pin unconnected")
def check_unconnected_pins(rule: Rule, module: Module) -> list[Finding]:
    """Every declared cell pin must map to a net."""
    findings = []
    for inst in module.instances.values():
        for pin in inst.cell.pins:
            if pin.name not in inst.connections:
                findings.append(rule.finding(
                    module.name, f"{inst.name}.{pin.name}",
                    f"instance {inst.name} pin {pin.name} unconnected",
                ))
    return findings


@register("STR-004", Severity.ERROR, "structural",
          "combinational loop")
def check_combinational_loops(rule: Rule, module: Module) -> list[Finding]:
    """Reports the actual instance cycle, not just that one exists."""
    cycle = module.find_combinational_cycle()
    if cycle is None:
        return []
    path = " -> ".join(cycle + [cycle[0]])
    return [rule.finding(
        module.name, "->".join(cycle),
        f"combinational loop in module {module.name}: {path}",
    )]


@register("STR-005", Severity.ERROR, "structural",
          "net has multiple drivers")
def check_multi_driven_nets(rule: Rule, module: Module) -> list[Finding]:
    """The IR holds one instance driver per net, so the representable
    contention is an instance output shorted onto an input-port net --
    exactly the bug hand-edited or imported netlists carry."""
    findings = []
    for net in module.nets.values():
        if net.driver is not None and net.driver_port is not None:
            findings.append(rule.finding(
                module.name, net.name,
                f"net {net.name!r} driven by both input port"
                f" {net.driver_port!r} and instance pin {net.driver}",
            ))
    return findings


@register("STR-006", Severity.WARNING, "structural",
          "floating input port")
def check_floating_inputs(rule: Rule, module: Module) -> list[Finding]:
    """An input port that drives nothing is dead interface -- usually a
    mis-binding at the next level up (width/direction misuse)."""
    findings = []
    for port in module.ports.values():
        if port.direction != "input":
            continue
        if module.nets[port.name].fanout == 0:
            findings.append(rule.finding(
                module.name, port.name,
                f"input port {port.name!r} is floating (no loads)",
            ))
    return findings


#: The rules (in order) whose messages reproduce ``Module.validate()``.
_VALIDATE_RULES = ("STR-001", "STR-002", "STR-003", "STR-004",
                   "STR-005", "STR-006")


def structural_problems(module: Module) -> list[str]:
    """Legacy ``Module.validate()`` surface: messages only.

    Runs the structural rule family serially in registration order and
    flattens the findings to the historical ``list[str]`` form.
    """
    from .core import get_rule

    problems: list[str] = []
    for rule_id in _VALIDATE_RULES:
        rule = get_rule(rule_id)
        problems.extend(f.message for f in rule.check(rule, module))
    return problems
