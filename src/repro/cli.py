"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-line access to the headline flows without
writing scripts:

    python -m repro flow          # the nine-stage lifecycle
    python -m repro camera        # take a photo, write a .jpg
    python -m repro ramp          # the 8-month yield ramp
    python -m repro atpg          # scan + ATPG on a generated block
    python -m repro mbist         # March coverage + BIST plan
    python -m repro pins          # substrate 4 -> 2 layers
    python -m repro migrate       # 0.25 -> 0.18 um die cost
    python -m repro regress       # E13 cross-simulator regression
    python -m repro sta           # multi-corner NLDM signoff STA
    python -m repro cover         # coverage-closure loop (DSC bench)
    python -m repro lint          # static design-rule analysis (DSC)
    python -m repro bmc           # bounded model checking (DSC)

The ``lint`` command runs the rule families of :mod:`repro.lint` over
the generated DSC design database: structural netlist checks (STR-*),
clock-domain-crossing analysis (CDC-*), static X-source propagation
(X-*), scan design rules (SCAN-*) and the SoC memory-map audit
(MAP-*), plus the dataflow-engine families of PR 4: constant
propagation (CONST-*), dead logic (DEAD-*), dialect divergence
(DIV-*) and zero-delay races (RACE-*).  ``--waivers FILE`` applies a
JSON waiver file; ``--fail-on`` sets the exit-status threshold;
``--json`` emits the canonical report (byte-identical for any
``--workers`` value); ``--sarif FILE`` additionally writes SARIF 2.1.0
for GitHub code scanning.  Incremental reruns: ``--store FILE``
persists the content-addressed artifact store across runs (only
changed modules re-lint), ``--baseline FILE`` diffs against a prior
JSON report by finding fingerprint (``--changed-only`` gates only on
new findings), ``--sarif-baseline FILE`` stamps SARIF results with
``baselineState``, and ``--fail-on-unused-waivers`` turns stale
waivers into a failure.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_flow(args: argparse.Namespace) -> int:
    from .core import DesignServiceFlow

    flow = DesignServiceFlow(scale=args.scale, seed=args.seed)
    report = flow.run()
    print(report.format_report())
    return 0


def _cmd_camera(args: argparse.Namespace) -> int:
    from .dsc import SENSOR_2MP, SENSOR_3MP, simulate_shot

    sensor = SENSOR_3MP if args.grade == "3mp" else SENSOR_2MP
    shot = simulate_shot(sensor=sensor, quality=args.quality,
                         seed=args.seed)
    print(f"{sensor.name}: {shot.timing.format_report()}")
    print(f"PSNR {shot.quality_psnr_db:.1f} dB, "
          f"{len(shot.jpeg_stream)} bytes")
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(shot.jpeg_stream)
        print(f"wrote {args.out}")
    return 0


def _cmd_ramp(args: argparse.Namespace) -> int:
    from .manufacturing import simulate_ramp

    result = simulate_ramp(months=args.months, seed=args.seed)
    print(result.format_report())
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from .netlist import block_from_budget, make_default_library
    from .dft import insert_scan, run_atpg

    library = make_default_library(0.25)
    block = block_from_budget("block", library,
                              gate_budget=args.gates, seed=args.seed)
    scanned, scan_report = insert_scan(block, n_chains=args.chains)
    print(f"scanned {scan_report.total_scan_flops} flops into "
          f"{len(scan_report.chains)} chains")
    result = run_atpg(scanned, seed=args.seed,
                      max_random_patterns=args.patterns,
                      batch_size=args.batch_size, kernel=args.kernel,
                      engine=args.engine, workers=args.workers)
    print(result.format_report())
    return 0


def _cmd_mbist(args: argparse.Namespace) -> int:
    from .netlist import make_default_library
    from .mbist import (
        BistGenerator,
        MARCH_C_MINUS,
        dsc_memory_set,
        measure_coverage,
    )

    report = measure_coverage(MARCH_C_MINUS, trials_per_family=args.trials,
                              seed=args.seed)
    print(report.format_report())
    plan = BistGenerator(make_default_library(0.25)).plan(dsc_memory_set())
    print()
    print(plan.format_report())
    return 0


def _cmd_pins(args: argparse.Namespace) -> int:
    from .package import (
        dsc_pad_ring,
        estimate_layers,
        optimize_assignment,
        scrambled_assignment,
        tfbga256,
    )

    start = scrambled_assignment(tfbga256(), dsc_pad_ring(),
                                 seed=args.seed)
    print(f"initial substrate layers: {estimate_layers(start)}")
    optimized, report = optimize_assignment(
        start, iterations=args.iterations, seed=args.seed,
        initial_temperature=0.3,
    )
    print(report.format_report())
    print(f"final substrate layers  : {estimate_layers(optimized)}")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from .manufacturing import migrate_dsc

    print(migrate_dsc().format_report())
    return 0


def _null_checker(cycle, outputs):
    """Picklable no-op checker for stimulus-only regression benches."""
    return None


def _cmd_regress(args: argparse.Namespace) -> int:
    from .netlist import make_default_library, pipeline_block
    from .verification import (
        Testbench,
        cross_simulator_check,
        random_stimulus,
    )

    library = make_default_library(0.25)
    module = pipeline_block("blk", library, stages=args.stages,
                            width=args.width,
                            cloud_gates=args.cloud_gates, seed=args.seed)
    benches = []
    for index in range(args.benches):
        stimulus = random_stimulus(module, cycles=args.cycles,
                                   seed=args.seed + index)
        if args.no_reset:
            # E13 failure mode: reset deasserted but never applied, so
            # flops keep their dialect-dependent power-on value.
            stimulus = [{**vector, "rst_n": 1} for vector in stimulus]
        benches.append(Testbench(
            name=f"bench_{index}",
            stimulus=stimulus,
            checker=_null_checker,
            reset_port=None if args.no_reset else "rst_n",
        ))
    cross = cross_simulator_check(module, benches, workers=args.workers,
                                  engine=args.engine)
    print(cross.report_a.format_report())
    print()
    print(cross.report_b.format_report())
    print()
    print(cross.format_report())
    return 0 if cross.consistent else 1


def _cmd_sta(args: argparse.Namespace) -> int:
    from .netlist import make_default_library, pipeline_block
    from .sta import TimingConstraints, analyze_timing

    library = make_default_library(0.25)
    module = pipeline_block("blk", library, stages=args.stages,
                            width=args.width,
                            cloud_gates=args.cloud_gates, seed=args.seed)
    constraints = TimingConstraints(clock_period_ps=args.period)
    corners = args.corner.split(",") if args.corner else None
    report = analyze_timing(module, constraints, corners=corners,
                            engine=args.engine, workers=args.workers)
    print(report.canonical_json() if args.json else report.format_report())
    return 0 if report.setup_clean and report.hold_clean else 1


def _cmd_cover(args: argparse.Namespace) -> int:
    from .coverage import ClosureConfig, close_coverage, dsc_closure_bench

    module, covergroup, spec = dsc_closure_bench()
    config = ClosureConfig(
        toggle_target=args.toggle_target,
        functional_target=args.functional_target,
        tests_per_round=args.tests_per_round,
        cycles_per_test=args.cycles,
        max_rounds=args.rounds,
    )
    result = close_coverage(module, covergroup, seed=args.seed,
                            config=config, spec=spec,
                            workers=args.workers, engine=args.engine)
    print(result.format_report())
    return 0 if result.reached else 1


def _cmd_bmc(args: argparse.Namespace) -> int:
    import json as json_mod

    from .formal import (
        check_bus_exclusivity,
        check_properties,
        derive_properties,
        replay_counterexample,
    )
    from .lint import dsc_lint_targets

    targets = dsc_lint_targets(scale=args.scale, seed=args.seed)
    modules = sorted(targets.modules, key=lambda m: m.name)
    reports = []
    falsified = 0
    for module in modules:
        if len(module.instances) > args.max_gates:
            if not args.json:
                print(f"{module.name}: skipped "
                      f"({len(module.instances)} gates > "
                      f"{args.max_gates})")
            continue
        props = derive_properties(module)
        if not any(p.kind != "assume" for p in props):
            continue
        report = check_properties(
            module, props, depth=args.depth, engine=args.engine,
            workers=args.workers, seed=args.seed,
        )
        reports.append(report)
        falsified += report.counts()["falsified"]
        if args.json:
            continue
        print(report.format_report())
        by_name = {p.name: p for p in props}
        for check in report.checks:
            if check.counterexample is None \
                    or check.status != "falsified":
                continue
            replay = replay_counterexample(
                module, by_name[check.name], check.counterexample
            )
            verdict = ("reproduced on every dialect"
                       if replay.reproduced_everywhere
                       else "NOT reproduced everywhere")
            print(f"  replay {check.name}: {verdict}")
        print()

    bus = check_bus_exclusivity(targets.soc.bus)
    if args.json:
        payload = {
            "bus": bus.to_dict(),
            "depth": args.depth,
            "engine": args.engine,
            "reports": [report.to_dict() for report in reports],
        }
        print(json_mod.dumps(payload, sort_keys=True,
                             separators=(",", ":")))
    else:
        verdict = "EXCLUSIVE" if bus.exclusive else "OVERLAP"
        print(f"bus decode windows ({len(bus.windows)}): {verdict}")
        if bus.overlapping is not None:
            print(f"  witness address {bus.witness_address:#x} in "
                  f"{bus.overlapping[0]} and {bus.overlapping[1]}")
    return 1 if (falsified or not bus.exclusive) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_mod
    import os

    from .lint import LintReport, WaiverSet, dsc_lint_targets, run_lint
    from .store import ArtifactStore, set_default_store

    waivers = WaiverSet.load(args.waivers) if args.waivers else None
    rules = args.rules.split(",") if args.rules else None
    if args.store and os.path.exists(args.store):
        set_default_store(ArtifactStore.load(args.store))
    targets = dsc_lint_targets(scale=args.scale, seed=args.seed)
    report = run_lint(
        targets.modules,
        soc=targets.soc,
        catalog=targets.catalog,
        binding=targets.binding,
        design="dsc",
        rules=rules,
        workers=args.workers,
        waivers=waivers,
    )
    if args.store:
        from .store import get_default_store

        get_default_store().save(args.store)
    if args.sarif:
        sarif_baseline = None
        if args.sarif_baseline:
            with open(args.sarif_baseline, "r", encoding="utf-8") as handle:
                sarif_baseline = json_mod.load(handle)
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(report.to_sarif_json(baseline=sarif_baseline))
            handle.write("\n")

    delta = None
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            delta = report.delta(LintReport.from_json(handle.read()))
    if args.changed_only:
        if delta is None:
            print("lint: --changed-only requires --baseline",
                  file=sys.stderr)
            return 2
        print(delta.to_json() if args.json else delta.format_report())
    else:
        print(report.to_json() if args.json else report.format_report())
        if delta is not None:
            print(delta.to_json() if args.json else delta.format_report())

    failed = report.failed(args.fail_on)
    if delta is not None and args.changed_only:
        threshold = args.fail_on
        failed = LintReport(
            design=report.design, findings=delta.new
        ).failed(threshold)
    if args.fail_on_unused_waivers and report.unused_waivers:
        failed = True
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as json_mod
    import os

    from .service import DesignService, synthetic_tenant_mix
    from .store import ArtifactStore

    stages = tuple(args.stages.split(",")) if args.stages else None
    mix = synthetic_tenant_mix(
        tenants=args.tenants,
        requests_per_tenant=args.requests,
        scale=args.scale,
        seed=args.seed,
        stages=stages,
        bmc_depth=args.depth,
        dft_patterns=args.patterns,
    )
    # A dedicated store: it receives exactly the service.* unit
    # payloads, so its canonical dump is comparable across worker
    # counts (the ambient store picks up inline lint/analysis entries
    # that legitimately differ between inline and pool execution).
    if args.store and os.path.exists(args.store):
        store = ArtifactStore.load(args.store)
    else:
        store = ArtifactStore()
    def print_event(event: dict) -> None:
        print(json_mod.dumps(event, sort_keys=True,
                             separators=(",", ":")),
              file=sys.stderr)

    on_event = print_event if args.events else None
    service = DesignService(workers=args.workers,
                            queue_depth=args.queue_depth,
                            store=store, on_event=on_event)
    try:
        reports = service.run(mix)
    finally:
        service.close()
    if args.store:
        store.save(args.store, canonical=True)
    reports = sorted(reports, key=lambda r: r.request_id)
    if args.json:
        print(json_mod.dumps([report.to_dict() for report in reports],
                             sort_keys=True, separators=(",", ":")))
    else:
        for report in reports:
            print(report.format_report())
        stats = service.stats
        print(f"{stats.requests:.0f} requests, "
              f"{stats.units_total:.0f} units requested, "
              f"{stats.units_executed:.0f} executed "
              f"({stats.units_coalesced:.0f} coalesced, "
              f"{stats.units_store_hits:.0f} store hits, "
              f"dedup {stats.dedup_rate * 100:.1f}%)")
    return 0 if all(report.ok for report in reports) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated SOC design-service flow (DATE 2005 "
                    "multimedia SOC reproduction)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="print a stage-time breakdown after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flow = sub.add_parser("flow", help="run the nine-stage lifecycle")
    flow.add_argument("--scale", type=float, default=0.02)
    flow.add_argument("--seed", type=int, default=1)
    flow.set_defaults(func=_cmd_flow)

    camera = sub.add_parser("camera", help="capture a photo")
    camera.add_argument("--grade", choices=("2mp", "3mp"), default="3mp")
    camera.add_argument("--quality", type=int, default=85)
    camera.add_argument("--seed", type=int, default=0)
    camera.add_argument("--out", default="")
    camera.set_defaults(func=_cmd_camera)

    ramp = sub.add_parser("ramp", help="simulate the yield ramp")
    ramp.add_argument("--months", type=int, default=8)
    ramp.add_argument("--seed", type=int, default=11)
    ramp.set_defaults(func=_cmd_ramp)

    atpg = sub.add_parser("atpg", help="scan + ATPG a generated block")
    atpg.add_argument("--gates", type=int, default=1500)
    atpg.add_argument("--chains", type=int, default=2)
    atpg.add_argument("--patterns", type=int, default=512)
    atpg.add_argument("--seed", type=int, default=3)
    atpg.add_argument("--batch-size", type=int, default=64,
                      help="fault-sim patterns per batch (wider is "
                           "faster; selects a different but equally "
                           "random pattern stream)")
    atpg.add_argument("--kernel", choices=("words", "bigint"),
                      default="words",
                      help="legacy fault-sim kernel name (superseded "
                           "by --engine)")
    atpg.add_argument("--engine",
                      choices=("compiled", "words", "scalar"),
                      default=None,
                      help="fault-sim engine; all engines are "
                           "bit-identical, 'compiled' is the fused "
                           "flat-program backend")
    atpg.add_argument("--workers", type=int, default=1,
                      help="fault-partition processes for fault sim")
    atpg.set_defaults(func=_cmd_atpg)

    mbist = sub.add_parser("mbist", help="March coverage + BIST plan")
    mbist.add_argument("--trials", type=int, default=80)
    mbist.add_argument("--seed", type=int, default=3)
    mbist.set_defaults(func=_cmd_mbist)

    pins = sub.add_parser("pins", help="pin-assignment optimisation")
    pins.add_argument("--iterations", type=int, default=3000)
    pins.add_argument("--seed", type=int, default=1)
    pins.set_defaults(func=_cmd_pins)

    migrate = sub.add_parser("migrate", help="0.25 -> 0.18 um die cost")
    migrate.set_defaults(func=_cmd_migrate)

    regress = sub.add_parser(
        "regress", help="E13 cross-simulator regression suite")
    regress.add_argument("--stages", type=int, default=2)
    regress.add_argument("--width", type=int, default=8)
    regress.add_argument("--cloud-gates", type=int, default=40)
    regress.add_argument("--benches", type=int, default=4)
    regress.add_argument("--cycles", type=int, default=16)
    regress.add_argument("--seed", type=int, default=5)
    regress.add_argument("--workers", type=int, default=1,
                         help="bench fan-out processes per dialect")
    regress.add_argument("--no-reset", action="store_true",
                         help="skip reset to reproduce the E13 "
                              "dialect mismatch (exit code 1)")
    regress.add_argument("--engine", choices=("event", "compiled"),
                         default="compiled",
                         help="simulation backend (bit-identical "
                              "verdicts; compiled packs benches into "
                              "word-parallel lanes)")
    regress.set_defaults(func=_cmd_regress)

    sta = sub.add_parser(
        "sta", help="multi-corner NLDM signoff STA on a generated block")
    sta.add_argument("--stages", type=int, default=4)
    sta.add_argument("--width", type=int, default=12)
    sta.add_argument("--cloud-gates", type=int, default=120)
    sta.add_argument("--seed", type=int, default=3)
    sta.add_argument("--period", type=float, default=7500.0,
                     help="clock period in ps (default 7.5 ns = 133 MHz)")
    sta.add_argument("--corner", default="",
                     help="comma-separated corner names (e.g. ss,ff); "
                          "default: every library corner")
    sta.add_argument("--engine", choices=("vectorized", "scalar"),
                     default="vectorized",
                     help="sweep engine (bit-identical QoR; vectorized "
                          "analyzes every corner in one numpy pass)")
    sta.add_argument("--workers", type=int, default=None,
                     help="corner fan-out processes (scalar engine)")
    sta.add_argument("--json", action="store_true",
                     help="emit the canonical QoR JSON (byte-identical "
                          "across engines and worker counts)")
    sta.set_defaults(func=_cmd_sta)

    cover = sub.add_parser(
        "cover", help="coverage-closure loop on the DSC bench")
    cover.add_argument("--toggle-target", type=float, default=0.85)
    cover.add_argument("--functional-target", type=float, default=1.0)
    cover.add_argument("--tests-per-round", type=int, default=8)
    cover.add_argument("--cycles", type=int, default=48)
    cover.add_argument("--rounds", type=int, default=12)
    cover.add_argument("--seed", type=int, default=1)
    cover.add_argument("--workers", type=int, default=1,
                       help="simulation fan-out processes per round")
    cover.add_argument("--engine", choices=("event", "compiled"),
                       default="compiled",
                       help="simulation backend (bit-identical "
                            "coverage DB; compiled packs a round's "
                            "tests into word-parallel lanes)")
    cover.set_defaults(func=_cmd_cover)

    bmc = sub.add_parser(
        "bmc", help="bounded model checking on the DSC database")
    bmc.add_argument("--scale", type=float, default=0.005,
                     help="fraction of each IP's catalogue gate budget")
    bmc.add_argument("--seed", type=int, default=0)
    bmc.add_argument("--depth", type=int, default=10,
                     help="number of unrolled clock frames")
    bmc.add_argument("--engine", choices=("cdcl", "lanes"),
                     default="cdcl",
                     help="checking engine: 'cdcl' proves/falsifies "
                          "via SAT, 'lanes' drives word-parallel "
                          "simulation lanes (refutation only unless "
                          "the free-input space is exhaustible)")
    bmc.add_argument("--workers", type=int, default=1,
                     help="per-property fan-out processes (the report "
                          "is byte-identical for any value)")
    bmc.add_argument("--max-gates", type=int, default=4000,
                     help="skip blocks above this gate count")
    bmc.add_argument("--json", action="store_true",
                     help="emit the canonical JSON report "
                          "(byte-identical across --workers)")
    bmc.set_defaults(func=_cmd_bmc)

    lint = sub.add_parser(
        "lint", help="static design-rule analysis on the DSC database")
    lint.add_argument("--scale", type=float, default=0.02,
                      help="fraction of each IP's catalogue gate budget")
    lint.add_argument("--seed", type=int, default=0)
    lint.add_argument("--workers", type=int, default=None,
                      help="module-lint fan-out processes")
    lint.add_argument("--waivers", default="",
                      help="JSON waiver file to apply")
    lint.add_argument("--rules", default="",
                      help="comma-separated rule ids or categories "
                           "(e.g. cdc,SCAN-001); default: all")
    lint.add_argument("--fail-on",
                      choices=("error", "warning", "info", "none"),
                      default="error",
                      help="lowest severity that fails the run")
    lint.add_argument("--json", action="store_true",
                      help="emit the canonical JSON report")
    lint.add_argument("--sarif", default="", metavar="FILE",
                      help="also write the report as SARIF 2.1.0 "
                           "(for GitHub code scanning)")
    lint.add_argument("--sarif-baseline", default="", metavar="FILE",
                      help="prior SARIF log; stamps each result's "
                           "baselineState (new vs unchanged)")
    lint.add_argument("--baseline", default="", metavar="FILE",
                      help="prior canonical-JSON lint report to diff "
                           "against (fingerprint delta)")
    lint.add_argument("--changed-only", action="store_true",
                      help="with --baseline: report and gate only on "
                           "findings new since the baseline")
    lint.add_argument("--fail-on-unused-waivers", action="store_true",
                      help="exit nonzero when any waiver matched "
                           "nothing (stale sign-off)")
    lint.add_argument("--store", default="", metavar="FILE",
                      help="persisted artifact store: load before the "
                           "run (if present) and save after, so "
                           "reruns only re-lint changed modules")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve",
        help="multi-tenant flow service over a synthetic DSC mix")
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--requests", type=int, default=3,
                       help="requests per tenant")
    serve.add_argument("--scale", type=float, default=0.005,
                       help="fraction of each IP's catalogue gate "
                            "budget")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--workers", type=int, default=1,
                       help="pool workers for stage units (reports "
                            "are byte-identical for any value)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="max units in flight (default 2x workers)")
    serve.add_argument("--depth", type=int, default=3,
                       help="BMC depth for verify_props units")
    serve.add_argument("--patterns", type=int, default=256,
                       help="fault-sim pattern budget for dft units")
    serve.add_argument("--stages", default="",
                       help="comma-separated stage subset for every "
                            "request (default: the mix's stage menus)")
    serve.add_argument("--json", action="store_true",
                       help="emit the canonical per-request report "
                            "array, sorted by request id "
                            "(byte-identical across --workers, "
                            "submission order and --queue-depth)")
    serve.add_argument("--store", default="", metavar="FILE",
                       help="persisted artifact store: load before "
                            "the run (if present) and save a "
                            "canonical dump after, so warm reruns "
                            "splice every unit from the store")
    serve.add_argument("--events", action="store_true",
                       help="stream progress events as JSON lines on "
                            "stderr")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    status = args.func(args)
    if args.perf:
        from .perf import perf_report

        print()
        print(perf_report())
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
