"""Colour-space conversion and chroma subsampling for the JPEG path."""

from __future__ import annotations

import numpy as np


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 full-range RGB -> YCbCr (both float64, 0..255)."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("expected (H, W, 3) RGB array")
    rgb = rgb.astype(np.float64)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0
    cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`, clipped to 0..255."""
    ycbcr = ycbcr.astype(np.float64)
    y, cb, cr = ycbcr[..., 0], ycbcr[..., 1] - 128.0, ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.clip(np.stack([r, g, b], axis=-1), 0.0, 255.0)


def subsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average chroma subsampling (dims must be even)."""
    height, width = plane.shape
    if height % 2 or width % 2:
        raise ValueError("4:2:0 subsampling needs even dimensions")
    return plane.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))


def upsample_420(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2x upsampling (inverse of :func:`subsample_420`)."""
    return plane.repeat(2, axis=0).repeat(2, axis=1)


def pad_to_multiple(plane: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-replicate a plane so both dimensions divide ``multiple``."""
    height, width = plane.shape
    pad_h = (-height) % multiple
    pad_w = (-width) % multiple
    if pad_h == 0 and pad_w == 0:
        return plane
    return np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
