"""Baseline sequential JPEG encoder and decoder (JFIF bytestreams).

This is the algorithmic reference for the SoC's hardwired JPEG engine:
a complete ITU-T T.81 baseline codec -- level shift, 8x8 DCT,
quantisation, zig-zag, run-length and Huffman entropy coding, JFIF
marker framing -- supporting grayscale and YCbCr 4:2:0 colour.
Streams produced here are standard-compliant baseline JPEG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .color import (
    pad_to_multiple,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from .dct import forward_dct_blocks, inverse_dct_blocks
from .huffman import (
    AC_CHROMA,
    AC_LUMA,
    BitReader,
    BitWriter,
    DC_CHROMA,
    DC_LUMA,
    TABLE_SPECS,
    amplitude_bits,
    amplitude_decode,
)
from .quant import CHROMA_BASE, LUMA_BASE, dequantise, quantise, scale_table
from .zigzag import from_zigzag, run_length_encode, to_zigzag

# Marker bytes.
_SOI = b"\xff\xd8"
_EOI = b"\xff\xd9"
_APP0 = 0xE0
_DQT = 0xDB
_SOF0 = 0xC0
_DHT = 0xC4
_SOS = 0xDA


class JpegError(Exception):
    """Malformed stream or unsupported feature."""


@dataclass(frozen=True)
class EncodeStats:
    """Byte/bit accounting for one encode."""

    width: int
    height: int
    components: int
    quality: int
    compressed_bytes: int

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def bits_per_pixel(self) -> float:
        return self.compressed_bytes * 8.0 / max(self.pixels, 1)

    @property
    def compression_ratio(self) -> float:
        raw = self.pixels * self.components
        return raw / max(self.compressed_bytes, 1)


# ---------------------------------------------------------------------------
# Block-level helpers
# ---------------------------------------------------------------------------

def _encode_plane_blocks(
    plane: np.ndarray, table: np.ndarray
) -> np.ndarray:
    """Level shift, DCT and quantise a padded plane.

    Returns quantised coefficient blocks of shape (rows, cols, 8, 8).
    """
    coefficients = forward_dct_blocks(plane - 128.0)
    return quantise(coefficients, table)


def _decode_plane_blocks(
    blocks: np.ndarray, table: np.ndarray
) -> np.ndarray:
    """Dequantise, inverse DCT and un-level-shift into a plane."""
    spatial = inverse_dct_blocks(dequantise(blocks, table))
    return np.clip(spatial + 128.0, 0.0, 255.0)


def _write_block(
    writer: BitWriter,
    block: np.ndarray,
    dc_predictor: int,
    dc_table,
    ac_table,
) -> int:
    """Entropy-encode one quantised block; returns the new predictor."""
    vector = to_zigzag(block)
    dc = int(vector[0])
    diff = dc - dc_predictor
    bits, size = amplitude_bits(diff)
    code, length = dc_table.encode(size)
    writer.write(code, length)
    writer.write(bits, size)
    for symbol in run_length_encode(vector):
        bits, size = amplitude_bits(symbol.value)
        code, length = ac_table.encode((symbol.run << 4) | size)
        writer.write(code, length)
        writer.write(bits, size)
    return dc


def _read_block(reader: BitReader, dc_predictor: int, dc_table, ac_table
                ) -> tuple[np.ndarray, int]:
    """Entropy-decode one block; returns (block, new predictor)."""
    size = reader.read_symbol(dc_table)
    diff = amplitude_decode(reader.read(size), size)
    dc = dc_predictor + diff
    vector = np.zeros(64, dtype=np.int32)
    vector[0] = dc
    position = 1
    while position < 64:
        symbol = reader.read_symbol(ac_table)
        run, size = symbol >> 4, symbol & 0xF
        if size == 0:
            if run == 0:
                break  # EOB
            if run == 15:
                position += 16  # ZRL
                continue
            raise JpegError(f"illegal AC symbol {symbol:#x}")
        position += run
        if position >= 64:
            raise JpegError("AC coefficient index overflow")
        vector[position] = amplitude_decode(reader.read(size), size)
        position += 1
    return from_zigzag(vector), dc


# ---------------------------------------------------------------------------
# Marker segments
# ---------------------------------------------------------------------------

def _segment(marker: int, payload: bytes) -> bytes:
    return bytes([0xFF, marker]) + (len(payload) + 2).to_bytes(2, "big") + payload


def _app0_jfif() -> bytes:
    return _segment(_APP0, b"JFIF\x00\x01\x02\x00\x00\x01\x00\x01\x00\x00")


def _dqt_segment(table_id: int, table: np.ndarray) -> bytes:
    payload = bytes([table_id]) + bytes(
        int(table.reshape(64)[i]) for i in _zigzag_flat()
    )
    return _segment(_DQT, payload)


def _zigzag_flat() -> list[int]:
    from .zigzag import ZIGZAG

    return [r * 8 + c for r, c in ZIGZAG]


def _sof0_segment(width: int, height: int, components: list[tuple[int, int, int]]
                  ) -> bytes:
    payload = bytearray([8])
    payload += height.to_bytes(2, "big") + width.to_bytes(2, "big")
    payload.append(len(components))
    for component_id, sampling, q_table in components:
        payload += bytes([component_id, sampling, q_table])
    return _segment(_SOF0, bytes(payload))


def _dht_segment(table_class: int, table_id: int, spec_name: str) -> bytes:
    bits, values = TABLE_SPECS[spec_name]
    payload = bytes([(table_class << 4) | table_id]) + bytes(bits) + bytes(values)
    return _segment(_DHT, payload)


def _sos_segment(component_tables: list[tuple[int, int, int]]) -> bytes:
    payload = bytearray([len(component_tables)])
    for component_id, dc_id, ac_id in component_tables:
        payload += bytes([component_id, (dc_id << 4) | ac_id])
    payload += bytes([0, 63, 0])
    return _segment(_SOS, bytes(payload))


# ---------------------------------------------------------------------------
# Public encoders
# ---------------------------------------------------------------------------

def encode_grayscale(image: np.ndarray, *, quality: int = 75
                     ) -> tuple[bytes, EncodeStats]:
    """Encode a (H, W) uint8/float plane as a baseline JFIF stream."""
    if image.ndim != 2:
        raise ValueError("grayscale encoder expects a 2-D array")
    height, width = image.shape
    table = scale_table(LUMA_BASE, quality)
    plane = pad_to_multiple(image.astype(np.float64), 8)
    blocks = _encode_plane_blocks(plane, table)

    writer = BitWriter()
    predictor = 0
    rows, cols = blocks.shape[:2]
    for row in range(rows):
        for col in range(cols):
            predictor = _write_block(
                writer, blocks[row, col], predictor, DC_LUMA, AC_LUMA
            )
    entropy = writer.flush()

    stream = b"".join(
        [
            _SOI,
            _app0_jfif(),
            _dqt_segment(0, table),
            _sof0_segment(width, height, [(1, 0x11, 0)]),
            _dht_segment(0, 0, "dc_luma"),
            _dht_segment(1, 0, "ac_luma"),
            _sos_segment([(1, 0, 0)]),
            entropy,
            _EOI,
        ]
    )
    stats = EncodeStats(width, height, 1, quality, len(stream))
    return stream, stats


def encode_color(rgb: np.ndarray, *, quality: int = 75
                 ) -> tuple[bytes, EncodeStats]:
    """Encode an (H, W, 3) RGB image as baseline 4:2:0 JFIF."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("colour encoder expects an (H, W, 3) array")
    height, width = rgb.shape[:2]
    ycbcr = rgb_to_ycbcr(rgb)
    luma_table = scale_table(LUMA_BASE, quality)
    chroma_table = scale_table(CHROMA_BASE, quality)

    y_plane = pad_to_multiple(ycbcr[..., 0], 16)
    cb_full = pad_to_multiple(ycbcr[..., 1], 16)
    cr_full = pad_to_multiple(ycbcr[..., 2], 16)
    cb_plane = subsample_420(cb_full)
    cr_plane = subsample_420(cr_full)

    y_blocks = _encode_plane_blocks(y_plane, luma_table)
    cb_blocks = _encode_plane_blocks(cb_plane, chroma_table)
    cr_blocks = _encode_plane_blocks(cr_plane, chroma_table)

    writer = BitWriter()
    predictors = {"y": 0, "cb": 0, "cr": 0}
    mcu_rows = y_plane.shape[0] // 16
    mcu_cols = y_plane.shape[1] // 16
    for mcu_row in range(mcu_rows):
        for mcu_col in range(mcu_cols):
            for sub_row in range(2):
                for sub_col in range(2):
                    predictors["y"] = _write_block(
                        writer,
                        y_blocks[mcu_row * 2 + sub_row, mcu_col * 2 + sub_col],
                        predictors["y"], DC_LUMA, AC_LUMA,
                    )
            predictors["cb"] = _write_block(
                writer, cb_blocks[mcu_row, mcu_col], predictors["cb"],
                DC_CHROMA, AC_CHROMA,
            )
            predictors["cr"] = _write_block(
                writer, cr_blocks[mcu_row, mcu_col], predictors["cr"],
                DC_CHROMA, AC_CHROMA,
            )
    entropy = writer.flush()

    stream = b"".join(
        [
            _SOI,
            _app0_jfif(),
            _dqt_segment(0, luma_table),
            _dqt_segment(1, chroma_table),
            _sof0_segment(width, height,
                          [(1, 0x22, 0), (2, 0x11, 1), (3, 0x11, 1)]),
            _dht_segment(0, 0, "dc_luma"),
            _dht_segment(1, 0, "ac_luma"),
            _dht_segment(0, 1, "dc_chroma"),
            _dht_segment(1, 1, "ac_chroma"),
            _sos_segment([(1, 0, 0), (2, 1, 1), (3, 1, 1)]),
            entropy,
            _EOI,
        ]
    )
    stats = EncodeStats(width, height, 3, quality, len(stream))
    return stream, stats


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------

@dataclass
class _Component:
    component_id: int
    h_sampling: int
    v_sampling: int
    q_table_id: int
    dc_table_id: int = 0
    ac_table_id: int = 0


def decode(stream: bytes) -> np.ndarray:
    """Decode a baseline JFIF stream produced by this codec.

    Returns (H, W) for grayscale or (H, W, 3) RGB for colour images.
    Supports 1-component and 3-component 4:2:0 / 4:4:4 baseline scans
    without restart markers.
    """
    if stream[:2] != _SOI:
        raise JpegError("missing SOI marker")
    position = 2
    q_tables: dict[int, np.ndarray] = {}
    huffman: dict[tuple[int, int], object] = {}
    components: list[_Component] = []
    width = height = 0
    entropy_start = None

    from .huffman import HuffmanTable

    zigzag_flat = _zigzag_flat()
    while position < len(stream):
        if stream[position] != 0xFF:
            raise JpegError(f"expected marker at offset {position}")
        marker = stream[position + 1]
        position += 2
        if marker == 0xD9:  # EOI
            break
        length = int.from_bytes(stream[position:position + 2], "big")
        payload = stream[position + 2:position + length]
        position += length
        if marker == _DQT:
            offset = 0
            while offset < len(payload):
                table_id = payload[offset] & 0xF
                precision = payload[offset] >> 4
                if precision != 0:
                    raise JpegError("16-bit quant tables unsupported")
                flat = np.zeros(64, dtype=np.int32)
                for k in range(64):
                    flat[zigzag_flat[k]] = payload[offset + 1 + k]
                q_tables[table_id] = flat.reshape(8, 8)
                offset += 65
        elif marker == _SOF0:
            height = int.from_bytes(payload[1:3], "big")
            width = int.from_bytes(payload[3:5], "big")
            count = payload[5]
            for k in range(count):
                base = 6 + 3 * k
                sampling = payload[base + 1]
                components.append(
                    _Component(
                        component_id=payload[base],
                        h_sampling=sampling >> 4,
                        v_sampling=sampling & 0xF,
                        q_table_id=payload[base + 2],
                    )
                )
        elif marker == _DHT:
            offset = 0
            while offset < len(payload):
                table_class = payload[offset] >> 4
                table_id = payload[offset] & 0xF
                bits = list(payload[offset + 1:offset + 17])
                count = sum(bits)
                values = list(payload[offset + 17:offset + 17 + count])
                huffman[(table_class, table_id)] = HuffmanTable.from_spec(
                    f"dht{table_class}{table_id}", bits, values
                )
                offset += 17 + count
        elif marker == _SOS:
            count = payload[0]
            for k in range(count):
                component_id = payload[1 + 2 * k]
                tables = payload[2 + 2 * k]
                for component in components:
                    if component.component_id == component_id:
                        component.dc_table_id = tables >> 4
                        component.ac_table_id = tables & 0xF
            entropy_start = position
            break
        elif marker in (0xC1, 0xC2, 0xC3, 0xC5, 0xC6, 0xC7):
            raise JpegError("only baseline sequential (SOF0) is supported")
        # APPn/COM and others: skipped.
    if entropy_start is None:
        raise JpegError("no SOS marker found")
    entropy_end = stream.rfind(_EOI)
    if entropy_end < 0:
        raise JpegError("missing EOI marker")
    reader = BitReader(stream[entropy_start:entropy_end])

    h_max = max(c.h_sampling for c in components)
    v_max = max(c.v_sampling for c in components)
    mcu_width = 8 * h_max
    mcu_height = 8 * v_max
    mcu_cols = -(-width // mcu_width)
    mcu_rows = -(-height // mcu_height)

    planes: dict[int, np.ndarray] = {}
    block_grids: dict[int, np.ndarray] = {}
    for component in components:
        rows = mcu_rows * component.v_sampling
        cols = mcu_cols * component.h_sampling
        block_grids[component.component_id] = np.zeros(
            (rows, cols, 8, 8), dtype=np.int32
        )
    predictors = {c.component_id: 0 for c in components}

    for mcu_row in range(mcu_rows):
        for mcu_col in range(mcu_cols):
            for component in components:
                dc_table = huffman[(0, component.dc_table_id)]
                ac_table = huffman[(1, component.ac_table_id)]
                for sub_row in range(component.v_sampling):
                    for sub_col in range(component.h_sampling):
                        block, predictors[component.component_id] = _read_block(
                            reader, predictors[component.component_id],
                            dc_table, ac_table,
                        )
                        grid = block_grids[component.component_id]
                        grid[
                            mcu_row * component.v_sampling + sub_row,
                            mcu_col * component.h_sampling + sub_col,
                        ] = block

    for component in components:
        table = q_tables[component.q_table_id]
        planes[component.component_id] = _decode_plane_blocks(
            block_grids[component.component_id], table
        )

    if len(components) == 1:
        return planes[components[0].component_id][:height, :width]

    if len(components) != 3:
        raise JpegError(f"unsupported component count {len(components)}")
    y_component, cb_component, cr_component = components
    y_plane = planes[y_component.component_id]
    cb_plane = planes[cb_component.component_id]
    cr_plane = planes[cr_component.component_id]
    if cb_component.h_sampling != y_component.h_sampling:
        cb_plane = upsample_420(cb_plane)
        cr_plane = upsample_420(cr_plane)
    h = min(y_plane.shape[0], cb_plane.shape[0])
    w = min(y_plane.shape[1], cb_plane.shape[1])
    ycbcr = np.stack(
        [y_plane[:h, :w], cb_plane[:h, :w], cr_plane[:h, :w]], axis=-1
    )
    return ycbcr_to_rgb(ycbcr)[:height, :width]


def psnr(reference: np.ndarray, test: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB between two images."""
    reference = reference.astype(np.float64)
    test = test.astype(np.float64)
    if reference.shape != test.shape:
        raise ValueError("shape mismatch")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)
