"""8x8 forward and inverse discrete cosine transform.

The hardwired JPEG engine in the paper's SoC implements the type-II
DCT on 8x8 blocks; this is the exact (floating-point) reference model
the hardware would be verified against, implemented as a single
matrix product in numpy.
"""

from __future__ import annotations

import numpy as np

BLOCK = 8


def _dct_matrix() -> np.ndarray:
    """Orthonormal type-II DCT matrix (8x8)."""
    k = np.arange(BLOCK)
    n = np.arange(BLOCK)
    matrix = np.cos(np.pi * (2 * n[None, :] + 1) * k[:, None] / (2 * BLOCK))
    matrix[0, :] *= np.sqrt(1.0 / BLOCK)
    matrix[1:, :] *= np.sqrt(2.0 / BLOCK)
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def forward_dct(block: np.ndarray) -> np.ndarray:
    """2-D DCT of one 8x8 block (level-shifted samples in, coefficients out)."""
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {block.shape}")
    return _DCT @ block.astype(np.float64) @ _IDCT


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """2-D inverse DCT of one 8x8 coefficient block."""
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {coefficients.shape}")
    return _IDCT @ coefficients.astype(np.float64) @ _DCT


def forward_dct_blocks(plane: np.ndarray) -> np.ndarray:
    """DCT every 8x8 tile of a (H, W) plane; H and W must be multiples
    of 8.  Returns an array of shape (H//8, W//8, 8, 8)."""
    height, width = plane.shape
    if height % BLOCK or width % BLOCK:
        raise ValueError("plane dimensions must be multiples of 8")
    tiles = plane.reshape(height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    tiles = tiles.transpose(0, 2, 1, 3).astype(np.float64)
    return np.einsum("ij,abjk,kl->abil", _DCT, tiles, _IDCT)


def inverse_dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct_blocks`."""
    rows, cols = blocks.shape[:2]
    spatial = np.einsum("ij,abjk,kl->abil", _IDCT, blocks, _DCT)
    return spatial.transpose(0, 2, 1, 3).reshape(rows * BLOCK, cols * BLOCK)
