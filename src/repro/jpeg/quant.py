"""JPEG quantisation tables and quality scaling.

Tables are the ITU-T T.81 Annex K reference matrices; quality scaling
follows the Independent JPEG Group convention (quality 1..100).
"""

from __future__ import annotations

import numpy as np

#: Annex K luminance quantisation matrix.
LUMA_BASE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int32,
)

#: Annex K chrominance quantisation matrix.
CHROMA_BASE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int32,
)


def scale_table(base: np.ndarray, quality: int) -> np.ndarray:
    """IJG quality scaling: 50 returns the base table, 100 all-ones."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    table = (base * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


def quantise(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients (round-to-nearest)."""
    return np.round(coefficients / table).astype(np.int32)


def dequantise(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Invert :func:`quantise` up to rounding."""
    return (levels * table).astype(np.float64)
