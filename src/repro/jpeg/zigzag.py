"""Zig-zag coefficient ordering and run-length symbol generation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _zigzag_order() -> list[tuple[int, int]]:
    order: list[tuple[int, int]] = []
    row = col = 0
    up = True
    for _ in range(64):
        order.append((row, col))
        if up:
            if col == 7:
                row += 1
                up = False
            elif row == 0:
                col += 1
                up = False
            else:
                row -= 1
                col += 1
        else:
            if row == 7:
                col += 1
                up = True
            elif col == 0:
                row += 1
                up = True
            else:
                row += 1
                col -= 1
    return order


ZIGZAG: tuple[tuple[int, int], ...] = tuple(_zigzag_order())
_FLAT_INDEX = np.array([r * 8 + c for r, c in ZIGZAG])


def to_zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block into its 64-entry zig-zag vector."""
    return block.reshape(64)[_FLAT_INDEX]


def from_zigzag(vector: np.ndarray) -> np.ndarray:
    """Rebuild the 8x8 block from a zig-zag vector."""
    block = np.zeros(64, dtype=vector.dtype)
    block[_FLAT_INDEX] = vector
    return block.reshape(8, 8)


@dataclass(frozen=True)
class AcSymbol:
    """One JPEG AC entropy symbol: (run of zeros, amplitude)."""

    run: int
    value: int

    @property
    def is_eob(self) -> bool:
        return self.run == 0 and self.value == 0

    @property
    def is_zrl(self) -> bool:
        """The 16-zero-run escape symbol."""
        return self.run == 15 and self.value == 0


EOB = AcSymbol(0, 0)
ZRL = AcSymbol(15, 0)


def run_length_encode(zigzag_vector: np.ndarray) -> list[AcSymbol]:
    """Encode the 63 AC coefficients as (run, value) symbols.

    Runs longer than 15 emit ZRL escapes; a trailing zero tail emits a
    single EOB, exactly per T.81.
    """
    symbols: list[AcSymbol] = []
    run = 0
    for coefficient in zigzag_vector[1:]:
        value = int(coefficient)
        if value == 0:
            run += 1
            continue
        while run > 15:
            symbols.append(ZRL)
            run -= 16
        symbols.append(AcSymbol(run, value))
        run = 0
    if run > 0:
        symbols.append(EOB)
    return symbols


def run_length_decode(symbols: list[AcSymbol]) -> np.ndarray:
    """Rebuild the 63 AC coefficients from symbols (EOB-terminated or
    exactly full)."""
    ac = np.zeros(63, dtype=np.int32)
    position = 0
    for symbol in symbols:
        if symbol.is_eob:
            break
        if symbol.is_zrl:
            position += 16
            continue
        position += symbol.run
        if position >= 63:
            raise ValueError("AC run overflows the block")
        ac[position] = symbol.value
        position += 1
    return ac
