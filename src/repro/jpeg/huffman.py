"""Baseline JPEG Huffman coding (ITU-T T.81 Annex K tables).

Provides canonical code construction from (BITS, HUFFVAL) pairs, the
four standard tables, amplitude (category) coding, and bit-level I/O
with the 0xFF byte-stuffing rule used inside entropy-coded segments.
"""

from __future__ import annotations

from dataclasses import dataclass


def magnitude_category(value: int) -> int:
    """JPEG 'SSSS' category: number of bits to represent |value|."""
    return abs(value).bit_length()


def amplitude_bits(value: int) -> tuple[int, int]:
    """(bits, length) for the amplitude of a nonzero/DC-diff value."""
    size = magnitude_category(value)
    if size == 0:
        return 0, 0
    if value > 0:
        return value, size
    return value + (1 << size) - 1, size


def amplitude_decode(bits: int, size: int) -> int:
    """Invert :func:`amplitude_bits`."""
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman table built from BITS/HUFFVAL."""

    name: str
    encode_map: dict[int, tuple[int, int]]  # symbol -> (code, length)
    decode_map: dict[tuple[int, int], int]  # (code, length) -> symbol

    @classmethod
    def from_spec(cls, name: str, bits: list[int], values: list[int]
                  ) -> "HuffmanTable":
        if len(bits) != 16:
            raise ValueError("BITS must list counts for lengths 1..16")
        if sum(bits) != len(values):
            raise ValueError("HUFFVAL length disagrees with BITS")
        encode: dict[int, tuple[int, int]] = {}
        decode: dict[tuple[int, int], int] = {}
        code = 0
        index = 0
        for length in range(1, 17):
            for _ in range(bits[length - 1]):
                symbol = values[index]
                encode[symbol] = (code, length)
                decode[(code, length)] = symbol
                code += 1
                index += 1
            code <<= 1
        return cls(name, encode, decode)

    def encode(self, symbol: int) -> tuple[int, int]:
        try:
            return self.encode_map[symbol]
        except KeyError:
            raise ValueError(
                f"symbol {symbol:#x} not in table {self.name}"
            ) from None


# --- Annex K standard tables ----------------------------------------------

_DC_LUMA_BITS = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
_DC_LUMA_VALS = list(range(12))

_DC_CHROMA_BITS = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
_DC_CHROMA_VALS = list(range(12))

_AC_LUMA_BITS = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
_AC_LUMA_VALS = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3,
    0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9,
    0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4,
    0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
]

_AC_CHROMA_BITS = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77]
_AC_CHROMA_VALS = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41,
    0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0, 0x15, 0x62, 0x72, 0xD1,
    0x0A, 0x16, 0x24, 0x34, 0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44,
    0x45, 0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74,
    0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A,
    0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
    0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7,
    0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF2, 0xF3, 0xF4,
    0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
]

DC_LUMA = HuffmanTable.from_spec("dc_luma", _DC_LUMA_BITS, _DC_LUMA_VALS)
DC_CHROMA = HuffmanTable.from_spec("dc_chroma", _DC_CHROMA_BITS, _DC_CHROMA_VALS)
AC_LUMA = HuffmanTable.from_spec("ac_luma", _AC_LUMA_BITS, _AC_LUMA_VALS)
AC_CHROMA = HuffmanTable.from_spec("ac_chroma", _AC_CHROMA_BITS, _AC_CHROMA_VALS)

#: (BITS, HUFFVAL) specs, needed to emit DHT segments.
TABLE_SPECS = {
    "dc_luma": (_DC_LUMA_BITS, _DC_LUMA_VALS),
    "dc_chroma": (_DC_CHROMA_BITS, _DC_CHROMA_VALS),
    "ac_luma": (_AC_LUMA_BITS, _AC_LUMA_VALS),
    "ac_chroma": (_AC_CHROMA_BITS, _AC_CHROMA_VALS),
}


class BitWriter:
    """MSB-first bit accumulator with JPEG 0xFF byte stuffing."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._count = 0

    def write(self, bits: int, length: int) -> None:
        if length == 0:
            return
        if bits >> length:
            raise ValueError(f"{bits} does not fit in {length} bits")
        self._accumulator = (self._accumulator << length) | bits
        self._count += length
        while self._count >= 8:
            self._count -= 8
            byte = (self._accumulator >> self._count) & 0xFF
            self._bytes.append(byte)
            if byte == 0xFF:
                self._bytes.append(0x00)
        self._accumulator &= (1 << self._count) - 1

    def flush(self) -> bytes:
        """Pad the final partial byte with 1-bits (T.81) and return all."""
        if self._count:
            pad = 8 - self._count
            self.write((1 << pad) - 1, pad)
        return bytes(self._bytes)

    @property
    def bit_count(self) -> int:
        return len(self._bytes) * 8 + self._count


class BitReader:
    """MSB-first bit reader that removes 0xFF 0x00 stuffing."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0
        self._accumulator = 0
        self._count = 0

    def _fill(self) -> None:
        while self._count < 24 and self._position < len(self._data):
            byte = self._data[self._position]
            self._position += 1
            if byte == 0xFF:
                if self._position < len(self._data) \
                        and self._data[self._position] == 0x00:
                    self._position += 1  # drop the stuffed zero
                else:
                    # A marker: signal end of entropy data with 1-fill.
                    self._position = len(self._data)
                    byte = 0xFF
            self._accumulator = (self._accumulator << 8) | byte
            self._count += 8

    def read(self, length: int) -> int:
        if length == 0:
            return 0
        self._fill()
        if self._count < length:
            raise EOFError("bitstream exhausted")
        self._count -= length
        value = (self._accumulator >> self._count) & ((1 << length) - 1)
        self._accumulator &= (1 << self._count) - 1
        return value

    def read_symbol(self, table: HuffmanTable) -> int:
        """Decode one Huffman symbol (max 16-bit codes)."""
        code = 0
        for length in range(1, 17):
            code = (code << 1) | self.read(1)
            symbol = table.decode_map.get((code, length))
            if symbol is not None:
                return symbol
        raise ValueError(f"invalid Huffman code in table {table.name}")
