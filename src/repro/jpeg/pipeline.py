"""Cycle/throughput model of the hardwired JPEG engine.

Section 2 of the paper: "To meet processing speed requirement of 3M
pixels @ 0.1 sec and long battery life, the JPEG codec function has
been implemented in a hardware accelerator."  This module models both
implementations so experiment E2 can regenerate that trade-off:

* :class:`HardwareJpegModel` -- a block-pipelined engine (colour
  conversion, DCT, quantisation, zig-zag, entropy coder as pipeline
  stages, one 8x8 block in flight per stage).  Steady-state throughput
  is one block per max-stage-cycles; the entropy stage can stall on
  symbol-rich blocks.

* :class:`SoftwareJpegModel` -- the same algorithm executed on the
  SoC's hybrid RISC/DSP, using cycles-per-operation budgets typical of
  a late-1990s embedded core with a MAC unit.

Both give encode seconds/frame at a clock frequency; energy per pixel
lets the battery-life argument be made quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareJpegModel:
    """Pipelined hardware JPEG engine."""

    clock_mhz: float = 133.0
    #: Cycles each pipeline stage spends on one 8x8 block.  The DCT
    #: unit processes one sample per cycle (64) plus transpose flush.
    cycles_color: int = 64
    cycles_dct: int = 72
    cycles_quant: int = 64
    #: Entropy stage: one symbol per cycle; typical block ~20 symbols,
    #: worst case 64.  We budget the steady-state bound.
    cycles_entropy_typical: int = 40
    cycles_entropy_worst: int = 64
    #: Pipeline fill latency in blocks.
    pipeline_depth: int = 5
    #: Dynamic power at the reference clock (mW), for energy estimates.
    power_mw: float = 45.0

    @property
    def cycles_per_block(self) -> int:
        """Steady-state cycles per 8x8 block (slowest stage)."""
        return max(
            self.cycles_color,
            self.cycles_dct,
            self.cycles_quant,
            self.cycles_entropy_typical,
        )

    def blocks_for_frame(self, width: int, height: int, *,
                         color: bool = True) -> int:
        """Total 8x8 blocks per frame (4:2:0 colour adds 50%)."""
        luma_blocks = -(-width // 8) * (-(-height // 8))
        if not color:
            return luma_blocks
        return luma_blocks + 2 * (-(-width // 16) * (-(-height // 16)))

    def encode_cycles(self, width: int, height: int, *,
                      color: bool = True) -> int:
        blocks = self.blocks_for_frame(width, height, color=color)
        return (blocks + self.pipeline_depth) * self.cycles_per_block

    def encode_seconds(self, width: int, height: int, *,
                       color: bool = True) -> float:
        """Wall-clock encode time for one frame."""
        return self.encode_cycles(width, height, color=color) / (
            self.clock_mhz * 1e6
        )

    def pixels_per_second(self) -> float:
        """Steady-state luma-pixel throughput."""
        # 4:2:0: 6 blocks cover a 16x16 luma area = 256 pixels.
        pixels_per_block_group = 256
        cycles_per_group = 6 * self.cycles_per_block
        return pixels_per_block_group / cycles_per_group * self.clock_mhz * 1e6

    def energy_per_frame_mj(self, width: int, height: int) -> float:
        """Energy in millijoules to encode one colour frame."""
        return self.power_mw * self.encode_seconds(width, height) / 1e3 * 1e3


@dataclass(frozen=True)
class SoftwareJpegModel:
    """JPEG encode on the hybrid RISC/DSP core."""

    clock_mhz: float = 133.0
    #: Per-pixel cycle budgets for an optimised fixed-point
    #: implementation on a single-MAC DSP (colour conversion, 2x 1-D
    #: DCT passes, quantisation, entropy) -- roughly 60 cycles/pixel
    #: in total, consistent with contemporary application notes.
    cycles_color_per_pixel: float = 6.0
    cycles_dct_per_pixel: float = 30.0
    cycles_quant_per_pixel: float = 8.0
    cycles_entropy_per_pixel: float = 16.0
    #: Core power when crunching at full tilt (mW).
    power_mw: float = 380.0

    @property
    def cycles_per_pixel(self) -> float:
        return (
            self.cycles_color_per_pixel
            + self.cycles_dct_per_pixel
            + self.cycles_quant_per_pixel
            + self.cycles_entropy_per_pixel
        )

    def encode_seconds(self, width: int, height: int, *,
                       color: bool = True) -> float:
        pixels = width * height * (1.5 if color else 1.0)
        return pixels * self.cycles_per_pixel / (self.clock_mhz * 1e6)

    def energy_per_frame_mj(self, width: int, height: int) -> float:
        return self.power_mw * self.encode_seconds(width, height) / 1e3 * 1e3


@dataclass(frozen=True)
class ThroughputRow:
    """One row of the E2 comparison table."""

    label: str
    megapixels: float
    implementation: str
    seconds_per_frame: float
    meets_budget: bool
    energy_mj: float


#: The paper's frame-time requirement: 3 Mpixel in 0.1 s.
FRAME_BUDGET_S = 0.1

#: Sensor grades the SoC targets (Section 2).
SENSOR_GRADES = {
    "2MP": (1600, 1200),
    "3MP": (2048, 1536),
}


def throughput_table(
    *,
    clock_mhz: float = 133.0,
    budget_s: float = FRAME_BUDGET_S,
) -> list[ThroughputRow]:
    """Generate the hardware-vs-software comparison for both sensor
    grades (experiment E2)."""
    hardware = HardwareJpegModel(clock_mhz=clock_mhz)
    software = SoftwareJpegModel(clock_mhz=clock_mhz)
    rows: list[ThroughputRow] = []
    for label, (width, height) in SENSOR_GRADES.items():
        megapixels = width * height / 1e6
        for name, model in (("hardware", hardware), ("software", software)):
            seconds = model.encode_seconds(width, height)
            rows.append(
                ThroughputRow(
                    label=label,
                    megapixels=megapixels,
                    implementation=name,
                    seconds_per_frame=seconds,
                    meets_budget=seconds <= budget_s,
                    energy_mj=model.energy_per_frame_mj(width, height),
                )
            )
    return rows


def format_throughput_table(rows: list[ThroughputRow]) -> str:
    """Render the E2 comparison rows as a fixed-width table."""
    lines = [
        "grade  Mpix  impl       s/frame   budget  energy(mJ)",
        "-----  ----  ---------  --------  ------  ----------",
    ]
    for row in rows:
        lines.append(
            f"{row.label:5s}  {row.megapixels:4.1f}  "
            f"{row.implementation:9s}  {row.seconds_per_frame:8.3f}  "
            f"{'PASS' if row.meets_budget else 'FAIL':6s}  "
            f"{row.energy_mj:10.2f}"
        )
    return "\n".join(lines)
