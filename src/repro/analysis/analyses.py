"""The shipped analyses: constants/dead logic, X-divergence, races.

:class:`ModuleAnalysis` bundles one module's fixpoints (shared by every
query and lint rule so the engine runs once per module per domain):

* ``const``  -- :class:`~repro.analysis.domains.ConstantDomain` under
  binary stimulus with dialect-agnostic power-on values;
* ``dual``   -- :class:`~repro.analysis.domains.DualConstantDomain`
  pairing the two simulator dialects under one stimulus;
* ``xtaint`` -- which power-on X generators (un-reset flops, floating
  nets, spares) reach each net;
* ``launch`` -- which flops reach each net through combinational logic
  only (the race detector's single-cycle launch sets);
* ``domains`` -- which clock domains' state reaches each net;
* ``observable`` -- nets backward-reachable from an output/inout port.

:func:`analyze_modules` fans whole-module analyses across processes via
:func:`repro.perf.fanout`; per-module summaries are pure functions of
the module, so the merged :class:`AnalysisReport` is byte-identical for
any worker count.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Sequence, Tuple
from weakref import WeakKeyDictionary

from ..netlist import Module
from ..netlist.netlist import Instance, Net
from ..perf import fanout, resolve_workers
from ..sim import SimulatorConfig, VENDOR_A_SIM, VENDOR_B_SIM
from ..store import ArtifactStore, get_default_store
from .cones import (
    ANALYSIS_VERSION,
    Cone,
    ConeRunStats,
    partition_cones,
    run_fixpoint_cones,
)
from .domains import (
    BINARY,
    ConstantDomain,
    DIVERGENT,
    DualConstantDomain,
    ONE,
    TaintDomain,
    XBIT,
    ZERO,
    component_a,
    format_mask,
    format_pair_mask,
)
from .engine import FixpointResult


def observable_nets(module: Module) -> FrozenSet[str]:
    """Nets backward-reachable from any output/inout port.

    Reachability crosses sequential cells (a value captured by a flop
    can still be seen later), so a net is *unobservable* only when no
    amount of clocking can ever move its value to a port.
    """
    seen: set[str] = set()
    work: deque[str] = deque()
    for name, port in module.ports.items():
        if port.direction in ("output", "inout"):
            seen.add(name)
            work.append(name)
    while work:
        net: Net = module.nets[work.popleft()]
        if net.driver is None:
            continue
        inst = module.instances[net.driver.instance]
        for pin in inst.cell.input_pins:
            upstream = inst.net_of(pin)
            if upstream not in seen:
                seen.add(upstream)
                work.append(upstream)
    return frozenset(seen)


def _x_source_label(kind: str, name: str) -> str:
    return f"{kind}:{name}"


def _flop_reset_assured(
    module: Module, const: FixpointResult
) -> FrozenSet[str]:
    """Flops whose reset net can actually assert (reach 0).

    A flop with a reset pin tied inactive never leaves its power-on
    value, so it must NOT be treated as reset-disciplined -- that
    would be a false "proven safe".
    """
    assured: set[str] = set()
    for flop in module.sequential_instances:
        reset_pin = flop.cell.reset_pin
        if reset_pin is None:
            continue
        if const.net_values[flop.net_of(reset_pin)] & ZERO:
            assured.add(flop.name)
    return frozenset(assured)


@dataclass
class ModuleAnalysis:
    """Every fixpoint the rule families and reports share."""

    module: Module
    config_a: SimulatorConfig
    config_b: SimulatorConfig
    const: FixpointResult
    dual: FixpointResult
    xtaint: FixpointResult
    launch: FixpointResult
    domains: FixpointResult
    observable: FrozenSet[str]
    reset_assured: FrozenSet[str]


_CACHE: "WeakKeyDictionary[Module, Dict[tuple, ModuleAnalysis]]" = (
    WeakKeyDictionary()
)


def clear_analysis_memo() -> None:
    """Drop the in-process ModuleAnalysis memo (tests, benchmarks)."""
    _CACHE.clear()


def _cone_flops(module: Module, cone: Cone) -> List[str]:
    """Sequential instances owned by one cone, sorted."""
    return [
        name for name in cone.instances
        if module.instances[name].cell.is_sequential
    ]


def analyze_module(
    module: Module,
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
    *,
    cone_stats: ConeRunStats | None = None,
) -> ModuleAnalysis:
    """Run (or fetch cached) fixpoints for one module.

    The in-process memo is keyed on module *content* (its fingerprint)
    plus the dialect pair, so one lint pass shares a single engine run
    per domain across the four rule families -- and an in-place ECO
    edit invalidates the memo instead of serving stale fixpoints.

    Each domain is solved cone by cone through the ambient
    :class:`repro.store.ArtifactStore` (see
    :mod:`repro.analysis.cones`): after an ECO only the cones whose
    content or boundary values changed re-run the fixpoint, and the
    assembled result is byte-identical to a cold run.  Pass
    ``cone_stats`` to observe the per-cone hit/miss behaviour; doing
    so bypasses the memo (the store is still consulted).
    """
    per_module = _CACHE.setdefault(module, {})
    key = (module.fingerprint(), config_a.name, config_b.name)
    cached = per_module.get(key)
    if cached is not None and cone_stats is None:
        return cached

    store = get_default_store()
    partition = partition_cones(module)
    stats = cone_stats

    uninit = _uninit_mask(config_a, config_b)
    const = run_fixpoint_cones(
        module,
        ConstantDomain(config_a, uninit_mask=uninit),
        partition,
        domain_token=lambda cone: ["const", config_a.name, uninit],
        store=store,
        stats=stats,
    )
    reset_assured = _flop_reset_assured(module, const)

    def _assured_in(cone: Cone) -> List[str]:
        return sorted(
            name for name in cone.instances if name in reset_assured
        )

    dual = run_fixpoint_cones(
        module,
        DualConstantDomain(config_a, config_b, reset_assured=reset_assured),
        partition,
        domain_token=lambda cone: [
            "dual", config_a.name, config_b.name, _assured_in(cone)
        ],
        store=store,
        stats=stats,
    )

    def x_flop_seed(inst: Instance) -> FrozenSet[str]:
        if inst.cell.reset_pin is None or inst.name not in reset_assured:
            return frozenset({_x_source_label("flop", inst.name)})
        return frozenset()

    def x_undriven_seed(net: Net) -> FrozenSet[str]:
        return frozenset({_x_source_label("undriven", net.name)})

    xtaint = run_fixpoint_cones(
        module,
        TaintDomain(
            flop_seed=x_flop_seed,
            undriven_seed=x_undriven_seed,
            through_flops=True,
        ),
        partition,
        domain_token=lambda cone: ["xtaint", _assured_in(cone)],
        store=store,
        stats=stats,
    )
    launch = run_fixpoint_cones(
        module,
        TaintDomain(
            flop_seed=lambda inst: frozenset({inst.name}),
            through_flops=False,
        ),
        partition,
        domain_token=lambda cone: ["launch"],
        store=store,
        stats=stats,
    )

    from ..lint.domains import trace_control_source

    trace_memo: Dict[str, str] = {}

    def _trace_domain(inst: Instance) -> str:
        cached_domain = trace_memo.get(inst.name)
        if cached_domain is None:
            clock_pin = inst.cell.clock_pin
            if clock_pin is None:
                cached_domain = "unclocked"
            else:
                cached_domain = trace_control_source(
                    module, inst.net_of(clock_pin)
                ).domain
            trace_memo[inst.name] = cached_domain
        return cached_domain

    def domain_seed(inst: Instance) -> FrozenSet[str]:
        return frozenset({_trace_domain(inst)})

    domains = run_fixpoint_cones(
        module,
        TaintDomain(flop_seed=domain_seed, through_flops=True),
        partition,
        domain_token=lambda cone: [
            "domains",
            [
                [name, _trace_domain(module.instances[name])]
                for name in _cone_flops(module, cone)
            ],
        ],
        store=store,
        stats=stats,
    )

    analysis = ModuleAnalysis(
        module=module,
        config_a=config_a,
        config_b=config_b,
        const=const,
        dual=dual,
        xtaint=xtaint,
        launch=launch,
        domains=domains,
        observable=observable_nets(module),
        reset_assured=reset_assured,
    )
    per_module[key] = analysis
    return analysis


def _uninit_mask(config_a: SimulatorConfig, config_b: SimulatorConfig) -> int:
    """Single-dialect power-on set covering both dialects."""
    mask = 0
    for config in (config_a, config_b):
        value = config.uninitialized_flop
        mask |= {0: ZERO, 1: ONE}.get(
            int(value) if value.is_known else -1, XBIT
        )
    return mask


# -- constant propagation / dead logic --------------------------------------

def stuck_nets(analysis: ModuleAnalysis) -> List[Tuple[str, str]]:
    """Loaded nets provably constant under binary stimulus.

    Tie-cell outputs are exempt (a constant is their job); everything
    else stuck at 0 or 1 is frozen logic.  Returns (net, value) pairs.
    """
    module = analysis.module
    out: List[Tuple[str, str]] = []
    for name in sorted(module.nets):
        net = module.nets[name]
        if net.fanout == 0:
            continue
        driver = net.driver
        if driver is not None:
            cell = module.instances[driver.instance].cell
            if cell.footprint == "TIE" or cell.is_spare:
                continue
        elif net.driver_port is None:
            continue  # floating net: X generator, not a constant
        mask = analysis.const.net_values[name]
        if mask == ZERO:
            out.append((name, "0"))
        elif mask == ONE:
            out.append((name, "1"))
    return out


def never_toggling_flops(analysis: ModuleAnalysis) -> List[Tuple[str, str]]:
    """Flops whose reachable state set misses 0 or 1 (never toggle)."""
    out: List[Tuple[str, str]] = []
    for name in sorted(analysis.const.flop_state):
        mask = analysis.const.flop_state[name]
        if not (mask & ZERO and mask & ONE):
            out.append((name, format_mask(mask)))
    return out


def unobservable_instances(analysis: ModuleAnalysis) -> List[str]:
    """Instances no output port can ever see (transitively dead)."""
    module = analysis.module
    out: List[str] = []
    for name in sorted(module.instances):
        inst = module.instances[name]
        if inst.cell.is_spare:
            continue  # intentionally uncommitted
        nets = [inst.net_of(pin) for pin in inst.cell.output_pins]
        if nets and not any(net in analysis.observable for net in nets):
            out.append(name)
    return out


def constant_cones(analysis: ModuleAnalysis) -> List[Tuple[str, str, str]]:
    """Combinational instances computing a proven constant.

    Returns (instance, output net, value) triples; ties and spares are
    exempt as in :func:`stuck_nets`.
    """
    module = analysis.module
    stuck = dict(stuck_nets(analysis))
    out: List[Tuple[str, str, str]] = []
    for name in sorted(module.instances):
        inst = module.instances[name]
        if inst.cell.is_sequential:
            continue
        for pin in inst.cell.output_pins:
            net = inst.net_of(pin)
            if net in stuck:
                out.append((name, net, stuck[net]))
                break
    return out


# -- X-divergence -----------------------------------------------------------

def divergent_nets(analysis: ModuleAnalysis) -> List[str]:
    """Every net whose dual fixpoint contains an off-diagonal pair --
    the set the cross-validation harness checks against."""
    return sorted(
        name
        for name, mask in analysis.dual.net_values.items()
        if mask & DIVERGENT
    )


def divergent_output_ports(analysis: ModuleAnalysis) -> List[Tuple[str, str]]:
    """Output/inout ports that can print different values under the
    two dialects; (port, example pairs) tuples."""
    module = analysis.module
    out: List[Tuple[str, str]] = []
    for name in sorted(module.ports):
        if module.ports[name].direction == "input":
            continue
        mask = analysis.dual.net_values[name] & DIVERGENT
        if mask:
            out.append((name, format_pair_mask(mask)))
    return out


def mux_select_x_sites(analysis: ModuleAnalysis) -> List[Tuple[str, str]]:
    """MUX2 instances whose select can go X while the data legs are
    not provably equal -- exactly where optimistic and pessimistic
    X policies disagree.  Returns (instance, output net) pairs."""
    module = analysis.module
    out: List[Tuple[str, str]] = []
    for name in sorted(module.instances):
        inst = module.instances[name]
        if inst.cell.footprint != "MUX2":
            continue
        select_mask = component_a(analysis.dual.net_values[inst.net_of("S")])
        if not select_mask & XBIT:
            continue
        leg_a = component_a(analysis.dual.net_values[inst.net_of("A")])
        leg_b = component_a(analysis.dual.net_values[inst.net_of("B")])
        legs_equal = leg_a == leg_b and leg_a in (ZERO, ONE)
        if not legs_equal:
            out.append((name, inst.net_of(inst.cell.output_pins[0])))
    return out


def reconvergent_x_sites(
    analysis: ModuleAnalysis,
) -> List[Tuple[str, str, Tuple[str, ...]]]:
    """Multi-input gates where one X source reconverges on two or more
    pins -- where optimism can manufacture a known value one dialect
    disagrees with.  Returns (instance, output net, shared sources)."""
    module = analysis.module
    out: List[Tuple[str, str, Tuple[str, ...]]] = []
    for name in sorted(module.instances):
        inst = module.instances[name]
        if inst.cell.is_sequential or len(inst.cell.input_pins) < 2:
            continue
        taints = [
            analysis.xtaint.net_values[inst.net_of(pin)]
            for pin in inst.cell.input_pins
        ]
        shared: set[str] = set()
        for i in range(len(taints)):
            for j in range(i + 1, len(taints)):
                shared |= taints[i] & taints[j]
        if shared:
            out.append((
                name,
                inst.net_of(inst.cell.output_pins[0]),
                tuple(sorted(shared)),
            ))
    return out


# -- zero-delay races -------------------------------------------------------

def multi_driver_races(analysis: ModuleAnalysis) -> List[Tuple[str, str]]:
    """Multi-driven nets whose settled value depends on event order.

    The IR's representable contention is an instance output shorted
    onto an input-port net; resolution is order-sensitive unless both
    sources are provably the same constant (a port never is, under
    binary stimulus).  Returns (net, detail) pairs.
    """
    module = analysis.module
    out: List[Tuple[str, str]] = []
    for name in sorted(module.nets):
        net = module.nets[name]
        if net.driver is None or net.driver_port is None:
            continue
        inst = module.instances[net.driver.instance]
        domain = ConstantDomain(analysis.config_a)
        driver_mask = domain.transfer(
            inst,
            tuple(
                analysis.const.net_values[inst.net_of(pin)]
                for pin in inst.cell.input_pins
            ),
        )
        port_mask = BINARY
        if driver_mask == port_mask and driver_mask in (ZERO, ONE):
            continue  # both sources agree on one constant: benign
        out.append((
            name,
            f"port {net.driver_port!r} {format_mask(port_mask)} vs "
            f"{net.driver} {format_mask(driver_mask)}",
        ))
    return out


def clock_path_races(module: Module) -> List[Tuple[str, str, str]]:
    """Flop-to-flop same-root paths whose capture order is event-order
    sensitive: one clock path crosses an ICG the other does not
    (``gated``), or the two paths differ in inverter parity
    (``inverted``).  Returns (src, dst, kind) triples.
    """
    from ..lint.domains import trace_control_source

    analysis = analyze_module(module)
    traces = {}
    for flop in module.sequential_instances:
        clock_pin = flop.cell.clock_pin
        if clock_pin is not None:
            traces[flop.name] = trace_control_source(
                module, flop.net_of(clock_pin)
            )
    out: List[Tuple[str, str, str]] = []
    for dst_name in sorted(traces):
        dst = module.instances[dst_name]
        data_pin = dst.cell.data_pin
        if data_pin is None:
            continue
        dst_trace = traces[dst_name]
        launch = analysis.launch.net_values[dst.net_of(data_pin)]
        for src_name in sorted(launch):
            src_trace = traces.get(src_name)
            if src_trace is None:
                continue
            if (src_trace.root, src_trace.kind) != (
                dst_trace.root, dst_trace.kind
            ):
                continue  # different roots: a CDC problem, not a race
            if src_trace.inverted != dst_trace.inverted:
                out.append((src_name, dst_name, "inverted"))
            elif src_trace.through_gate != dst_trace.through_gate:
                out.append((src_name, dst_name, "gated"))
    return out


# -- module summaries / parallel report -------------------------------------

@dataclass(frozen=True)
class ModuleSummary:
    """Canonical, picklable digest of one module's analyses."""

    module: str
    gates: int
    nets: int
    visits: int
    stuck_nets: Tuple[Tuple[str, str], ...]
    never_toggling: Tuple[Tuple[str, str], ...]
    unobservable: Tuple[str, ...]
    constant_cones: Tuple[Tuple[str, str, str], ...]
    divergent_nets: Tuple[str, ...]
    divergent_outputs: Tuple[Tuple[str, str], ...]
    mux_select_x: Tuple[Tuple[str, str], ...]
    reconvergent_x: Tuple[Tuple[str, str, Tuple[str, ...]], ...]
    multi_driver_races: Tuple[Tuple[str, str], ...]
    clock_races: Tuple[Tuple[str, str, str], ...]

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "gates": self.gates,
            "nets": self.nets,
            "visits": self.visits,
            "stuck_nets": [list(item) for item in self.stuck_nets],
            "never_toggling": [list(item) for item in self.never_toggling],
            "unobservable": list(self.unobservable),
            "constant_cones": [list(item) for item in self.constant_cones],
            "divergent_nets": list(self.divergent_nets),
            "divergent_outputs": [
                list(item) for item in self.divergent_outputs
            ],
            "mux_select_x": [list(item) for item in self.mux_select_x],
            "reconvergent_x": [
                [inst, net, list(sources)]
                for inst, net, sources in self.reconvergent_x
            ],
            "multi_driver_races": [
                list(item) for item in self.multi_driver_races
            ],
            "clock_races": [list(item) for item in self.clock_races],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        """Exact inverse of :meth:`to_dict` (tuple-for-tuple)."""
        return cls(
            module=data["module"],
            gates=data["gates"],
            nets=data["nets"],
            visits=data["visits"],
            stuck_nets=tuple(
                (net, why) for net, why in data["stuck_nets"]
            ),
            never_toggling=tuple(
                (inst, why) for inst, why in data["never_toggling"]
            ),
            unobservable=tuple(data["unobservable"]),
            constant_cones=tuple(
                (inst, net, why) for inst, net, why in data["constant_cones"]
            ),
            divergent_nets=tuple(data["divergent_nets"]),
            divergent_outputs=tuple(
                (port, why) for port, why in data["divergent_outputs"]
            ),
            mux_select_x=tuple(
                (inst, net) for inst, net in data["mux_select_x"]
            ),
            reconvergent_x=tuple(
                (inst, net, tuple(sources))
                for inst, net, sources in data["reconvergent_x"]
            ),
            multi_driver_races=tuple(
                (net, why) for net, why in data["multi_driver_races"]
            ),
            clock_races=tuple(
                (src, dst, why) for src, dst, why in data["clock_races"]
            ),
        )


#: Store domain for whole-module analysis summaries (default configs).
SUMMARY_STORE_DOMAIN = "analysis.summary"
_SUMMARY_CONFIG = [VENDOR_A_SIM.name, VENDOR_B_SIM.name]


def summarize_module(
    module: Module, *, store: ArtifactStore | None = None
) -> ModuleSummary:
    """All analyses over one module as a canonical summary.

    Cached whole in the artifact store under the module fingerprint:
    a warm rerun over an untouched module never reruns a fixpoint or a
    query, it decodes the stored summary (byte-identical ``to_dict``).
    """
    if store is None:
        store = get_default_store()
    fingerprints = (module.fingerprint(),)
    payload = store.get(
        SUMMARY_STORE_DOMAIN, ANALYSIS_VERSION, fingerprints,
        _SUMMARY_CONFIG,
    )
    if payload is not None:
        return ModuleSummary.from_dict(payload)
    summary = _summarize_module_uncached(module)
    store.put(
        SUMMARY_STORE_DOMAIN, ANALYSIS_VERSION, fingerprints,
        summary.to_dict(), _SUMMARY_CONFIG,
    )
    return summary


def _summarize_module_uncached(module: Module) -> ModuleSummary:
    analysis = analyze_module(module)
    total_visits = (
        analysis.const.visits + analysis.dual.visits
        + analysis.xtaint.visits + analysis.launch.visits
        + analysis.domains.visits
    )
    return ModuleSummary(
        module=module.name,
        gates=module.gate_count,
        nets=len(module.nets),
        visits=total_visits,
        stuck_nets=tuple(stuck_nets(analysis)),
        never_toggling=tuple(never_toggling_flops(analysis)),
        unobservable=tuple(unobservable_instances(analysis)),
        constant_cones=tuple(constant_cones(analysis)),
        divergent_nets=tuple(divergent_nets(analysis)),
        divergent_outputs=tuple(divergent_output_ports(analysis)),
        mux_select_x=tuple(mux_select_x_sites(analysis)),
        reconvergent_x=tuple(reconvergent_x_sites(analysis)),
        multi_driver_races=tuple(multi_driver_races(analysis)),
        clock_races=tuple(clock_path_races(module)),
    )


@dataclass
class AnalysisReport:
    """Design-level roll-up; canonical JSON is worker-count invariant."""

    design: str
    summaries: List[ModuleSummary] = field(default_factory=list)

    @property
    def total_findings(self) -> int:
        return sum(
            len(s.stuck_nets) + len(s.never_toggling) + len(s.unobservable)
            + len(s.constant_cones) + len(s.divergent_outputs)
            + len(s.mux_select_x) + len(s.reconvergent_x)
            + len(s.multi_driver_races) + len(s.clock_races)
            for s in self.summaries
        )

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "modules": [
                s.to_dict()
                for s in sorted(self.summaries, key=lambda s: s.module)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)


def _summary_task(module: Module) -> ModuleSummary:
    """Worker: self-contained per-module analysis (picklable)."""
    return summarize_module(module)


def _summaries_task(modules: List[Module]) -> List[ModuleSummary]:
    """Worker: analyse one gate-count-balanced chunk of modules."""
    return [summarize_module(module) for module in modules]


def _balanced_chunks(
    modules: Sequence[Module], n_bins: int
) -> List[List[int]]:
    """LPT bin-packing of module indices by gate count.

    Largest module first onto the least-loaded bin, ties broken by bin
    index, so the packing (and therefore the perf profile) is a pure
    function of the module list.  A single oversized module no longer
    drags a whole round-robin stripe of small ones behind it.
    """
    order = sorted(
        range(len(modules)),
        key=lambda i: (-len(modules[i].instances), i),
    )
    loads = [0] * n_bins
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    for index in order:
        target = min(range(n_bins), key=lambda b: (loads[b], b))
        bins[target].append(index)
        loads[target] += max(1, len(modules[index].instances))
    return [sorted(chunk) for chunk in bins if chunk]


def analyze_modules(
    modules: Sequence[Module],
    *,
    design: str = "design",
    workers: int | None = None,
) -> AnalysisReport:
    """Analyse every module, fanning out across processes.

    Modules are grouped into gate-count-balanced chunks (one per
    worker, LPT packing) before the fan-out, so pickle round-trips are
    paid once per worker instead of once per module and no worker
    idles behind a straggler.  Each summary is a pure function of its
    module and results merge by original module index, so the report
    (and its canonical JSON) is byte-identical for any ``workers``
    value.
    """
    module_list = list(modules)
    if not module_list:
        return AnalysisReport(design=design, summaries=[])
    store = get_default_store()
    by_index: Dict[int, ModuleSummary] = {}
    missing: List[int] = []
    for index, module in enumerate(module_list):
        payload = store.get(
            SUMMARY_STORE_DOMAIN, ANALYSIS_VERSION,
            (module.fingerprint(),), _SUMMARY_CONFIG,
        )
        if payload is not None:
            by_index[index] = ModuleSummary.from_dict(payload)
        else:
            missing.append(index)
    if missing:
        missing_modules = [module_list[i] for i in missing]
        n_bins = min(resolve_workers(workers), len(missing_modules))
        chunks = _balanced_chunks(missing_modules, n_bins)
        chunk_results = fanout(
            _summaries_task,
            [[missing_modules[i] for i in chunk] for chunk in chunks],
            workers=n_bins,
            stage="analysis.modules",
        )
        for chunk, results in zip(chunks, chunk_results):
            for local_index, summary in zip(chunk, results):
                index = missing[local_index]
                by_index[index] = summary
                store.put(
                    SUMMARY_STORE_DOMAIN, ANALYSIS_VERSION,
                    (module_list[index].fingerprint(),),
                    summary.to_dict(), _SUMMARY_CONFIG,
                )
    return AnalysisReport(
        design=design,
        summaries=[by_index[i] for i in range(len(module_list))],
    )
