"""Fanin-cone partitioning and the incremental cone-by-cone fixpoint.

The monolithic engine (:mod:`repro.analysis.engine`) solves a module's
least fixpoint in one worklist.  That answer is unique, so it can also
be assembled *cone by cone*: partition the instances into fanin cones,
solve each cone's local fixpoint with its boundary-net values held
fixed, and iterate over cones until no boundary changes (block-chaotic
iteration over a finite lattice -- same least fixpoint, proven equal
to the monolithic engine in the test suite).

Why bother: each cone's local solution is a **pure function of**
``(cone content, boundary values, domain)``.  That triple is exactly a
content address, so the per-cone transfer results live in
:class:`repro.store.ArtifactStore`.  After an ECO only the cones whose
content fingerprint or boundary values changed re-run the fixpoint;
everything else splices out of the store -- including the per-solve
``visits`` counters, so the incremental result is *byte-identical* to
a cold run, not merely equivalent.

Partition: every sequential instance anchors its own cone and owns it;
every combinational instance belongs to the cone of the smallest
anchor (flop, output port, or -- for dead logic -- itself) reachable
downstream through combinational logic.  Combinational SCCs are
collapsed first so ownership is well defined on loops, and ownership
is a purely local property: an ECO that swaps a cell or rewires a net
only changes the cones whose content or downstream reachability it
actually touched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Sequence, Tuple

from collections import deque

from ..netlist import Module
from ..netlist.netlist import NetlistError
from ..store import ArtifactStore, canonical_json, get_default_store
from .engine import AbstractDomain, FixpointResult, Value

#: Bump to invalidate every cached cone/summary/lint artifact derived
#: from the analysis layer (new domain semantics, new payload schema).
ANALYSIS_VERSION = "1"

#: Store domain under which per-cone transfer results are filed.
CONE_STORE_DOMAIN = "analysis.cone"


@dataclass(frozen=True)
class Cone:
    """One fanin cone: an anchor plus the instances it owns."""

    #: ``f:<flop>``, ``p:<port>`` or ``d:<instance>`` (dead logic).
    anchor: str
    #: Sorted names of the instances solved inside this cone.
    instances: Tuple[str, ...]
    #: Sorted nets driven by a cone instance (this cone publishes them).
    internal_nets: Tuple[str, ...]
    #: Sorted nets read by cone instances but driven elsewhere (or by
    #: ports / nothing); their values are the cone's only free inputs.
    boundary_nets: Tuple[str, ...]
    #: Internal nets that additionally carry an input-port driver (the
    #: representable multi-driver contention): the local solve joins
    #: the port seed onto them.
    port_seeded_nets: Tuple[str, ...]
    #: Structural content digest; cache keys start here.
    content_fingerprint: str


@dataclass
class ConePartition:
    """A module's cones in deterministic (anchor-sorted) order."""

    module: Module
    cones: List[Cone]
    #: net name -> indexes of cones reading it as a boundary net.
    readers: Dict[str, List[int]]
    #: Module-wide topological order of combinational instance names
    #: (name-sorted fallback on a combinational loop), used to seed
    #: each cone's local worklist exactly like the monolithic engine.
    comb_order: Dict[str, int]


def _cone_content_fingerprint(
    module: Module,
    anchor: str,
    instances: Sequence[str],
    internal_nets: Sequence[str],
    boundary_nets: Sequence[str],
    port_seeded_nets: Sequence[str],
) -> str:
    """Structural digest of one cone.

    Covers the owned instances (cell identity + full pin map), the
    internal/boundary net membership, the port-seed flags and the
    library identity -- everything the local solve reads besides the
    boundary *values* (those key the store entry separately).
    """
    body = repr((
        anchor,
        tuple(
            (
                name,
                module.instances[name].cell.name,
                tuple(sorted(module.instances[name].connections.items())),
            )
            for name in instances
        ),
        tuple(internal_nets),
        tuple(boundary_nets),
        tuple(port_seeded_nets),
        module.library.name,
        module.library.process_node_um,
    ))
    return hashlib.sha256(body.encode()).hexdigest()


def _combinational_sccs(
    module: Module, comb_names: List[str]
) -> Tuple[Dict[str, int], List[List[str]]]:
    """Iterative Tarjan over the combinational instance graph.

    Returns (instance -> component id, components).  Component member
    lists are sorted; component ids follow discovery order (only used
    as dict keys, never for ordering).
    """
    adjacency: Dict[str, List[str]] = {name: [] for name in comb_names}
    comb_set = set(comb_names)
    for name in comb_names:
        inst = module.instances[name]
        for pin in inst.cell.output_pins:
            net = module.nets[inst.net_of(pin)]
            for load in net.loads:
                if load.instance in comb_set:
                    adjacency[name].append(load.instance)

    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: set[str] = set()
    stack: List[str] = []
    component_of: Dict[str, int] = {}
    components: List[List[str]] = []
    counter = 0

    for root in comb_names:
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = adjacency[node]
            while edge_index < len(targets):
                target = targets[edge_index]
                edge_index += 1
                if target not in index_of:
                    work[-1] = (node, edge_index)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    low[node] = min(low[node], index_of[target])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                cid = len(components)
                components.append(sorted(component))
                for member in component:
                    component_of[member] = cid
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return component_of, components


def partition_cones(module: Module) -> ConePartition:
    """Partition a module's instances into anchored fanin cones."""
    comb_names = sorted(
        inst.name for inst in module.combinational_instances
    )
    component_of, components = _combinational_sccs(module, comb_names)

    # Direct anchors per component: sequential loads and output ports
    # reached by any member's output net, expressed as orderable
    # ``(kind, name)`` labels ("f" < "p" by design: flop ownership
    # wins so a cone is the logic feeding one state element).
    direct: List[set[Tuple[str, str]]] = [set() for _ in components]
    successors: List[set[int]] = [set() for _ in components]
    for cid, members in enumerate(components):
        for name in members:
            inst = module.instances[name]
            for pin in inst.cell.output_pins:
                net = module.nets[inst.net_of(pin)]
                for port in net.load_ports:
                    if module.ports[port].direction in ("output", "inout"):
                        direct[cid].add(("p", port))
                for load in net.loads:
                    sink = module.instances[load.instance]
                    if sink.cell.is_sequential:
                        direct[cid].add(("f", load.instance))
                    else:
                        target = component_of[load.instance]
                        if target != cid:
                            successors[cid].add(target)

    # Reverse-topological min-anchor propagation over the component
    # DAG (iterative DFS; the condensation is acyclic by construction).
    anchor_of: Dict[int, Tuple[str, str]] = {}

    def resolve(start: int) -> Tuple[str, str]:
        work: List[int] = [start]
        while work:
            cid = work[-1]
            if cid in anchor_of:
                work.pop()
                continue
            missing = [s for s in successors[cid] if s not in anchor_of]
            if missing:
                work.extend(missing)
                continue
            candidates = set(direct[cid])
            candidates.update(anchor_of[s] for s in successors[cid])
            if not candidates:
                candidates = {("d", components[cid][0])}
            anchor_of[cid] = min(candidates)
            work.pop()
        return anchor_of[start]

    ownership: Dict[Tuple[str, str], List[str]] = {}
    for cid, members in enumerate(components):
        ownership.setdefault(resolve(cid), []).extend(members)
    for flop in module.sequential_instances:
        ownership.setdefault(("f", flop.name), []).append(flop.name)

    try:
        ordered = module.topological_combinational_order()
        comb_order = {inst.name: i for i, inst in enumerate(ordered)}
    except NetlistError:
        comb_order = {name: i for i, name in enumerate(comb_names)}

    cones: List[Cone] = []
    for kind, name in sorted(ownership):
        members = sorted(ownership[(kind, name)])
        member_set = set(members)
        internal: set[str] = set()
        reads: set[str] = set()
        for member in members:
            inst = module.instances[member]
            for pin in inst.cell.output_pins:
                internal.add(inst.net_of(pin))
            for pin in inst.cell.input_pins:
                reads.add(inst.net_of(pin))
        boundary = sorted(reads - internal)
        port_seeded = sorted(
            net for net in internal
            if module.nets[net].driver_port is not None
        )
        # Sanity: internal nets are driven by cone members only.
        assert all(
            module.nets[net].driver is not None
            and module.nets[net].driver.instance in member_set
            for net in internal
        )
        anchor = f"{kind}:{name}"
        internal_nets = tuple(sorted(internal))
        boundary_nets = tuple(boundary)
        port_seeded_nets = tuple(port_seeded)
        cones.append(Cone(
            anchor=anchor,
            instances=tuple(members),
            internal_nets=internal_nets,
            boundary_nets=boundary_nets,
            port_seeded_nets=port_seeded_nets,
            content_fingerprint=_cone_content_fingerprint(
                module, anchor, members, internal_nets, boundary_nets,
                port_seeded_nets,
            ),
        ))

    readers: Dict[str, List[int]] = {}
    for index, cone in enumerate(cones):
        for net in cone.boundary_nets:
            readers.setdefault(net, []).append(index)
    return ConePartition(
        module=module, cones=cones, readers=readers, comb_order=comb_order
    )


# -- value codecs ----------------------------------------------------------

def encode_value(value: Value) -> Any:
    """Domain value -> canonical-JSON value (masks stay ints, taint
    sets become sorted lists)."""
    if isinstance(value, int):
        return value
    return sorted(value)


def decode_value(value: Any) -> Value:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, int):
        return value
    return frozenset(value)


# -- local solve -----------------------------------------------------------

def _solve_cone(
    module: Module,
    domain: AbstractDomain,
    cone: Cone,
    partition: ConePartition,
    boundary_values: Dict[str, Value],
) -> Tuple[Dict[str, Value], Dict[str, Value], int]:
    """Least fixpoint of one cone with its boundary held fixed.

    Mirrors the monolithic engine exactly -- same seeds, same
    worklist discipline, same visit accounting -- restricted to the
    cone's instances.  Returns (internal net values, flop states,
    visits).
    """
    bottom = domain.bottom
    values: Dict[str, Value] = dict(boundary_values)
    for net in cone.internal_nets:
        values[net] = bottom
    state: Dict[str, Value] = {}

    consumers: Dict[str, List[str]] = {}
    for name in cone.instances:
        inst = module.instances[name]
        for pin in inst.cell.input_pins:
            consumers.setdefault(inst.net_of(pin), []).append(name)

    work: Deque[str] = deque()
    in_work: set[str] = set()

    def push(name: str) -> None:
        if name not in in_work:
            in_work.add(name)
            work.append(name)

    def raise_net(name: str, value: Value) -> None:
        joined = values[name] | value
        if joined != values[name]:
            values[name] = joined
            for consumer in consumers.get(name, ()):
                push(consumer)

    for net in cone.port_seeded_nets:
        raise_net(net, domain.input_value(net))

    flops = sorted(
        name for name in cone.instances
        if module.instances[name].cell.is_sequential
    )
    for name in flops:
        state[name] = state.get(name, bottom) | \
            domain.flop_initial(module.instances[name])
        for pin in module.instances[name].cell.output_pins:
            raise_net(module.instances[name].net_of(pin), state[name])

    comb_order = partition.comb_order
    for name in sorted(
        (n for n in cone.instances if n not in state),
        key=lambda n: comb_order.get(n, 0),
    ):
        push(name)
    for name in flops:
        push(name)

    visits = 0
    while work:
        name = work.popleft()
        in_work.discard(name)
        visits += 1
        inst = module.instances[name]
        cell = inst.cell
        if cell.is_sequential:
            pins = {
                pin: values[inst.net_of(pin)] for pin in cell.input_pins
            }
            nxt = domain.flop_next(inst, pins, state[name])
            joined = state[name] | nxt
            if joined != state[name]:
                state[name] = joined
                for pin in cell.output_pins:
                    raise_net(inst.net_of(pin), joined)
                push(name)
        else:
            inputs = tuple(
                values[inst.net_of(pin)] for pin in cell.input_pins
            )
            result = domain.transfer(inst, inputs)
            for pin in cell.output_pins:
                raise_net(inst.net_of(pin), result)

    return (
        {net: values[net] for net in cone.internal_nets},
        state,
        visits,
    )


# -- the incremental runner ------------------------------------------------

@dataclass
class ConeRunStats:
    """Per-run cache observability (what the mutation tests assert)."""

    hits: int = 0
    misses: int = 0
    #: anchors of the cones whose local fixpoint actually re-ran.
    missed_anchors: List[str] = field(default_factory=list)


def run_fixpoint_cones(
    module: Module,
    domain: AbstractDomain,
    partition: ConePartition,
    *,
    domain_token: Callable[[Cone], Any],
    store: ArtifactStore | None = None,
    stats: ConeRunStats | None = None,
) -> FixpointResult:
    """Assemble one domain's module fixpoint cone by cone.

    ``domain_token(cone)`` must return a canonical-JSON-able digest of
    everything that parameterises the domain's behaviour *on that
    cone* beyond its structure -- dialect names, reset-assured flops,
    clock-trace seeds -- so a cached entry can never be replayed under
    different semantics.

    Each cone's local solve is fetched from (or computed into) the
    store keyed by ``(content fingerprint, boundary values, token)``.
    The outer loop re-queues reader cones whenever a published net
    value grows; on the finite lattices in use this block-chaotic
    iteration converges to the module's unique least fixpoint.
    """
    if store is None:
        store = get_default_store()
    domain_bottom = domain.bottom
    values: Dict[str, Value] = {
        name: domain_bottom for name in module.nets
    }
    state: Dict[str, Value] = {}
    # Source-net seeds: input/inout port nets with no instance driver,
    # and floating-but-loaded nets (port-driven *and* instance-driven
    # nets are seeded inside their owning cone instead).
    for name, net in module.nets.items():
        if net.driver is not None:
            continue
        if net.driver_port is not None:
            values[name] = values[name] | domain.input_value(name)
        elif net.fanout > 0:
            values[name] = values[name] | domain.undriven_value(net)

    pending: Deque[int] = deque(range(len(partition.cones)))
    in_pending = set(pending)
    visits = 0
    while pending:
        index = pending.popleft()
        in_pending.discard(index)
        cone = partition.cones[index]
        boundary = [
            encode_value(values[net]) for net in cone.boundary_nets
        ]
        token = domain_token(cone)
        fingerprints = (cone.content_fingerprint,)
        config = [token, boundary]
        payload = store.get(
            CONE_STORE_DOMAIN, ANALYSIS_VERSION, fingerprints, config
        )
        if payload is None:
            boundary_values = {
                net: values[net] for net in cone.boundary_nets
            }
            nets, flop_state, cone_visits = _solve_cone(
                module, domain, cone, partition, boundary_values
            )
            payload = {
                "nets": {
                    net: encode_value(value)
                    for net, value in nets.items()
                },
                "flops": {
                    name: encode_value(value)
                    for name, value in flop_state.items()
                },
                "visits": cone_visits,
            }
            store.put(
                CONE_STORE_DOMAIN, ANALYSIS_VERSION, fingerprints,
                payload, config,
            )
            if stats is not None:
                stats.misses += 1
                stats.missed_anchors.append(cone.anchor)
        elif stats is not None:
            stats.hits += 1
        visits += int(payload["visits"])
        for name, encoded in payload["flops"].items():
            state[name] = decode_value(encoded)
        for name, encoded in payload["nets"].items():
            decoded = decode_value(encoded)
            if decoded != values[name]:
                values[name] = decoded
                for reader in partition.readers.get(name, ()):
                    if reader != index and reader not in in_pending:
                        in_pending.add(reader)
                        pending.append(reader)
    return FixpointResult(
        net_values=values, flop_state=state, visits=visits
    )


def cone_partition_fingerprint(partition: ConePartition) -> str:
    """Digest of a whole partition (all cone content fingerprints)."""
    body = canonical_json(
        [cone.content_fingerprint for cone in partition.cones]
    )
    return hashlib.sha256(body.encode()).hexdigest()
