"""Worklist fixpoint engine over the flat netlist IR.

The engine computes, for one module and one abstract domain, the least
fixpoint of the domain's transfer functions: a value per net and a
state value per sequential instance.  Domains plug in through a small
protocol (see :mod:`repro.analysis.domains`):

* ``bottom`` -- the least element; values join with ``|``;
* ``input_value(port)`` / ``undriven_value(net)`` -- boundary seeds;
* ``transfer(inst, input_values)`` -- combinational cells (tie cells
  and spares are the zero-input case);
* ``flop_initial(inst)`` / ``flop_next(inst, pins, current)`` -- the
  sequential cells, mirroring the simulator's sample-then-update edge
  semantics (scan-enable mux, asynchronous reset).

Values only ever grow (monotone joins on finite lattices), and an
instance re-enters the worklist only when one of its input nets
changed, so the engine terminates and the result is the unique least
fixpoint -- independent of visit order.  That order-independence is
what makes module-level fan-out byte-identical for any worker count.

The initial worklist is seeded in topological combinational order
(falling back to name order when the module has a combinational loop)
followed by the flops sorted by name: topological seeding means most
gates are visited exactly once before their value is final.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, Tuple

from ..netlist import Module
from ..netlist.netlist import Instance, Net, NetlistError

Value = Any


class AbstractDomain(Protocol):
    """Structural protocol every abstract domain satisfies."""

    bottom: Value

    def input_value(self, port: str) -> Value: ...

    def undriven_value(self, net: Net) -> Value: ...

    def transfer(self, inst: Instance, inputs: Tuple[Value, ...]) -> Value: ...

    def flop_initial(self, inst: Instance) -> Value: ...

    def flop_next(
        self, inst: Instance, pins: Dict[str, Value], current: Value
    ) -> Value: ...


@dataclass
class FixpointResult:
    """Least fixpoint of one domain over one module."""

    net_values: Dict[str, Value] = field(default_factory=dict)
    flop_state: Dict[str, Value] = field(default_factory=dict)
    #: Instance evaluations performed; a cheap effort metric for the
    #: benchmark (topological seeding keeps it close to one visit per
    #: instance on loop-free logic).
    visits: int = 0


class FixpointEngine:
    """Runs one abstract domain to fixpoint over one module."""

    def __init__(self, module: Module, domain: AbstractDomain) -> None:
        self.module = module
        self.domain = domain

    def run(self) -> FixpointResult:
        module, domain = self.module, self.domain
        bottom = domain.bottom
        values: Dict[str, Value] = {name: bottom for name in module.nets}
        state: Dict[str, Value] = {}

        consumers: Dict[str, list[str]] = {}
        for inst in module.instances.values():
            for pin in inst.cell.input_pins:
                consumers.setdefault(inst.net_of(pin), []).append(inst.name)

        work: deque[str] = deque()
        in_work: set[str] = set()

        def push(name: str) -> None:
            if name not in in_work:
                in_work.add(name)
                work.append(name)

        def raise_net(name: str, value: Value) -> None:
            joined = values[name] | value
            if joined != values[name]:
                values[name] = joined
                for consumer in consumers.get(name, ()):
                    push(consumer)

        # Boundary seeds: driven ports, then floating-but-loaded nets.
        for name, port in module.ports.items():
            if port.direction in ("input", "inout"):
                raise_net(name, domain.input_value(name))
        for net in module.nets.values():
            if not net.is_driven and net.fanout > 0:
                raise_net(net.name, domain.undriven_value(net))

        # Sequential state seeds: power-on values drive the Q nets.
        flops = sorted(module.sequential_instances, key=lambda i: i.name)
        for flop in flops:
            state[flop.name] = state.get(flop.name, bottom) | \
                domain.flop_initial(flop)
            for pin in flop.cell.output_pins:
                raise_net(flop.net_of(pin), state[flop.name])

        # Initial schedule: combinational logic in topological order
        # (every instance once, even those a seed did not reach -- tie
        # cells and spares have no inputs to wake them), then flops.
        try:
            ordered = module.topological_combinational_order()
        except NetlistError:
            ordered = sorted(
                module.combinational_instances, key=lambda i: i.name
            )
        for inst in ordered:
            push(inst.name)
        for flop in flops:
            push(flop.name)

        visits = 0
        while work:
            name = work.popleft()
            in_work.discard(name)
            visits += 1
            inst = module.instances[name]
            cell = inst.cell
            if cell.is_sequential:
                pins = {
                    pin: values[inst.net_of(pin)] for pin in cell.input_pins
                }
                nxt = domain.flop_next(inst, pins, state[name])
                joined = state[name] | nxt
                if joined != state[name]:
                    state[name] = joined
                    for pin in cell.output_pins:
                        raise_net(inst.net_of(pin), joined)
                    # State feeds back into next-state (e.g. a latch
                    # holding): revisit until stable.
                    push(name)
            else:
                inputs = tuple(
                    values[inst.net_of(pin)] for pin in cell.input_pins
                )
                result = domain.transfer(inst, inputs)
                for pin in cell.output_pins:
                    raise_net(inst.net_of(pin), result)

        return FixpointResult(
            net_values=values, flop_state=state, visits=visits
        )


def run_fixpoint(module: Module, domain: AbstractDomain) -> FixpointResult:
    """Convenience wrapper: one engine run."""
    return FixpointEngine(module, domain).run()
