"""Abstract-interpretation dataflow analysis over the netlist IR.

A worklist fixpoint engine (:mod:`repro.analysis.engine`) with
pluggable abstract domains (:mod:`repro.analysis.domains`) powers three
semantic analyses (:mod:`repro.analysis.analyses`): constant
propagation with dead-logic detection, static prediction of where the
two simulator dialects of :mod:`repro.sim` diverge, and a zero-delay
race detector.  The results surface as the ``CONST-00x`` / ``DEAD-00x``
/ ``DIV-00x`` / ``RACE-00x`` lint families (:mod:`repro.lint.analysis`)
and are cross-validated against real dual-dialect simulation by
:mod:`repro.verification.crossval`.
"""

from .domains import (
    BINARY,
    BOT,
    ConstantDomain,
    DIVERGENT,
    DualConstantDomain,
    ONE,
    PAIR_TOP,
    TOP,
    TaintDomain,
    XBIT,
    ZERO,
    component_a,
    component_b,
    diagonal,
    format_mask,
    format_pair_mask,
    level_bit,
    mask_levels,
    mask_pairs,
    pair_bit,
)
from .engine import FixpointEngine, FixpointResult, run_fixpoint
from .analyses import (
    AnalysisReport,
    ModuleAnalysis,
    ModuleSummary,
    analyze_module,
    analyze_modules,
    clock_path_races,
    constant_cones,
    divergent_nets,
    divergent_output_ports,
    multi_driver_races,
    mux_select_x_sites,
    never_toggling_flops,
    observable_nets,
    reconvergent_x_sites,
    stuck_nets,
    summarize_module,
    unobservable_instances,
)

__all__ = [
    "BINARY",
    "BOT",
    "ConstantDomain",
    "DIVERGENT",
    "DualConstantDomain",
    "ONE",
    "PAIR_TOP",
    "TOP",
    "TaintDomain",
    "XBIT",
    "ZERO",
    "component_a",
    "component_b",
    "diagonal",
    "format_mask",
    "format_pair_mask",
    "level_bit",
    "mask_levels",
    "mask_pairs",
    "pair_bit",
    "FixpointEngine",
    "FixpointResult",
    "run_fixpoint",
    "AnalysisReport",
    "ModuleAnalysis",
    "ModuleSummary",
    "analyze_module",
    "analyze_modules",
    "clock_path_races",
    "constant_cones",
    "divergent_nets",
    "divergent_output_ports",
    "multi_driver_races",
    "mux_select_x_sites",
    "never_toggling_flops",
    "observable_nets",
    "reconvergent_x_sites",
    "stuck_nets",
    "summarize_module",
    "unobservable_instances",
]
