"""Abstract domains for the netlist dataflow engine.

Every domain assigns each net an element of a finite join-semilattice;
the engine (:mod:`repro.analysis.engine`) computes the least fixpoint
of the transfer functions.  Three domain families are provided:

* :class:`ConstantDomain` -- the value of a net is a *set* of possible
  four-value logic levels, encoded as a 3-bit mask over ``{0, 1, X}``
  (``Z`` folds into ``X``, exactly as gate inputs do).  The classic
  flat constant lattice ``0 / 1 / X / top`` embeds into this powerset:
  ``{0}`` and ``{1}`` are the constants, ``{X}`` is "unknown", and any
  larger set is top-like.  Keeping the full set preserves precision
  through joins (``{0} | {1}`` stays distinguishable from ``{X}``).

* :class:`DualConstantDomain` -- the value of a net is a set of
  *pairs* ``(value under dialect A, value under dialect B)``, encoded
  as a 9-bit mask.  Both components are driven by the *same* stimulus;
  they can differ only where the dialects' semantics differ (today:
  the power-on value of an un-reset flop, and ``x_pessimism``).  A net
  whose reachable set contains an off-diagonal pair is a *divergence
  candidate*: the two simulators can print different values for it.

* :class:`TaintDomain` -- the value of a net is a frozen set of source
  labels, unioned through every gate.  Specialised three ways by its
  seeds: X-source taint (which power-on X generators reach a net),
  single-cycle flop-launch taint (which flops reach a net through
  combinational logic only -- the race detector's launch sets) and
  clock-domain reachability (which clock domains' state reaches a
  net).

All transfer functions enumerate concrete input combinations through
:func:`repro.sim.evaluate_cell` -- the same code the simulator runs --
so the abstraction is correct by construction with respect to the
simulator, not a hand-written re-statement of gate semantics.

Modelling assumptions (shared with the cross-validation harness in
:mod:`repro.verification.crossval`):

* **binary stimulus** -- input and inout ports are driven to 0/1 by
  the testbench, never X/Z, and identically under both dialects;
* **reset discipline** -- a flop whose reset net *can* assert is reset
  before observation starts, so its dialect pair starts at ``(0, 0)``.
  A flop with no reset pin, or whose reset is tied off, powers up at
  ``(uninit_A, uninit_B)`` -- the paper's Section-3 divergence source.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, FrozenSet, Mapping, Tuple

from ..netlist import Logic
from ..netlist.netlist import Instance, Net
from ..sim import SimulatorConfig, VENDOR_A_SIM, VENDOR_B_SIM, evaluate_cell

# -- value encodings --------------------------------------------------------

#: Concrete levels a settled net can hold, in mask-bit order (Z folds
#: into X on every gate input, so three levels suffice).
LEVELS: Tuple[Logic, Logic, Logic] = (Logic.ZERO, Logic.ONE, Logic.X)

_LEVEL_INDEX: dict[Logic, int] = {
    Logic.ZERO: 0, Logic.ONE: 1, Logic.X: 2, Logic.Z: 2,
}

#: Single-dialect masks.
BOT: int = 0
ZERO: int = 1 << 0
ONE: int = 1 << 1
XBIT: int = 1 << 2
TOP: int = ZERO | ONE | XBIT
BINARY: int = ZERO | ONE

#: Dual-dialect pair masks (bit ``a * 3 + b`` is the pair ``(a, b)``).
PAIR_TOP: int = (1 << 9) - 1
#: Off-diagonal pairs: dialect A and dialect B disagree.
DIVERGENT: int = sum(
    1 << (a * 3 + b) for a in range(3) for b in range(3) if a != b
)


def level_bit(value: Logic) -> int:
    """Mask bit for one concrete logic level."""
    return 1 << _LEVEL_INDEX[value]


def pair_bit(a: Logic, b: Logic) -> int:
    """Mask bit for one (dialect A, dialect B) value pair."""
    return 1 << (_LEVEL_INDEX[a] * 3 + _LEVEL_INDEX[b])


def mask_levels(mask: int) -> Tuple[Logic, ...]:
    """Concrete levels present in a single-dialect mask, in bit order."""
    return tuple(LEVELS[i] for i in range(3) if mask & (1 << i))


def mask_pairs(mask: int) -> Tuple[Tuple[Logic, Logic], ...]:
    """Concrete (A, B) pairs present in a pair mask, in bit order."""
    return tuple(
        (LEVELS[i // 3], LEVELS[i % 3]) for i in range(9) if mask & (1 << i)
    )


def component_a(mask: int) -> int:
    """Project a pair mask onto the dialect-A levels."""
    out = 0
    for i in range(9):
        if mask & (1 << i):
            out |= 1 << (i // 3)
    return out


def component_b(mask: int) -> int:
    """Project a pair mask onto the dialect-B levels."""
    out = 0
    for i in range(9):
        if mask & (1 << i):
            out |= 1 << (i % 3)
    return out


def diagonal(mask: int) -> int:
    """Lift a single-dialect mask onto identical (v, v) pairs."""
    out = 0
    for i in range(3):
        if mask & (1 << i):
            out |= 1 << (i * 3 + i)
    return out


def format_mask(mask: int) -> str:
    """Human-readable single-dialect mask, e.g. ``{0,x}``."""
    return "{" + ",".join(str(v) for v in mask_levels(mask)) + "}"


def format_pair_mask(mask: int) -> str:
    """Human-readable pair mask, e.g. ``{(x,0),(1,1)}``."""
    return "{" + ",".join(
        f"({a},{b})" for a, b in mask_pairs(mask)
    ) + "}"


# -- domains ----------------------------------------------------------------

class ConstantDomain:
    """Powerset-of-levels constant propagation for one dialect policy.

    ``uninit_mask`` is the power-on value set of an un-reset flop
    (default: both dialects' power-on levels, so derived facts hold
    under either simulator).
    """

    bottom: int = BOT

    def __init__(
        self,
        config: SimulatorConfig | None = None,
        *,
        uninit_mask: int = XBIT | ZERO,
        port_mask: int = BINARY,
    ) -> None:
        self.config = config or SimulatorConfig()
        self.uninit_mask = uninit_mask
        self.port_mask = port_mask
        self._transfer_memo: dict[tuple, int] = {}

    def input_value(self, port: str) -> int:
        return self.port_mask

    def undriven_value(self, net: Net) -> int:
        return XBIT

    def transfer(self, inst: Instance, input_masks: Tuple[int, ...]) -> int:
        key = (inst.cell.name, input_masks)
        cached = self._transfer_memo.get(key)
        if cached is not None:
            return cached
        cell = inst.cell
        pins = cell.input_pins
        out = BOT
        for combo in product(*(mask_levels(m) for m in input_masks)):
            result = evaluate_cell(cell, dict(zip(pins, combo)), self.config)
            out |= level_bit(result)
        self._transfer_memo[key] = out
        return out

    def flop_initial(self, inst: Instance) -> int:
        return self.uninit_mask

    def flop_next(
        self, inst: Instance, pins: Mapping[str, int], current: int
    ) -> int:
        cell = inst.cell
        if cell.is_latch:
            # Transparent or holding: D now, or held state (the engine
            # joins ``current`` in, so returning D covers both).
            return pins.get(cell.data_pin or "", TOP)
        data = BOT
        se_mask = (
            pins[cell.scan_enable_pin] if cell.scan_enable_pin else ZERO
        )
        for se in mask_levels(se_mask):
            if se is Logic.ONE:
                data |= pins.get(cell.scan_in_pin or "", BOT)
            elif se is Logic.ZERO:
                data |= pins.get(cell.data_pin or "", BOT)
            else:
                data |= XBIT
        if cell.reset_pin is None:
            return data
        out = BOT
        for reset in mask_levels(pins[cell.reset_pin]):
            if reset is Logic.ZERO:
                out |= ZERO
            elif reset is Logic.X:
                out |= XBIT
            else:
                out |= data
        return out


class DualConstantDomain:
    """Reachable (dialect A, dialect B) value pairs under one stimulus.

    ``reset_assured`` names the flops whose reset net can assert; by
    the reset-discipline assumption those start at ``(0, 0)``.  Every
    other flop starts at the dialects' respective power-on values --
    the only place an off-diagonal pair can enter the system.
    """

    bottom: int = BOT

    def __init__(
        self,
        config_a: SimulatorConfig = VENDOR_A_SIM,
        config_b: SimulatorConfig = VENDOR_B_SIM,
        *,
        reset_assured: FrozenSet[str] = frozenset(),
    ) -> None:
        self.config_a = config_a
        self.config_b = config_b
        self.reset_assured = reset_assured
        self._transfer_memo: dict[tuple, int] = {}
        self._next_memo: dict[tuple, int] = {}

    def input_value(self, port: str) -> int:
        # Binary stimulus, identical under both dialects.
        return pair_bit(Logic.ZERO, Logic.ZERO) | pair_bit(Logic.ONE, Logic.ONE)

    def undriven_value(self, net: Net) -> int:
        # Both dialects read a floating net as X: identical, benign.
        return pair_bit(Logic.X, Logic.X)

    def transfer(self, inst: Instance, input_masks: Tuple[int, ...]) -> int:
        key = (inst.cell.name, input_masks)
        cached = self._transfer_memo.get(key)
        if cached is not None:
            return cached
        cell = inst.cell
        pins = cell.input_pins
        out = BOT
        for combo in product(*(mask_pairs(m) for m in input_masks)):
            result_a = evaluate_cell(
                cell, {p: v[0] for p, v in zip(pins, combo)}, self.config_a
            )
            result_b = evaluate_cell(
                cell, {p: v[1] for p, v in zip(pins, combo)}, self.config_b
            )
            out |= pair_bit(result_a, result_b)
        self._transfer_memo[key] = out
        return out

    def flop_initial(self, inst: Instance) -> int:
        if inst.name in self.reset_assured:
            return pair_bit(Logic.ZERO, Logic.ZERO)
        return pair_bit(
            self.config_a.uninitialized_flop, self.config_b.uninitialized_flop
        )

    def _captured_data(
        self, se_mask: int, d_mask: int, si_mask: int
    ) -> int:
        """Pairs capturable through the scan-enable mux."""
        data = BOT
        x_pair = pair_bit(Logic.X, Logic.X)
        for se_a, se_b in mask_pairs(se_mask):
            if se_a is se_b:
                if se_a is Logic.ONE:
                    data |= si_mask
                elif se_a is Logic.ZERO:
                    data |= d_mask
                else:
                    data |= x_pair
            else:
                # The dialects select different sources: correlation is
                # lost, so take the component-wise cross product.
                src = {Logic.ZERO: d_mask, Logic.ONE: si_mask}
                comp_a = (component_a(src[se_a]) if se_a in src else XBIT)
                comp_b = (component_b(src[se_b]) if se_b in src else XBIT)
                for va in mask_levels(comp_a):
                    for vb in mask_levels(comp_b):
                        data |= pair_bit(va, vb)
        return data

    def flop_next(
        self, inst: Instance, pins: Mapping[str, int], current: int
    ) -> int:
        cell = inst.cell
        if cell.is_latch:
            return pins.get(cell.data_pin or "", PAIR_TOP)
        d_mask = pins.get(cell.data_pin or "", BOT)
        si_mask = pins.get(cell.scan_in_pin or "", BOT)
        se_mask = (
            pins[cell.scan_enable_pin]
            if cell.scan_enable_pin
            else pair_bit(Logic.ZERO, Logic.ZERO)
        )
        rn_mask = pins[cell.reset_pin] if cell.reset_pin else -1
        key = (cell.name, se_mask, d_mask, si_mask, rn_mask)
        cached = self._next_memo.get(key)
        if cached is not None:
            return cached
        data = self._captured_data(se_mask, d_mask, si_mask)
        if cell.reset_pin is None:
            self._next_memo[key] = data
            return data
        out = BOT
        for rn_a, rn_b in mask_pairs(pins[cell.reset_pin]):
            for da, db in mask_pairs(data):
                na = Logic.ZERO if rn_a is Logic.ZERO else (
                    Logic.X if rn_a is Logic.X else da)
                nb = Logic.ZERO if rn_b is Logic.ZERO else (
                    Logic.X if rn_b is Logic.X else db)
                out |= pair_bit(na, nb)
        self._next_memo[key] = out
        return out


Taint = FrozenSet[str]

_EMPTY: Taint = frozenset()


class TaintDomain:
    """Set-union source tracking; seeds make it X-taint, launch sets
    or clock-domain reachability."""

    bottom: Taint = _EMPTY

    def __init__(
        self,
        *,
        flop_seed: Callable[[Instance], Taint] = lambda inst: _EMPTY,
        undriven_seed: Callable[[Net], Taint] = lambda net: _EMPTY,
        port_seed: Callable[[str], Taint] = lambda port: _EMPTY,
        through_flops: bool = False,
    ) -> None:
        self.flop_seed = flop_seed
        self.undriven_seed = undriven_seed
        self.port_seed = port_seed
        self.through_flops = through_flops

    def input_value(self, port: str) -> Taint:
        return self.port_seed(port)

    def undriven_value(self, net: Net) -> Taint:
        return self.undriven_seed(net)

    def transfer(self, inst: Instance, input_masks: Tuple[Taint, ...]) -> Taint:
        out: Taint = _EMPTY
        for taint in input_masks:
            out |= taint
        return out

    def flop_initial(self, inst: Instance) -> Taint:
        return self.flop_seed(inst)

    def flop_next(
        self, inst: Instance, pins: Mapping[str, Taint], current: Taint
    ) -> Taint:
        if not self.through_flops:
            return _EMPTY
        cell = inst.cell
        out: Taint = _EMPTY
        for pin in (cell.data_pin, cell.scan_in_pin, cell.scan_enable_pin,
                    cell.reset_pin):
            if pin is not None:
                out |= pins.get(pin, _EMPTY)
        return out
