"""Low-power optimisation: clock gating, multi-Vt swap, isolation.

The Section-4 checklist: "low power solution (multi Vt/VDD cell
library, gated clock, power down isolation)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist import Module
from ..netlist.netlist import Instance
from ..sta import TimingAnalyzer, TimingConstraints
from .power import estimate_power


# ---------------------------------------------------------------------------
# Clock gating
# ---------------------------------------------------------------------------

@dataclass
class ClockGatingReport:
    """Result of ICG insertion."""

    icgs_inserted: int
    flops_gated: int
    flops_total: int
    clock_power_before_mw: float
    clock_power_after_mw: float

    @property
    def gated_fraction(self) -> float:
        if self.flops_total == 0:
            return 0.0
        return self.flops_gated / self.flops_total

    @property
    def clock_power_saving(self) -> float:
        if self.clock_power_before_mw == 0:
            return 0.0
        return 1.0 - self.clock_power_after_mw / self.clock_power_before_mw

    def format_report(self) -> str:
        return "\n".join(
            [
                "Clock gating",
                f"  ICGs inserted : {self.icgs_inserted}",
                f"  flops gated   : {self.flops_gated}/{self.flops_total}"
                f" ({self.gated_fraction * 100:.0f}%)",
                f"  clock power   : {self.clock_power_before_mw:.3f} ->"
                f" {self.clock_power_after_mw:.3f} mW"
                f" ({self.clock_power_saving * 100:.0f}% saving)",
            ]
        )


def insert_clock_gating(
    module: Module,
    *,
    clock_port: str = "clk",
    enable_port: str = "clk_en",
    group_size: int = 8,
    activity: float = 0.15,
    clock_mhz: float = 133.0,
) -> tuple[Module, ClockGatingReport]:
    """Gate the clock of flop banks through shared ICG cells.

    Flops on ``clock_port`` are grouped (``group_size`` per ICG, the
    granularity real tools use) and rewired to gated-clock nets.  The
    enable comes from a new module input ``enable_port`` -- in the
    real design it is each block's bus-activity signal.

    Works on a copy; returns it with the before/after clock-power
    report at the given enable ``activity``.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    before = estimate_power(module, clock_mhz=clock_mhz,
                            activity=activity, clock_port=clock_port)
    gated = module.copy(module.name + "_cg")
    flops = [
        f for f in gated.sequential_instances
        if f.net_of(f.cell.clock_pin) == clock_port
    ]
    if enable_port not in gated.ports:
        gated.add_port(enable_port, "input")
    icgs = 0
    gated_flops = 0
    for start in range(0, len(flops), group_size):
        group = flops[start:start + group_size]
        gck_net = f"__gck{icgs}"
        gated.add_instance(
            f"__icg{icgs}", "ICG",
            {"CK": clock_port, "EN": enable_port, "GCK": gck_net},
        )
        for flop in group:
            gated.rewire_pin(flop.name, flop.cell.clock_pin, gck_net)
            gated_flops += 1
        icgs += 1

    after = estimate_power(gated, clock_mhz=clock_mhz,
                           activity=activity, clock_port=clock_port)
    report = ClockGatingReport(
        icgs_inserted=icgs,
        flops_gated=gated_flops,
        flops_total=len(module.sequential_instances),
        clock_power_before_mw=before.clock_tree_mw,
        clock_power_after_mw=after.clock_tree_mw,
    )
    return gated, report


# ---------------------------------------------------------------------------
# Multi-Vt leakage recovery
# ---------------------------------------------------------------------------

@dataclass
class MultiVtReport:
    """Result of the HVT swap pass."""

    cells_swapped: int
    cells_considered: int
    leakage_before_mw: float
    leakage_after_mw: float
    wns_before_ps: float
    wns_after_ps: float

    @property
    def leakage_saving(self) -> float:
        if self.leakage_before_mw == 0:
            return 0.0
        return 1.0 - self.leakage_after_mw / self.leakage_before_mw

    @property
    def timing_preserved(self) -> bool:
        return self.wns_after_ps >= min(0.0, self.wns_before_ps)

    def format_report(self) -> str:
        return "\n".join(
            [
                "Multi-Vt leakage recovery",
                f"  swapped  : {self.cells_swapped}/{self.cells_considered}"
                f" cells to HVT",
                f"  leakage  : {self.leakage_before_mw * 1e6:.1f} ->"
                f" {self.leakage_after_mw * 1e6:.1f} nW"
                f" ({self.leakage_saving * 100:.0f}% saving)",
                f"  WNS      : {self.wns_before_ps:.1f} ->"
                f" {self.wns_after_ps:.1f} ps",
            ]
        )


def multi_vt_leakage_recovery(
    module: Module,
    constraints: TimingConstraints,
    *,
    slack_margin_ps: float = 50.0,
) -> tuple[Module, MultiVtReport]:
    """Swap off-critical cells to HVT without breaking timing.

    Standard post-route leakage recovery: walk cells in descending
    slack order, swap each to its HVT twin, keep the swap only if WNS
    stays above the margin.  Operates on a copy.
    """
    revised = module.copy(module.name + "_mvt")
    analyzer = TimingAnalyzer(revised, constraints)
    baseline = analyzer.analyze(with_critical_path=False)
    leak_before = sum(
        i.cell.leakage_nw for i in revised.instances.values()
    ) * 1e-6  # mW

    arrivals = analyzer.compute_arrivals(worst=True)
    # Cheap criticality proxy: a cell whose output arrival is early is
    # off-critical.
    def criticality(inst: Instance) -> float:
        out_net = inst.net_of(inst.cell.output_pins[0])
        return arrivals.get(out_net, 0.0)

    candidates = sorted(
        (i for i in revised.instances.values()
         if not i.cell.is_sequential and not i.cell.is_pad
         and i.cell.vt_class == "svt"),
        key=criticality,
    )
    swapped = 0
    # Floor for accepted swaps: keep at least `slack_margin_ps` of
    # positive slack (or never degrade an already-failing design).
    if baseline.wns_ps >= 0:
        target_wns = min(baseline.wns_ps, slack_margin_ps)
    else:
        target_wns = baseline.wns_ps
    for inst in candidates:
        hvt = revised.library.vt_variant(inst.cell, "hvt")
        if hvt is None:
            continue
        original = inst.cell.name
        revised.swap_cell(inst.name, hvt.name)
        wns = TimingAnalyzer(revised, constraints).analyze(
            with_critical_path=False
        ).wns_ps
        if wns >= target_wns:
            swapped += 1
        else:
            revised.swap_cell(inst.name, original)

    final = TimingAnalyzer(revised, constraints).analyze(
        with_critical_path=False
    )
    leak_after = sum(
        i.cell.leakage_nw for i in revised.instances.values()
    ) * 1e-6
    report = MultiVtReport(
        cells_swapped=swapped,
        cells_considered=len(candidates),
        leakage_before_mw=leak_before,
        leakage_after_mw=leak_after,
        wns_before_ps=baseline.wns_ps,
        wns_after_ps=final.wns_ps,
    )
    return revised, report


# ---------------------------------------------------------------------------
# Power-domain isolation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PowerDomain:
    """A switchable power domain and the blocks inside it."""

    name: str
    blocks: tuple[str, ...]
    switchable: bool = True


@dataclass
class IsolationReport:
    """Isolation-cell audit for a domain crossing."""

    crossings: list[tuple[str, str]] = field(default_factory=list)
    isolation_cells_required: int = 0

    def format_report(self) -> str:
        return (
            f"Power-down isolation: {len(self.crossings)} domain "
            f"crossings, {self.isolation_cells_required} isolation cells"
        )


def audit_isolation(
    domains: list[PowerDomain],
    signals_between: dict[tuple[str, str], int],
) -> IsolationReport:
    """Count isolation cells needed at switchable-domain boundaries.

    ``signals_between`` maps (source domain, sink domain) to signal
    count.  Every signal leaving a switchable domain into a live one
    needs an isolation cell so the sink never sees a floating input
    when the source powers down.
    """
    by_name = {d.name: d for d in domains}
    report = IsolationReport()
    for (source, sink), count in sorted(signals_between.items()):
        if source not in by_name or sink not in by_name:
            raise KeyError(f"unknown domain in crossing {source}->{sink}")
        if by_name[source].switchable and source != sink:
            report.crossings.append((source, sink))
            report.isolation_cells_required += count
    return report
