"""Low-power flow: power estimation, clock gating, multi-Vt,
isolation."""

from .power import PowerReport, VDD_V, estimate_power
from .optimize import (
    ClockGatingReport,
    IsolationReport,
    MultiVtReport,
    PowerDomain,
    audit_isolation,
    insert_clock_gating,
    multi_vt_leakage_recovery,
)

__all__ = [
    "PowerReport",
    "VDD_V",
    "estimate_power",
    "ClockGatingReport",
    "IsolationReport",
    "MultiVtReport",
    "PowerDomain",
    "audit_isolation",
    "insert_clock_gating",
    "multi_vt_leakage_recovery",
]
