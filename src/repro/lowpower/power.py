"""Power estimation: dynamic, clock-tree and leakage components.

Dynamic power follows the classic alpha*C*V^2*f per net; the clock
tree is broken out separately because clock gating (the Section-4
"gated clock" item) attacks exactly that term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Module
from ..sta import TimingAnalyzer, TimingConstraints

#: Core supply voltage at 0.25 um.
VDD_V = 2.5


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown for one module at one operating point."""

    clock_mhz: float
    activity: float
    combinational_dynamic_mw: float
    clock_tree_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return (self.combinational_dynamic_mw + self.clock_tree_mw
                + self.leakage_mw)

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Power @ {self.clock_mhz:.0f} MHz, activity "
                f"{self.activity:.2f}",
                f"  combinational : {self.combinational_dynamic_mw:8.3f} mW",
                f"  clock tree    : {self.clock_tree_mw:8.3f} mW",
                f"  leakage       : {self.leakage_mw:8.3f} mW",
                f"  total         : {self.total_mw:8.3f} mW",
            ]
        )


def estimate_power(
    module: Module,
    *,
    clock_mhz: float = 133.0,
    activity: float = 0.15,
    clock_port: str = "clk",
) -> PowerReport:
    """Estimate the power breakdown of a module.

    * combinational nets switch at ``activity`` transitions/cycle;
    * flop clock pins and gated-clock nets switch every cycle (alpha=1)
      unless behind an ICG, in which case they switch at the ICG's
      enable activity (approximated by ``activity``);
    * leakage is summed from cell characterisation.
    """
    if not 0.0 < activity <= 1.0:
        raise ValueError("activity must be in (0, 1]")
    analyzer = TimingAnalyzer(
        module, TimingConstraints(clock_period_ps=1e6 / clock_mhz)
    )
    f_hz = clock_mhz * 1e6
    half_cv2 = 0.5 * VDD_V**2

    comb_w = 0.0
    clock_w = 0.0

    # Clock network: every net reachable from the clock port through
    # clock gates / buffers, plus every flop CK pin.
    clock_nets = {clock_port}
    frontier = [clock_port]
    while frontier:
        net_name = frontier.pop()
        net = module.nets.get(net_name)
        if net is None:
            continue
        for ref in net.loads:
            inst = module.instances[ref.instance]
            if inst.cell.is_clock_gate or inst.cell.footprint == "BUF":
                out_net = inst.net_of(inst.cell.output_pins[0])
                if out_net not in clock_nets:
                    clock_nets.add(out_net)
                    frontier.append(out_net)

    gated_nets: set[str] = set()
    for inst in module.instances.values():
        if inst.cell.is_clock_gate:
            gated_nets.add(inst.net_of("GCK"))

    for net_name, net in module.nets.items():
        if not net.is_driven and net.driver_port is None:
            continue
        cap_f = analyzer.load_cap_ff(net_name) * 1e-15
        if net_name in clock_nets:
            alpha = activity if net_name in gated_nets else 1.0
            clock_w += alpha * cap_f * half_cv2 * f_hz * 2  # 2 edges
        else:
            comb_w += activity * cap_f * half_cv2 * f_hz

    leakage_w = sum(
        inst.cell.leakage_nw for inst in module.instances.values()
    ) * 1e-9
    return PowerReport(
        clock_mhz=clock_mhz,
        activity=activity,
        combinational_dynamic_mw=comb_w * 1e3,
        clock_tree_mw=clock_w * 1e3,
        leakage_mw=leakage_w * 1e3,
    )
