"""Power estimation: dynamic, clock-tree, internal and leakage
components from the characterized library.

Net switching power follows the classic alpha*C*V^2*f per net with
pin capacitances, supply voltage and leakage all taken from a
:class:`repro.liberty.CellLibrary` at a named process corner; each
cell additionally dissipates *internal* power per switching event,
interpolated from its characterized per-arc energy tables.  The clock
tree is broken out separately because clock gating (the Section-4
"gated clock" item) attacks exactly that term -- flop clock-pin and
clock-buffer internal power follows the *clock* activity (1 per cycle,
or the enable activity behind an ICG), never the data activity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..liberty import CellLibrary, LibertyCell, default_cell_library
from ..liberty.tables import lookup_scalar, table_array
from ..netlist import Module
from ..sta import TimingConstraints

#: Core supply voltage at the typical corner of the 0.25 um node --
#: the reference the internal-energy tables are characterized at.
VDD_V = 2.5


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown for one module at one operating point.

    Internal power is folded into the switching buckets it belongs to:
    combinational cell internal energy into
    ``combinational_dynamic_mw``, sequential clock-pin and clock-tree
    buffer internal energy into ``clock_tree_mw``.
    """

    clock_mhz: float
    activity: float
    combinational_dynamic_mw: float
    clock_tree_mw: float
    leakage_mw: float
    corner: str = "tt"

    @property
    def total_mw(self) -> float:
        return (self.combinational_dynamic_mw + self.clock_tree_mw
                + self.leakage_mw)

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Power @ {self.clock_mhz:.0f} MHz, activity "
                f"{self.activity:.2f} [{self.corner}]",
                f"  combinational : {self.combinational_dynamic_mw:8.3f} mW",
                f"  clock tree    : {self.clock_tree_mw:8.3f} mW",
                f"  leakage       : {self.leakage_mw:8.3f} mW",
                f"  total         : {self.total_mw:8.3f} mW",
            ]
        )


def estimate_power(
    module: Module,
    *,
    clock_mhz: float = 133.0,
    activity: float = 0.15,
    clock_port: str = "clk",
    library: CellLibrary | None = None,
    corner: str = "tt",
) -> PowerReport:
    """Estimate the power breakdown of a module at one corner.

    * combinational nets switch at ``activity`` transitions/cycle;
    * flop clock pins and gated-clock nets switch every cycle (alpha=1)
      unless behind an ICG, in which case they switch at the ICG's
      enable activity (approximated by ``activity``);
    * every switching cell event adds its characterized internal
      energy, interpolated at (input slew, output load);
    * leakage is summed from the characterized library, scaled by the
      corner's leakage derate (the FF-corner leakage blow-up of
      Section 4).
    """
    if not 0.0 < activity <= 1.0:
        raise ValueError("activity must be in (0, 1]")
    lib = library if library is not None else default_cell_library(
        module.library)
    corner_obj = lib.corner(corner)
    constraints = TimingConstraints(clock_period_ps=1e6 / clock_mhz)

    f_hz = clock_mhz * 1e6
    vdd = corner_obj.vdd_v
    half_cv2 = 0.5 * vdd**2
    #: Internal tables are characterized at the nominal supply; energy
    #: scales with the square of the actual rail.
    energy_scale = (vdd / VDD_V) ** 2

    def net_load_ff(net_name: str) -> float:
        net = module.nets[net_name]
        cap = 0.0
        for ref in net.loads:
            inst = module.instances[ref.instance]
            cap += lib.cell(inst.cell.name).pin(ref.pin).capacitance_ff
        wire = constraints.wire_cap_per_fanout_ff * max(net.fanout, 1)
        return cap + wire * corner_obj.wire_derate

    # Clock network: every net reachable from the clock port through
    # clock gates / buffers, plus every flop CK pin.
    clock_nets = {clock_port}
    frontier = [clock_port]
    while frontier:
        net_name = frontier.pop()
        net = module.nets.get(net_name)
        if net is None:
            continue
        for ref in net.loads:
            inst = module.instances[ref.instance]
            if inst.cell.is_clock_gate or inst.cell.footprint == "BUF":
                out_net = inst.net_of(inst.cell.output_pins[0])
                if out_net not in clock_nets:
                    clock_nets.add(out_net)
                    frontier.append(out_net)

    gated_nets: set[str] = set()
    for inst in module.instances.values():
        if inst.cell.is_clock_gate:
            gated_nets.add(inst.net_of("GCK"))

    def clock_alpha(net_name: str) -> float:
        return activity if net_name in gated_nets else 1.0

    comb_w = 0.0
    clock_w = 0.0

    # Net switching power.
    for net_name, net in module.nets.items():
        if not net.is_driven and net.driver_port is None:
            continue
        cap_f = net_load_ff(net_name) * 1e-15
        if net_name in clock_nets:
            clock_w += clock_alpha(net_name) * cap_f * half_cv2 * f_hz * 2
        else:
            comb_w += activity * cap_f * half_cv2 * f_hz

    # Cell internal power: characterized energy per event at the
    # cell's (input slew, output load) operating point.
    def internal_energy_j(lib_cell: LibertyCell, out_pin: str, slew_ps: float,
                          load_ff: float) -> float:
        worst_fj = 0.0
        for arc in lib_cell.arcs_to(out_pin):
            energy = lookup_scalar(
                table_array(arc.internal_energy_fj),
                lib.slew_index_ps, lib.load_index_ff, slew_ps, load_ff,
            )
            worst_fj = max(worst_fj, energy)
        return worst_fj * energy_scale * 1e-15

    for inst in module.instances.values():
        lib_cell = lib.cell(inst.cell.name)
        for out_pin in inst.cell.output_pins:
            if not lib_cell.arcs_to(out_pin):
                continue  # tie/spare cells never switch
            out_net = inst.net_of(out_pin)
            load_ff = net_load_ff(out_net)
            if inst.cell.is_sequential:
                # Clock-to-Q internal energy fires once per clock pin
                # event -- tied to the clock net's activity, so gating
                # the clock removes it too.
                ck_net = (
                    inst.net_of(inst.cell.clock_pin)
                    if inst.cell.clock_pin is not None else clock_port
                )
                energy = internal_energy_j(
                    lib_cell, out_pin, constraints.clock_slew_ps, load_ff)
                clock_w += clock_alpha(ck_net) * energy * f_hz
            elif out_net in clock_nets:
                # Clock-tree buffers and ICGs toggle with the clock.
                energy = internal_energy_j(
                    lib_cell, out_pin, constraints.clock_slew_ps, load_ff)
                clock_w += clock_alpha(out_net) * energy * f_hz * 2
            else:
                energy = internal_energy_j(
                    lib_cell, out_pin, constraints.input_slew_ps, load_ff)
                comb_w += activity * energy * f_hz

    leakage_w = sum(
        lib.cell(inst.cell.name).leakage_nw
        for inst in module.instances.values()
    ) * corner_obj.leakage_derate * 1e-9

    return PowerReport(
        clock_mhz=clock_mhz,
        activity=activity,
        combinational_dynamic_mw=comb_w * 1e3,
        clock_tree_mw=clock_w * 1e3,
        leakage_mw=leakage_w * 1e3,
        corner=corner,
    )
