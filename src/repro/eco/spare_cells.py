"""Spare cells and metal-only ECOs.

The paper's production yield killer -- "insufficient driving strength
of an output buffer in the CPU" -- was "corrected ... by means of
metal changes to utilize the spare cells".  A metal-only ECO re-wires
existing transistors (spare cells sprinkled at tapeout) instead of
changing the base layers, so only the metal masks are re-made: weeks
and a fraction of the mask cost instead of a full respin.

This module sprinkles spare cells into a netlist at tapeout time and
performs the paper's exact fix: strengthening a weak driver by
ganging a spare buffer in parallel, expressed as a metal-only edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist import Module

#: Mask set cost split (fractions of a full 0.25 um mask set).  A
#: metal-only respin re-makes roughly the top metal masks.
FULL_MASK_COST_USD = 250_000.0
METAL_ONLY_COST_FRACTION = 0.18
FULL_RESPIN_WEEKS = 10.0
METAL_ONLY_WEEKS = 3.0


@dataclass
class SpareCellPlan:
    """Where the spare cells went."""

    module_name: str
    spare_instances: list[str] = field(default_factory=list)

    @property
    def available(self) -> int:
        return len(self.spare_instances)


def sprinkle_spare_cells(
    module: Module, *, count: int, prefix: str = "__spare"
) -> SpareCellPlan:
    """Add ``count`` uncommitted spare blocks to the netlist (in
    place -- spares are part of the tapeout database)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    plan = SpareCellPlan(module.name)
    for index in range(count):
        name = f"{prefix}{index}"
        module.add_instance(name, "SPARE_BLOCK", {"Y": f"{name}_nc"})
        plan.spare_instances.append(name)
    return plan


@dataclass
class MetalEcoReport:
    """Result of one metal-only fix."""

    description: str
    spares_consumed: int
    cells_modified: int
    mask_cost_usd: float
    turnaround_weeks: float
    full_respin_cost_usd: float = FULL_MASK_COST_USD
    full_respin_weeks: float = FULL_RESPIN_WEEKS

    @property
    def cost_saving_usd(self) -> float:
        return self.full_respin_cost_usd - self.mask_cost_usd

    def format_report(self) -> str:
        return "\n".join(
            [
                f"Metal-only ECO: {self.description}",
                f"  spares consumed : {self.spares_consumed}",
                f"  cells modified  : {self.cells_modified}",
                f"  mask cost       : ${self.mask_cost_usd:,.0f}"
                f" (vs ${self.full_respin_cost_usd:,.0f} full respin)",
                f"  turnaround      : {self.turnaround_weeks:.0f} weeks"
                f" (vs {self.full_respin_weeks:.0f})",
            ]
        )


class SpareCellError(Exception):
    """Not enough spares or an impossible metal fix."""


def strengthen_driver_metal_only(
    module: Module,
    plan: SpareCellPlan,
    instance: str,
    *,
    description: str = "",
) -> MetalEcoReport:
    """The paper's yield fix: boost a weak driver using spare devices.

    Electrically the fix gangs spare transistors in parallel with the
    existing driver; in the netlist model this appears as a swap to
    the next drive strength of the same footprint, paid for with one
    spare cell, and costed as a metal-only mask change.
    """
    inst = module.instances.get(instance)
    if inst is None:
        raise SpareCellError(f"no instance {instance!r}")
    if not plan.spare_instances:
        raise SpareCellError("no spare cells left")
    variants = module.library.drive_variants(inst.cell.footprint)
    names = [v.name for v in variants]
    if inst.cell.name not in names:
        raise SpareCellError(
            f"cell {inst.cell.name} has no drive family to grow into"
        )
    index = names.index(inst.cell.name)
    if index + 1 >= len(names):
        raise SpareCellError(f"{inst.cell.name} is already the strongest")
    module.swap_cell(instance, names[index + 1])
    spare = plan.spare_instances.pop()
    module.remove_instance(spare)  # its devices are consumed by the fix
    return MetalEcoReport(
        description=description or f"strengthen {instance}",
        spares_consumed=1,
        cells_modified=1,
        mask_cost_usd=FULL_MASK_COST_USD * METAL_ONLY_COST_FRACTION,
        turnaround_weeks=METAL_ONLY_WEEKS,
    )
