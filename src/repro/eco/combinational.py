"""Combinational ECO: functional patches on a frozen netlist.

The ten "netlist changes involving ECO of combinational logic" in the
paper were applied as patches -- small gate-level edits -- rather than
full re-synthesis, because placement was already frozen.  This module
provides the patch primitives, a churn generator producing realistic
random functional changes, and verification glue: every applied patch
is checked against the intended function with the equivalence checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..netlist import Module
from ..formal import check_combinational_equivalence


@dataclass(frozen=True)
class EcoEdit:
    """One primitive netlist edit."""

    action: Literal["swap_cell", "rewire_pin", "add_instance",
                    "remove_instance"]
    instance: str
    cell: str | None = None
    pin: str | None = None
    net: str | None = None
    connections: tuple[tuple[str, str], ...] = ()


@dataclass
class EcoPatch:
    """An ordered list of edits plus bookkeeping."""

    description: str
    edits: list[EcoEdit] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.edits)


class EcoError(Exception):
    """A patch could not be applied."""


def apply_patch(module: Module, patch: EcoPatch) -> Module:
    """Apply a patch to a copy of the module and return it."""
    revised = module.copy()
    for edit in patch.edits:
        try:
            if edit.action == "swap_cell":
                revised.swap_cell(edit.instance, edit.cell)
            elif edit.action == "rewire_pin":
                revised.rewire_pin(edit.instance, edit.pin, edit.net)
            elif edit.action == "remove_instance":
                revised.remove_instance(edit.instance)
            elif edit.action == "add_instance":
                revised.add_instance(
                    edit.instance, edit.cell, dict(edit.connections)
                )
            else:
                raise EcoError(f"unknown action {edit.action!r}")
        except Exception as exc:
            raise EcoError(
                f"patch {patch.description!r} failed at {edit}: {exc}"
            ) from exc
    return revised


# ---------------------------------------------------------------------------
# Churn generation: realistic random functional changes
# ---------------------------------------------------------------------------

#: Function swaps a customer spec change typically lands on: polarity
#: and gate-type flips that stay pin-compatible.
_FUNCTION_SWAPS = {
    "NAND2": "NOR2",
    "NOR2": "NAND2",
    "AND2": "OR2",
    "OR2": "AND2",
    "XOR2": "XNOR2",
    "XNOR2": "XOR2",
}


def random_functional_change(
    module: Module,
    *,
    rng: np.random.Generator,
    description: str = "",
    max_tries: int = 16,
) -> EcoPatch:
    """Generate a small random functional change (a 'spec change' in
    miniature): one gate gets its function flipped.

    A polarity swap deep in reconvergent logic can be functionally
    invisible at the outputs, so candidate victims are tried until the
    equivalence checker confirms the patch is observable; a silently
    dead patch is never returned.
    """
    candidates = [
        inst.name
        for inst in module.instances.values()
        if inst.cell.footprint in _FUNCTION_SWAPS
    ]
    if not candidates:
        raise EcoError("no gate suitable for a functional change")
    for _ in range(max_tries):
        victim_name = candidates[int(rng.integers(0, len(candidates)))]
        victim = module.instances[victim_name]
        drive = victim.cell.name.rsplit("_", 1)[1]
        new_cell = f"{_FUNCTION_SWAPS[victim.cell.footprint]}_{drive}"
        connections = tuple(victim.connections.items())
        patch = EcoPatch(
            description=description or f"flip {victim_name} to {new_cell}",
            edits=[
                EcoEdit("remove_instance", victim_name),
                EcoEdit("add_instance", victim_name, cell=new_cell,
                        connections=connections),
            ],
        )
        revised = apply_patch(module, patch)
        outcome = check_combinational_equivalence(
            module, revised, seed=int(rng.integers(0, 2**31)),
            max_random_vectors=512,
        )
        if not outcome.equivalent:
            return patch
    raise EcoError(
        f"could not find an observable functional change in {max_tries} tries"
    )


@dataclass
class EcoApplication:
    """Result of applying + verifying one combinational ECO."""

    patch: EcoPatch
    revised: Module
    equivalence_vs_base: bool
    gates_touched: int


def apply_and_verify(
    module: Module,
    patch: EcoPatch,
    *,
    expect_equivalent: bool,
    seed: int = 0,
) -> EcoApplication:
    """Apply a patch and formally compare against the base netlist.

    ``expect_equivalent=False`` (functional ECO) demands the checker
    *refute* equivalence -- catching silently-dead patches;
    ``expect_equivalent=True`` (resize/buffer ECO) demands proof the
    function is untouched.  A mismatch raises :class:`EcoError`.
    """
    revised = apply_patch(module, patch)
    result = check_combinational_equivalence(
        module, revised, seed=seed, max_random_vectors=1024
    )
    if result.equivalent != expect_equivalent:
        expectation = "equivalent" if expect_equivalent else "different"
        raise EcoError(
            f"patch {patch.description!r}: expected netlists to be "
            f"{expectation}, checker says otherwise"
        )
    return EcoApplication(
        patch=patch,
        revised=revised,
        equivalence_vs_base=result.equivalent,
        gates_touched=len(patch),
    )
