"""Timing-fix ECOs: setup fixing by resizing/Vt-swapping, hold fixing
by delay insertion.

Reproduces the paper's "3 ECO changes to fix setup/hold time
violation": the engine runs multi-corner NLDM STA
(:class:`repro.sta.NldmTimingAnalyzer`), walks the worst violating
paths, and applies the standard fix repertoire --

* **setup**: upsize or LVT-swap cells on the critical path.  Every
  candidate move is *priced from the characterized library* (worst-arc
  table delay at the path point's slew/load, derated to the worst
  corner); the best-priced move is applied and kept only if signoff
  STA confirms the WNS improved -- the accept-if-better loop a
  physical-synthesis sizer runs, now with real NLDM costs;
* **hold**: insert delay buffers in front of flop D pins whose early
  arrival violates at any corner.

Each pass is a single ECO in the paper's counting; the report records
how many passes a block needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..liberty import CellLibrary, default_cell_library
from ..liberty.tables import lookup_scalar, table_array
from ..netlist import Module
from ..netlist.netlist import Instance
from ..sta import NldmTimingAnalyzer, TimingConstraints


@dataclass
class TimingFixReport:
    """Outcome of a timing-closure ECO campaign.

    ``touched_instances`` is the sorted set of instances the campaign
    actually modified (resized/swapped cells, rewired flops, inserted
    buffers) -- exactly the seed set an incremental re-analysis
    through :mod:`repro.store` needs, since only cones reaching a
    touched instance can change.
    """

    setup_passes: int = 0
    hold_passes: int = 0
    cells_resized: int = 0
    vt_swaps: int = 0
    buffers_inserted: int = 0
    wns_before_ps: float = 0.0
    wns_after_ps: float = 0.0
    hold_wns_before_ps: float = 0.0
    hold_wns_after_ps: float = 0.0
    closed: bool = False
    touched_instances: tuple[str, ...] = ()

    def format_report(self) -> str:
        return "\n".join(
            [
                "Timing ECO",
                f"  setup passes : {self.setup_passes}"
                f" ({self.cells_resized} cells resized,"
                f" {self.vt_swaps} Vt swaps)",
                f"  hold passes  : {self.hold_passes}"
                f" ({self.buffers_inserted} buffers)",
                f"  setup WNS    : {self.wns_before_ps:.1f} ->"
                f" {self.wns_after_ps:.1f} ps",
                f"  hold WNS     : {self.hold_wns_before_ps:.1f} ->"
                f" {self.hold_wns_after_ps:.1f} ps",
                f"  closed       : {self.closed}"
                f" ({len(self.touched_instances)} instances touched)",
            ]
        )


def _worst_arc_delay_ps(
    library: CellLibrary, cell_name: str, slew_ps: float, load_ff: float
) -> float:
    """Worst table delay over a cell's arcs at one (slew, load) point."""
    cell = library.cell(cell_name)
    worst = 0.0
    for arc in cell.arcs:
        delay = lookup_scalar(
            table_array(arc.delay_ps),
            library.slew_index_ps, library.load_index_ff,
            slew_ps, load_ff,
        )
        worst = max(worst, delay)
    return worst


def _net_load_ff(
    module: Module,
    library: CellLibrary,
    net_name: str,
    constraints: TimingConstraints,
    wire_derate: float,
) -> float:
    """Estimated load on a net: characterized pin caps + derated wire."""
    net = module.nets[net_name]
    cap = 0.0
    for ref in net.loads:
        inst = module.instances[ref.instance]
        cap += library.cell(inst.cell.name).pin(ref.pin).capacitance_ff
    wire = constraints.wire_cap_per_fanout_ff * max(net.fanout, 1)
    return cap + wire * wire_derate


def _candidate_moves(inst: Instance, module: Module, library: CellLibrary
                     ) -> list[str]:
    """Legal replacement cells: next drive strength up, and LVT swap."""
    moves: list[str] = []
    variants = module.library.drive_variants(
        inst.cell.footprint, vt_class=inst.cell.vt_class)
    names = [v.name for v in variants]
    if inst.cell.name in names:
        index = names.index(inst.cell.name)
        if index + 1 < len(names):
            moves.append(names[index + 1])
    if inst.cell.vt_class != "lvt":
        lvt = module.library.vt_variant(inst.cell, "lvt")
        if lvt is not None and lvt.name in library:
            moves.append(lvt.name)
    return [m for m in moves if m in library]


def _upsize_critical_path(
    module: Module,
    constraints: TimingConstraints,
    library: CellLibrary,
    *,
    corners: Sequence[str] | None,
    engine: str,
) -> tuple[int, int, set[str]]:
    """Resize / Vt-swap cells on the current worst-corner critical path.

    Candidate moves are priced from the library tables first (delay
    gain at the path point's slew and the net's current load, derated
    to the analysis corner), then confirmed through signoff STA and
    reverted if the WNS did not improve -- cheap pricing, honest
    acceptance.

    Returns ``(cells_resized, vt_swaps, touched)``;
    (0, 0, ...) = nothing left.
    """
    touched: set[str] = set()
    analyzer = NldmTimingAnalyzer(module, constraints, library=library)
    report = analyzer.analyze(corners=corners, engine=engine)
    worst = report.worst_corner
    if worst.wns_ps >= 0 or not worst.critical_path:
        return 0, 0, touched
    delay_derate = library.corner(worst.corner).delay_derate
    wire_derate = library.corner(worst.corner).wire_derate

    best_wns = report.wns_ps
    resized = 0
    swapped = 0
    for point in worst.critical_path:
        inst = module.instances.get(point.instance)
        if inst is None or inst.cell.is_sequential:
            continue
        moves = _candidate_moves(inst, module, library)
        if not moves:
            continue
        load = _net_load_ff(module, library, point.net, constraints,
                            wire_derate)
        current_delay = _worst_arc_delay_ps(
            library, inst.cell.name, point.slew_ps, load)
        priced = sorted(
            (
                ((current_delay - _worst_arc_delay_ps(
                    library, move, point.slew_ps, load)) * delay_derate,
                 move)
                for move in moves
            ),
            reverse=True,
        )
        gain_ps, move = priced[0]
        if gain_ps <= 0.0:
            continue  # no move the library prices as a win
        original = inst.cell.name
        module.swap_cell(inst.name, move)
        new_wns = NldmTimingAnalyzer(
            module, constraints, library=library,
        ).analyze(
            corners=corners, engine=engine, with_critical_path=False,
        ).wns_ps
        if new_wns > best_wns:
            best_wns = new_wns
            touched.add(inst.name)
            if library.cell(move).vt_class != library.cell(original).vt_class:
                swapped += 1
            else:
                resized += 1
        else:
            module.swap_cell(inst.name, original)
    return resized, swapped, touched


def fix_setup(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
    library: CellLibrary | None = None,
    corners: Sequence[str] | None = None,
    engine: str = "vectorized",
) -> tuple[Module, TimingFixReport]:
    """Iteratively resize/Vt-swap along critical paths until setup is
    clean at every analyzed corner.

    Operates on a copy; the returned report counts passes (each pass
    is one 'timing ECO').
    """
    lib = library if library is not None else default_cell_library(
        module.library)
    revised = module.copy()
    report = TimingFixReport()
    baseline = NldmTimingAnalyzer(
        revised, constraints, library=lib).analyze(
        corners=corners, engine=engine, with_critical_path=False)
    report.wns_before_ps = baseline.wns_ps
    report.hold_wns_before_ps = baseline.hold_wns_ps

    touched: set[str] = set()
    for _ in range(max_passes):
        sta = NldmTimingAnalyzer(
            revised, constraints, library=lib).analyze(
            corners=corners, engine=engine, with_critical_path=False)
        if sta.setup_clean:
            break
        resized, swapped, pass_touched = _upsize_critical_path(
            revised, constraints, lib, corners=corners, engine=engine)
        if resized + swapped == 0:
            break  # out of sizing headroom
        report.setup_passes += 1
        report.cells_resized += resized
        report.vt_swaps += swapped
        touched |= pass_touched

    final = NldmTimingAnalyzer(
        revised, constraints, library=lib).analyze(
        corners=corners, engine=engine, with_critical_path=False)
    report.wns_after_ps = final.wns_ps
    report.hold_wns_after_ps = final.hold_wns_ps
    report.closed = final.setup_clean
    report.touched_instances = tuple(sorted(touched))
    return revised, report


def fix_hold(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
    library: CellLibrary | None = None,
    corners: Sequence[str] | None = None,
    engine: str = "vectorized",
) -> tuple[Module, TimingFixReport]:
    """Insert delay buffers on flop D inputs that violate hold at any
    analyzed corner (the fast corner is the usual offender)."""
    lib = library if library is not None else default_cell_library(
        module.library)
    revised = module.copy()
    report = TimingFixReport()
    baseline = NldmTimingAnalyzer(
        revised, constraints, library=lib).analyze(
        corners=corners, engine=engine, with_critical_path=False)
    report.wns_before_ps = baseline.wns_ps
    report.hold_wns_before_ps = baseline.hold_wns_ps

    touched: set[str] = set()
    buffer_id = 0
    for _ in range(max_passes):
        analyzer = NldmTimingAnalyzer(revised, constraints, library=lib)
        _, _, _, _, _, arr_h, _ = analyzer.sweep(
            corners=corners, engine=engine)
        offenders = []
        for key, kind, net_idx in analyzer.graph.endpoints:
            if kind != "flop":
                continue
            early = float(arr_h[:, net_idx].min())
            if early < constraints.hold_ps:
                offenders.append(key.removeprefix("flop:"))
        if not offenders:
            break
        report.hold_passes += 1
        for flop_name in offenders:
            flop = revised.instances[flop_name]
            assert flop.cell.data_pin is not None
            d_net = flop.net_of(flop.cell.data_pin)
            new_net = f"__hold{buffer_id}"
            revised.add_instance(
                f"__holdbuf{buffer_id}", "BUF_X1",
                {"A": d_net, "Y": new_net},
            )
            revised.rewire_pin(flop.name, flop.cell.data_pin, new_net)
            touched.add(flop.name)
            touched.add(f"__holdbuf{buffer_id}")
            report.buffers_inserted += 1
            buffer_id += 1

    final = NldmTimingAnalyzer(
        revised, constraints, library=lib).analyze(
        corners=corners, engine=engine, with_critical_path=False)
    report.wns_after_ps = final.wns_ps
    report.hold_wns_after_ps = final.hold_wns_ps
    report.closed = final.hold_clean
    report.touched_instances = tuple(sorted(touched))
    return revised, report


def close_timing(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
    library: CellLibrary | None = None,
    corners: Sequence[str] | None = None,
    engine: str = "vectorized",
) -> tuple[Module, TimingFixReport]:
    """Full closure: setup passes, then hold passes."""
    revised, setup_report = fix_setup(
        module, constraints, max_passes=max_passes, library=library,
        corners=corners, engine=engine,
    )
    revised, hold_report = fix_hold(
        revised, constraints, max_passes=max_passes, library=library,
        corners=corners, engine=engine,
    )
    combined = TimingFixReport(
        setup_passes=setup_report.setup_passes,
        hold_passes=hold_report.hold_passes,
        cells_resized=setup_report.cells_resized,
        vt_swaps=setup_report.vt_swaps,
        buffers_inserted=hold_report.buffers_inserted,
        wns_before_ps=setup_report.wns_before_ps,
        wns_after_ps=hold_report.wns_after_ps,
        hold_wns_before_ps=setup_report.hold_wns_before_ps,
        hold_wns_after_ps=hold_report.hold_wns_after_ps,
        closed=hold_report.wns_after_ps >= 0
        and hold_report.hold_wns_after_ps >= 0,
        touched_instances=tuple(sorted(
            set(setup_report.touched_instances)
            | set(hold_report.touched_instances)
        )),
    )
    return revised, combined
