"""Timing-fix ECOs: setup fixing by resizing, hold fixing by delay
insertion.

Reproduces the paper's "3 ECO changes to fix setup/hold time
violation": the engine runs STA, walks the worst violating paths, and
applies the standard fix repertoire --

* **setup**: upsize the weakest-drive cells on the critical path
  (drive-strength swap is placement-neutral, the classic late-stage
  fix);
* **hold**: insert delay buffers in front of offending flop D pins.

Each pass is a single ECO in the paper's counting; the report records
how many passes a block needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist import Module
from ..sta import TimingAnalyzer, TimingConstraints


@dataclass
class TimingFixReport:
    """Outcome of a timing-closure ECO campaign."""

    setup_passes: int = 0
    hold_passes: int = 0
    cells_resized: int = 0
    buffers_inserted: int = 0
    wns_before_ps: float = 0.0
    wns_after_ps: float = 0.0
    hold_wns_before_ps: float = 0.0
    hold_wns_after_ps: float = 0.0
    closed: bool = False

    def format_report(self) -> str:
        return "\n".join(
            [
                "Timing ECO",
                f"  setup passes : {self.setup_passes}"
                f" ({self.cells_resized} cells resized)",
                f"  hold passes  : {self.hold_passes}"
                f" ({self.buffers_inserted} buffers)",
                f"  setup WNS    : {self.wns_before_ps:.1f} ->"
                f" {self.wns_after_ps:.1f} ps",
                f"  hold WNS     : {self.hold_wns_before_ps:.1f} ->"
                f" {self.hold_wns_after_ps:.1f} ps",
                f"  closed       : {self.closed}",
            ]
        )


def _upsize_critical_path(
    module: Module, constraints: TimingConstraints
) -> int:
    """Upsize cells on the current critical path, keeping only swaps
    that actually improve WNS.

    Upsizing is not free -- a bigger cell loads its driver harder and
    carries a larger intrinsic delay -- so every candidate swap is
    evaluated through STA and reverted if it hurts, exactly the
    accept-if-better loop a physical-synthesis sizer runs.

    Returns the number of cells changed (0 = nothing left to do).
    """
    analyzer = TimingAnalyzer(module, constraints)
    report = analyzer.analyze(with_critical_path=True)
    if report.critical_path is None or report.wns_ps >= 0:
        return 0
    best_wns = report.wns_ps
    resized = 0
    for point in report.critical_path.points:
        inst = module.instances.get(point.instance)
        if inst is None or inst.cell.is_sequential:
            continue
        variants = module.library.drive_variants(inst.cell.footprint)
        names = [v.name for v in variants]
        if inst.cell.name not in names:
            continue
        index = names.index(inst.cell.name)
        if index + 1 >= len(names):
            continue
        original = inst.cell.name
        module.swap_cell(inst.name, names[index + 1])
        new_wns = TimingAnalyzer(module, constraints).analyze(
            with_critical_path=False
        ).wns_ps
        if new_wns > best_wns:
            best_wns = new_wns
            resized += 1
        else:
            module.swap_cell(inst.name, original)
    return resized


def fix_setup(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
) -> tuple[Module, TimingFixReport]:
    """Iteratively resize along critical paths until setup is clean.

    Operates on a copy; the returned report counts passes (each pass
    is one 'timing ECO').
    """
    revised = module.copy()
    report = TimingFixReport()
    baseline = TimingAnalyzer(revised, constraints).analyze()
    report.wns_before_ps = baseline.wns_ps
    report.hold_wns_before_ps = baseline.hold_wns_ps

    for _ in range(max_passes):
        sta = TimingAnalyzer(revised, constraints).analyze(
            with_critical_path=False
        )
        if sta.wns_ps >= 0:
            break
        changed = _upsize_critical_path(revised, constraints)
        if changed == 0:
            break  # out of sizing headroom
        report.setup_passes += 1
        report.cells_resized += changed

    final = TimingAnalyzer(revised, constraints).analyze()
    report.wns_after_ps = final.wns_ps
    report.hold_wns_after_ps = final.hold_wns_ps
    report.closed = final.setup_clean
    return revised, report


def fix_hold(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
) -> tuple[Module, TimingFixReport]:
    """Insert delay buffers on hold-violating flop D inputs."""
    revised = module.copy()
    report = TimingFixReport()
    baseline = TimingAnalyzer(revised, constraints).analyze()
    report.wns_before_ps = baseline.wns_ps
    report.hold_wns_before_ps = baseline.hold_wns_ps

    buffer_id = 0
    for _ in range(max_passes):
        analyzer = TimingAnalyzer(revised, constraints)
        min_arrivals = analyzer.compute_arrivals(worst=False, hold_mode=True)
        offenders = []
        for flop in revised.sequential_instances:
            d_net = flop.net_of(flop.cell.data_pin)
            arrival = min_arrivals.get(d_net, float("inf"))
            if arrival < constraints.hold_ps:
                offenders.append(flop)
        if not offenders:
            break
        report.hold_passes += 1
        for flop in offenders:
            d_net = flop.net_of(flop.cell.data_pin)
            new_net = f"__hold{buffer_id}"
            revised.add_instance(
                f"__holdbuf{buffer_id}", "BUF_X1",
                {"A": d_net, "Y": new_net},
            )
            revised.rewire_pin(flop.name, flop.cell.data_pin, new_net)
            report.buffers_inserted += 1
            buffer_id += 1

    final = TimingAnalyzer(revised, constraints).analyze()
    report.wns_after_ps = final.wns_ps
    report.hold_wns_after_ps = final.hold_wns_ps
    report.closed = final.hold_clean
    return revised, report


def close_timing(
    module: Module,
    constraints: TimingConstraints,
    *,
    max_passes: int = 10,
) -> tuple[Module, TimingFixReport]:
    """Full closure: setup passes, then hold passes."""
    revised, setup_report = fix_setup(
        module, constraints, max_passes=max_passes
    )
    revised, hold_report = fix_hold(
        revised, constraints, max_passes=max_passes
    )
    combined = TimingFixReport(
        setup_passes=setup_report.setup_passes,
        hold_passes=hold_report.hold_passes,
        cells_resized=setup_report.cells_resized,
        buffers_inserted=hold_report.buffers_inserted,
        wns_before_ps=setup_report.wns_before_ps,
        wns_after_ps=hold_report.wns_after_ps,
        hold_wns_before_ps=setup_report.hold_wns_before_ps,
        hold_wns_after_ps=hold_report.hold_wns_after_ps,
        closed=hold_report.wns_after_ps >= 0
        and hold_report.hold_wns_after_ps >= 0,
    )
    return revised, combined
