"""Design database with change-order tracking.

Section 3 of the paper catalogues the churn the implementation team
absorbed: "3 spec changes involving re-synthesis and FF modification,
10 netlist changes involving ECO of combinational logic part, 3 ECO
changes to fix setup/hold time violation, and 13 versions of pin
assignments."  :class:`DesignDatabase` versions the netlist through
exactly that taxonomy so the churn replay (experiment E5) is an
auditable log, not loose variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..netlist import Module


class ChangeKind(Enum):
    """The paper's change taxonomy (plus the initial baseline)."""

    BASELINE = "baseline"                # version 0, not a change
    SPEC_CHANGE = "spec_change"          # re-synthesis + FF modification
    NETLIST_ECO = "netlist_eco"          # combinational patch
    TIMING_ECO = "timing_eco"            # setup/hold fix
    PIN_ASSIGNMENT = "pin_assignment"    # package ball map revision
    METAL_ECO = "metal_eco"              # post-tapeout spare-cell fix


#: Engineering effort each change kind typically costs (person-days),
#: used by the project simulator.
CHANGE_EFFORT_DAYS = {
    ChangeKind.BASELINE: 0.0,
    ChangeKind.SPEC_CHANGE: 5.0,
    ChangeKind.NETLIST_ECO: 1.5,
    ChangeKind.TIMING_ECO: 2.0,
    ChangeKind.PIN_ASSIGNMENT: 1.0,
    ChangeKind.METAL_ECO: 3.0,
}


@dataclass(frozen=True)
class ChangeRecord:
    """One committed change."""

    version: int
    kind: ChangeKind
    description: str
    day: float = 0.0
    touched_instances: int = 0


@dataclass
class DesignDatabase:
    """Versioned storage for one block's netlist."""

    name: str
    _versions: list[Module] = field(default_factory=list)
    _records: list[ChangeRecord] = field(default_factory=list)

    def commit(self, module: Module, kind: ChangeKind, description: str,
               *, day: float = 0.0, touched_instances: int = 0
               ) -> ChangeRecord:
        """Store a new netlist version with its change record."""
        record = ChangeRecord(
            version=len(self._versions),
            kind=kind,
            description=description,
            day=day,
            touched_instances=touched_instances,
        )
        self._versions.append(module.copy())
        self._records.append(record)
        return record

    @property
    def head(self) -> Module:
        if not self._versions:
            raise LookupError(f"database {self.name} has no versions")
        return self._versions[-1]

    def version(self, index: int) -> Module:
        return self._versions[index]

    @property
    def records(self) -> tuple[ChangeRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._versions)

    def count_by_kind(self) -> dict[ChangeKind, int]:
        counts: dict[ChangeKind, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def churn_report(self) -> str:
        """The Section-3 change-log summary for this design."""
        counts = self.count_by_kind()
        lines = [f"Change log for {self.name} ({len(self)} versions)"]
        for kind in ChangeKind:
            if kind in counts:
                lines.append(f"  {kind.value:15s}: {counts[kind]}")
        return "\n".join(lines)


def paper_change_counts() -> dict[ChangeKind, int]:
    """The exact churn the paper reports (Section 3)."""
    return {
        ChangeKind.SPEC_CHANGE: 3,
        ChangeKind.NETLIST_ECO: 10,
        ChangeKind.TIMING_ECO: 3,
        ChangeKind.PIN_ASSIGNMENT: 13,
    }
