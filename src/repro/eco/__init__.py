"""Engineering change orders: versioning, patches, timing fixes,
spare-cell metal ECOs."""

from .versioning import (
    CHANGE_EFFORT_DAYS,
    ChangeKind,
    ChangeRecord,
    DesignDatabase,
    paper_change_counts,
)
from .combinational import (
    EcoApplication,
    EcoEdit,
    EcoError,
    EcoPatch,
    apply_and_verify,
    apply_patch,
    random_functional_change,
)
from .timing_fix import (
    TimingFixReport,
    close_timing,
    fix_hold,
    fix_setup,
)
from .spare_cells import (
    FULL_MASK_COST_USD,
    METAL_ONLY_COST_FRACTION,
    MetalEcoReport,
    SpareCellError,
    SpareCellPlan,
    sprinkle_spare_cells,
    strengthen_driver_metal_only,
)

__all__ = [
    "CHANGE_EFFORT_DAYS",
    "ChangeKind",
    "ChangeRecord",
    "DesignDatabase",
    "paper_change_counts",
    "EcoApplication",
    "EcoEdit",
    "EcoError",
    "EcoPatch",
    "apply_and_verify",
    "apply_patch",
    "random_functional_change",
    "TimingFixReport",
    "close_timing",
    "fix_hold",
    "fix_setup",
    "FULL_MASK_COST_USD",
    "METAL_ONLY_COST_FRACTION",
    "MetalEcoReport",
    "SpareCellError",
    "SpareCellPlan",
    "sprinkle_spare_cells",
    "strengthen_driver_metal_only",
]
