"""Stage timers and throughput counters for the flow's kernels.

A :class:`PerfRegistry` accumulates, per named stage, wall-clock time,
call counts, and arbitrary work counters ("patterns", "wafers",
"moves", ...).  Kernels report through the module-level
:data:`REGISTRY` so a whole CLI run can print one breakdown at the end:

    with stage_timer("dft.fault_sim") as stats:
        ...
        stats.add(patterns=width)

    print(perf_report())

The registry is intentionally simple: plain dict + ``perf_counter``,
no threads, no sampling.  Overhead per timed stage is ~1 us, which is
negligible against the kernels it wraps.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StageStats:
    """Accumulated timing and work counters for one named stage."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    def add(self, **counters: float) -> None:
        """Accumulate work counters (e.g. ``stats.add(patterns=64)``)."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value

    def rate(self, counter: str) -> float:
        """Counter units per second of stage time (0 if untimed)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.counters.get(counter, 0.0) / self.seconds


class PerfRegistry:
    """A collection of named :class:`StageStats`."""

    def __init__(self) -> None:
        self._stages: dict[str, StageStats] = {}

    def stage(self, name: str) -> StageStats:
        stats = self._stages.get(name)
        if stats is None:
            stats = self._stages[name] = StageStats(name)
        return stats

    @contextmanager
    def timer(self, name: str) -> Iterator[StageStats]:
        """Time one call of a stage; yields its stats for counters."""
        stats = self.stage(name)
        start = time.perf_counter()
        try:
            yield stats
        finally:
            stats.seconds += time.perf_counter() - start
            stats.calls += 1

    def count(self, name: str, **counters: float) -> None:
        """Bump counters on a stage without timing it."""
        self.stage(name).add(**counters)

    def reset(self) -> None:
        self._stages.clear()

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Flat serializable snapshot (for ``BENCH_*.json`` etc.)."""
        out: dict[str, dict[str, float]] = {}
        for name, stats in sorted(self._stages.items()):
            row: dict[str, float] = {
                "calls": float(stats.calls),
                "seconds": stats.seconds,
            }
            for key, value in stats.counters.items():
                row[key] = value
                rate = stats.rate(key)
                if rate:
                    row[f"{key}_per_s"] = rate
            out[name] = row
        return out

    def report(self) -> str:
        """Human-readable stage-time breakdown."""
        if not self._stages:
            return "perf: no stages recorded"
        lines = ["perf stage breakdown",
                 f"  {'stage':34s} {'calls':>6s} {'seconds':>9s}  work"]
        for name in sorted(self._stages):
            stats = self._stages[name]
            work = "  ".join(
                f"{key}={value:,.0f} ({stats.rate(key):,.0f}/s)"
                for key, value in sorted(stats.counters.items())
            )
            lines.append(
                f"  {name:34s} {stats.calls:6d} {stats.seconds:9.3f}  {work}"
            )
        return "\n".join(lines)


#: Process-wide registry all flow kernels report through.
REGISTRY = PerfRegistry()


def stage_timer(name: str):
    """Time a stage on the module-level registry."""
    return REGISTRY.timer(name)


def perf_report() -> str:
    """Render the module-level registry."""
    return REGISTRY.report()


def reset_metrics() -> None:
    """Clear the module-level registry."""
    REGISTRY.reset()
