"""Execution engine and instrumentation for the flow's hot loops.

Two halves:

* :mod:`repro.perf.metrics` -- lightweight stage timers and throughput
  counters.  Every ported kernel (fault simulation, wafer Monte Carlo,
  placement annealing) reports through the module-level registry, and
  ``python -m repro --perf <command>`` prints the stage-time breakdown
  after the command completes.
* :mod:`repro.perf.executor` -- deterministic process-pool fan-out.
  Work is partitioned up front, results are merged in task order, and
  every parallel entry point in the flow is seed-stable regardless of
  worker count (one worker, serial inline execution, is always the
  reference).
"""

from .metrics import (
    REGISTRY,
    PerfRegistry,
    StageStats,
    perf_report,
    reset_metrics,
    stage_timer,
)
from .executor import (
    WORKERS_ENV,
    FanoutTaskError,
    fanout,
    resolve_workers,
)

__all__ = [
    "REGISTRY",
    "PerfRegistry",
    "StageStats",
    "perf_report",
    "reset_metrics",
    "stage_timer",
    "WORKERS_ENV",
    "FanoutTaskError",
    "fanout",
    "resolve_workers",
]
