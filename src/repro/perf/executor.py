"""Deterministic process-pool fan-out.

:func:`fanout` runs one picklable worker function over a list of
tasks and returns results **in task order**, so callers can merge
deterministically no matter how many workers raced.  The contract
every parallel entry point in the flow builds on:

* work is partitioned *before* execution (no work stealing that could
  reorder results);
* ``workers=1`` (or a single task) executes serially inline -- that is
  the reference behaviour the parallel path must reproduce bit-for-bit;
* randomness is never shared across tasks -- callers pass explicit
  per-task seeds / spawned ``numpy.random.Generator`` streams, so the
  answer is a pure function of the task list.

Worker-count resolution: explicit argument, else the ``REPRO_WORKERS``
environment variable, else ``os.cpu_count()``.  If the pool cannot be
used (unpicklable work, restricted environment), :func:`fanout` falls
back to serial execution -- same results, no parallelism.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from .metrics import REGISTRY

try:  # concurrent.futures raises this once a pool has died mid-flight
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - always present on CPython 3.10+
    BrokenProcessPool = OSError

#: Environment variable consulted when no worker count is passed.
WORKERS_ENV = "REPRO_WORKERS"

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument > env > cpu count (min 1)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "")
        if env.strip():
            try:
                workers = int(env)
            except ValueError:
                workers = None
        if workers is None:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def fanout(
    worker: Callable[[_Task], _Result],
    tasks: Sequence[_Task],
    *,
    workers: int | None = None,
    stage: str | None = None,
) -> list[_Result]:
    """Run ``worker`` over ``tasks``; results in task order.

    ``worker`` must be a module-level function and each task must be
    picklable for the process-pool path; otherwise execution silently
    degrades to serial (identical results).  When ``stage`` is given
    the whole fan-out is timed on the perf registry with a ``tasks``
    counter.
    """
    tasks = list(tasks)
    n_workers = min(resolve_workers(workers), len(tasks))

    def _run() -> list[_Result]:
        if n_workers <= 1:
            return [worker(task) for task in tasks]
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                return list(pool.map(worker, tasks))
        except (pickle.PicklingError, AttributeError, TypeError, OSError,
                ImportError, BrokenProcessPool):
            # Unpicklable work or a restricted environment: the workers
            # are pure functions of their task, so a serial rerun is
            # safe and yields the same results.
            return [worker(task) for task in tasks]

    if stage is None:
        return _run()
    with REGISTRY.timer(stage) as stats:
        results = _run()
        stats.add(tasks=len(tasks))
    return results
