"""Deterministic process-pool fan-out.

:func:`fanout` runs one picklable worker function over a list of
tasks and returns results **in task order**, so callers can merge
deterministically no matter how many workers raced.  The contract
every parallel entry point in the flow builds on:

* work is partitioned *before* execution (no work stealing that could
  reorder results);
* ``workers=1`` (or a single task) executes serially inline -- that is
  the reference behaviour the parallel path must reproduce bit-for-bit;
* randomness is never shared across tasks -- callers pass explicit
  per-task seeds / spawned ``numpy.random.Generator`` streams, so the
  answer is a pure function of the task list.

Worker-count resolution: explicit argument, else the ``REPRO_WORKERS``
environment variable, else ``os.cpu_count()``.  If the pool cannot be
used (unpicklable work, restricted environment), :func:`fanout` falls
back to serial execution -- same results, no parallelism.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

from .metrics import REGISTRY

try:  # concurrent.futures raises this once a pool has died mid-flight
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - always present on CPython 3.10+
    BrokenProcessPool = OSError

#: Environment variable consulted when no worker count is passed.
WORKERS_ENV = "REPRO_WORKERS"

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class FanoutTaskError(RuntimeError):
    """One task of a fan-out failed; carries *which* one.

    A bare exception out of ``pool.map`` loses the task it came from --
    all the caller sees is a traceback re-raised in the parent.  When
    ``fanout`` is given ``labels`` (or a ``stage``), worker exceptions
    are re-raised as this type with the originating task's label and
    the stage attached, and the original exception chained as
    ``__cause__``.
    """

    def __init__(self, message: str, *, label: str,
                 stage: str | None = None) -> None:
        super().__init__(message)
        self.label = label
        self.stage = stage


def _guarded_call(
    packed: tuple[Callable[[Any], Any], Any, str],
) -> tuple[bool, Any]:
    """Run one labelled task; capture the exception instead of raising.

    Module-level so the tuple stream is picklable into pool workers.
    Returns ``(True, result)`` or ``(False, (label, exception))`` --
    the exception object itself travels back so the parent can chain
    it under :class:`FanoutTaskError`.
    """
    worker, task, label = packed
    try:
        return True, worker(task)
    except Exception as exc:  # noqa: BLE001 - re-raised labelled below
        return False, (label, exc)


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument > env > cpu count (min 1)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "")
        if env.strip():
            try:
                workers = int(env)
            except ValueError:
                workers = None
        if workers is None:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def fanout(
    worker: Callable[[_Task], _Result],
    tasks: Sequence[_Task],
    *,
    workers: int | None = None,
    stage: str | None = None,
    labels: Sequence[str] | None = None,
) -> list[_Result]:
    """Run ``worker`` over ``tasks``; results in task order.

    ``worker`` must be a module-level function and each task must be
    picklable for the process-pool path; otherwise execution silently
    degrades to serial (identical results).  When ``stage`` is given
    the whole fan-out is timed on the perf registry with a ``tasks``
    counter.

    When ``labels`` names the tasks (one string per task; defaults to
    ``{stage}[{index}]`` when only ``stage`` is given), a worker exception
    surfaces as :class:`FanoutTaskError` carrying the failing task's
    label and the stage, with the original exception as its cause --
    instead of a bare traceback that does not say which task died.
    """
    tasks = list(tasks)
    n_workers = min(resolve_workers(workers), len(tasks))
    task_labels: list[str] | None = None
    if labels is not None:
        task_labels = [str(label) for label in labels]
        if len(task_labels) != len(tasks):
            raise ValueError(
                f"labels/tasks length mismatch: {len(task_labels)} "
                f"labels for {len(tasks)} tasks"
            )
    elif stage is not None:
        task_labels = [f"{stage}[{index}]"
                       for index in range(len(tasks))]

    def _raise_labelled(label: str, exc: Exception) -> None:
        where = f"stage {stage!r}, " if stage else ""
        raise FanoutTaskError(
            f"fanout task failed ({where}task {label!r}): "
            f"{type(exc).__name__}: {exc}",
            label=label, stage=stage,
        ) from exc

    def _run_serial() -> list[_Result]:
        if task_labels is None:
            return [worker(task) for task in tasks]
        results = []
        for task, label in zip(tasks, task_labels):
            try:
                results.append(worker(task))
            except FanoutTaskError:
                raise
            except Exception as exc:  # noqa: BLE001 - re-raised labelled
                _raise_labelled(label, exc)
        return results

    def _run() -> list[_Result]:
        if n_workers <= 1:
            return _run_serial()
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                if task_labels is None:
                    return list(pool.map(worker, tasks))
                outcomes = list(pool.map(
                    _guarded_call,
                    [(worker, task, label)
                     for task, label in zip(tasks, task_labels)],
                ))
        except (pickle.PicklingError, AttributeError, TypeError, OSError,
                ImportError, BrokenProcessPool):
            # Unpicklable work or a restricted environment: the workers
            # are pure functions of their task, so a serial rerun is
            # safe and yields the same results.
            return _run_serial()
        results = []
        for ok, value in outcomes:
            if not ok:
                label, exc = value
                _raise_labelled(label, exc)
            results.append(value)
        return results

    if stage is None:
        return _run()
    with REGISTRY.timer(stage) as stats:
        results = _run()
        stats.add(tasks=len(tasks))
    return results
