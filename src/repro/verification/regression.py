"""Regression running and cross-simulator consistency checking.

Experiment E13 lives here: the same suite is executed under both
vendor dialects (:data:`repro.sim.VENDOR_A_SIM` /
:data:`repro.sim.VENDOR_B_SIM`) and per-bench verdicts and traces are
compared.  A bench whose result depends on the simulator is exactly
the "inconsistency between simulators/versions among customer, IP
vendors and us" that cost the paper's team sign-off time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..netlist import Module
from ..perf import fanout, resolve_workers
from ..sim import (
    BatchSimulator,
    SimulatorConfig,
    Trace,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
)
from .testbench import Testbench, TestbenchResult


@dataclass
class RegressionReport:
    """Suite results under one simulator dialect."""

    dialect: str
    results: list[TestbenchResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    @property
    def clean(self) -> bool:
        return self.failed == 0

    @property
    def total_duration_s(self) -> float:
        """Wall-clock total across all benches."""
        return sum(r.duration_s for r in self.results)

    def format_report(self) -> str:
        lines = [f"Regression under {self.dialect}: "
                 f"{self.passed}/{len(self.results)} pass "
                 f"({self.total_duration_s * 1e3:.1f} ms)"]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            lines.append(f"  {result.name:30s} {status} "
                         f"{result.duration_s * 1e3:8.1f} ms")
            for mismatch in result.mismatches[:3]:
                lines.append(f"      {mismatch}")
        # Failure-summary footer: the one line a triager reads first.
        if self.clean:
            lines.append(f"  all {len(self.results)} benches passed")
        else:
            failing = [r.name for r in self.results if not r.passed]
            shown = ", ".join(failing[:5])
            if len(failing) > 5:
                shown += f", ... +{len(failing) - 5} more"
            lines.append(f"  FAILURES ({len(failing)}): {shown}")
        return "\n".join(lines)


def _bench_worker(task: tuple) -> TestbenchResult:
    """Module-level worker so suites can fan out across processes."""
    module, bench, config = task
    return bench.run(module, config)


def _bench_group_worker(task: tuple) -> list[TestbenchResult]:
    """Run a group of benches as lanes of one compiled sweep.

    Every bench in the group shares a clock/reset protocol (enforced
    by the grouping in :func:`run_regression`), so the reset preamble
    applies to all lanes at once and each bench's stimulus rides its
    own lane.  Verdicts and traces equal a per-bench event run;
    durations split the group's wall clock evenly (telemetry only).
    """
    module, benches, config = task
    started = time.perf_counter()
    lanes = len(benches)
    lead = benches[0]
    sim = BatchSimulator(module, config, lanes=lanes)
    ties = {lead.clock_port: 0}
    for port_name, port in module.ports.items():
        if port.direction != "input":
            continue
        if port_name.startswith("scan_") or port_name == "scan_en":
            ties[port_name] = 0
    has_reset = (lead.reset_port is not None
                 and lead.reset_port in module.ports)
    if has_reset:
        sim.set_inputs({**ties, lead.reset_port: 0})
        sim.evaluate()
        for _ in range(lead.reset_cycles):
            sim.clock_edge(lead.clock_port)
        sim.set_input(lead.reset_port, 1)

    default_watch = tuple(sorted(
        name for name, port in module.ports.items()
        if port.direction == "output"
    ))
    watches = [bench.watch if bench.watch is not None else default_watch
               for bench in benches]
    traces = [Trace(signals=watch) for watch in watches]
    mismatches: list[list[str]] = [[] for _ in benches]
    cycles = max(len(bench.stimulus) for bench in benches)
    for cycle in range(cycles):
        vectors = []
        for bench in benches:
            if cycle < len(bench.stimulus):
                vector = {**ties, **bench.stimulus[cycle]}
                if has_reset:
                    vector[lead.reset_port] = 1
            else:
                vector = {}  # finished lane: inputs hold
            vectors.append(vector)
        sim.set_lane_inputs(vectors)
        sim.clock_edge(lead.clock_port)
        for lane, bench in enumerate(benches):
            if cycle >= len(bench.stimulus):
                continue
            outputs = {s: sim.read(s, lane) for s in watches[lane]}
            traces[lane].record(outputs)
            error = bench.checker(cycle, outputs)
            if error:
                mismatches[lane].append(f"cycle {cycle}: {error}")
    elapsed = time.perf_counter() - started
    return [
        TestbenchResult(
            name=bench.name,
            passed=not mismatches[lane],
            cycles=len(bench.stimulus),
            mismatches=mismatches[lane],
            trace=traces[lane],
            duration_s=elapsed / lanes,
        )
        for lane, bench in enumerate(benches)
    ]


def run_regression(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config: SimulatorConfig | None = None,
    workers: int | None = None,
    engine: str = "event",
) -> RegressionReport:
    """Run every bench under one dialect.

    ``workers > 1`` fans benches out over the deterministic process
    pool (results merge in suite order, so the report is identical to
    a serial run); benches with unpicklable checkers fall back to
    serial execution automatically.

    ``engine="compiled"`` groups benches that share a clock/reset
    protocol and runs each group's stimuli as parallel lanes of one
    :class:`~repro.sim.BatchSimulator` sweep (chunked across workers),
    with verdicts and traces bit-identical to the event engine.
    """
    config = config or VENDOR_A_SIM
    if engine not in ("compiled", "event"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "compiled":
        # Group benches sharing a preamble; keep each bench's suite
        # position so results merge back in order.
        groups: dict[tuple, list[int]] = {}
        for index, bench in enumerate(testbenches):
            reset = (bench.reset_port
                     if bench.reset_port is not None
                     and bench.reset_port in module.ports else None)
            key = (bench.clock_port, reset,
                   bench.reset_cycles if reset else 0)
            groups.setdefault(key, []).append(index)
        # Split each group into at most ``workers`` chunks so the
        # process fan-out still helps when one group dominates.
        n_workers = resolve_workers(workers)
        tasks: list[tuple] = []
        task_indices: list[list[int]] = []
        for indices in groups.values():
            n_chunks = min(n_workers, len(indices))
            for chunk in range(n_chunks):
                sel = indices[chunk::n_chunks]
                tasks.append(
                    (module, [testbenches[i] for i in sel], config)
                )
                task_indices.append(sel)
        chunked = fanout(_bench_group_worker, tasks, workers=workers,
                         stage="verification.regression")
        ordered: list[TestbenchResult | None] = [None] * len(testbenches)
        for sel, chunk_results in zip(task_indices, chunked):
            for i, result in zip(sel, chunk_results):
                ordered[i] = result
        return RegressionReport(
            dialect=config.name,
            results=[r for r in ordered if r is not None],
        )
    results = fanout(
        _bench_worker,
        [(module, bench, config) for bench in testbenches],
        workers=workers,
        stage="verification.regression",
    )
    return RegressionReport(dialect=config.name, results=list(results))


@dataclass
class CrossSimReport:
    """Dialect-to-dialect comparison of one suite."""

    report_a: RegressionReport
    report_b: RegressionReport
    verdict_mismatches: list[str] = field(default_factory=list)
    trace_mismatch_counts: dict[str, int] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.verdict_mismatches and not any(
            count for count in self.trace_mismatch_counts.values()
        )

    @property
    def total_trace_mismatches(self) -> int:
        return sum(self.trace_mismatch_counts.values())

    def format_report(self) -> str:
        lines = [
            "Cross-simulator consistency "
            f"({self.report_a.dialect} vs {self.report_b.dialect})",
            f"  verdict mismatches : {len(self.verdict_mismatches)}",
            f"  trace mismatches   : {self.total_trace_mismatches}",
            f"  consistent         : {self.consistent}",
        ]
        for name in self.verdict_mismatches:
            lines.append(f"    verdict differs: {name}")
        return "\n".join(lines)


def cross_simulator_check(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
    workers: int | None = None,
    engine: str = "event",
) -> CrossSimReport:
    """Run the suite under two dialects and reconcile (E13)."""
    report_a = run_regression(module, testbenches, config=config_a,
                              workers=workers, engine=engine)
    report_b = run_regression(module, testbenches, config=config_b,
                              workers=workers, engine=engine)
    cross = CrossSimReport(report_a, report_b)
    for result_a, result_b in zip(report_a.results, report_b.results):
        if result_a.passed != result_b.passed:
            cross.verdict_mismatches.append(result_a.name)
        if result_a.trace is not None and result_b.trace is not None:
            mismatches = diff_traces(result_a.trace, result_b.trace)
            cross.trace_mismatch_counts[result_a.name] = len(mismatches)
    return cross
