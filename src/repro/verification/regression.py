"""Regression running and cross-simulator consistency checking.

Experiment E13 lives here: the same suite is executed under both
vendor dialects (:data:`repro.sim.VENDOR_A_SIM` /
:data:`repro.sim.VENDOR_B_SIM`) and per-bench verdicts and traces are
compared.  A bench whose result depends on the simulator is exactly
the "inconsistency between simulators/versions among customer, IP
vendors and us" that cost the paper's team sign-off time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..netlist import Module
from ..sim import (
    SimulatorConfig,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
)
from .testbench import Testbench, TestbenchResult


@dataclass
class RegressionReport:
    """Suite results under one simulator dialect."""

    dialect: str
    results: list[TestbenchResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    @property
    def clean(self) -> bool:
        return self.failed == 0

    def format_report(self) -> str:
        lines = [f"Regression under {self.dialect}: "
                 f"{self.passed}/{len(self.results)} pass"]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            lines.append(f"  {result.name:30s} {status}")
            for mismatch in result.mismatches[:3]:
                lines.append(f"      {mismatch}")
        return "\n".join(lines)


def run_regression(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config: SimulatorConfig | None = None,
) -> RegressionReport:
    """Run every bench under one dialect."""
    config = config or VENDOR_A_SIM
    report = RegressionReport(dialect=config.name)
    for bench in testbenches:
        report.results.append(bench.run(module, config))
    return report


@dataclass
class CrossSimReport:
    """Dialect-to-dialect comparison of one suite."""

    report_a: RegressionReport
    report_b: RegressionReport
    verdict_mismatches: list[str] = field(default_factory=list)
    trace_mismatch_counts: dict[str, int] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.verdict_mismatches and not any(
            count for count in self.trace_mismatch_counts.values()
        )

    @property
    def total_trace_mismatches(self) -> int:
        return sum(self.trace_mismatch_counts.values())

    def format_report(self) -> str:
        lines = [
            "Cross-simulator consistency "
            f"({self.report_a.dialect} vs {self.report_b.dialect})",
            f"  verdict mismatches : {len(self.verdict_mismatches)}",
            f"  trace mismatches   : {self.total_trace_mismatches}",
            f"  consistent         : {self.consistent}",
        ]
        for name in self.verdict_mismatches:
            lines.append(f"    verdict differs: {name}")
        return "\n".join(lines)


def cross_simulator_check(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
) -> CrossSimReport:
    """Run the suite under two dialects and reconcile (E13)."""
    report_a = run_regression(module, testbenches, config=config_a)
    report_b = run_regression(module, testbenches, config=config_b)
    cross = CrossSimReport(report_a, report_b)
    for result_a, result_b in zip(report_a.results, report_b.results):
        if result_a.passed != result_b.passed:
            cross.verdict_mismatches.append(result_a.name)
        if result_a.trace is not None and result_b.trace is not None:
            mismatches = diff_traces(result_a.trace, result_b.trace)
            cross.trace_mismatch_counts[result_a.name] = len(mismatches)
    return cross
