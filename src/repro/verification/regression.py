"""Regression running and cross-simulator consistency checking.

Experiment E13 lives here: the same suite is executed under both
vendor dialects (:data:`repro.sim.VENDOR_A_SIM` /
:data:`repro.sim.VENDOR_B_SIM`) and per-bench verdicts and traces are
compared.  A bench whose result depends on the simulator is exactly
the "inconsistency between simulators/versions among customer, IP
vendors and us" that cost the paper's team sign-off time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..netlist import Module
from ..perf import fanout
from ..sim import (
    SimulatorConfig,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
)
from .testbench import Testbench, TestbenchResult


@dataclass
class RegressionReport:
    """Suite results under one simulator dialect."""

    dialect: str
    results: list[TestbenchResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def failed(self) -> int:
        return len(self.results) - self.passed

    @property
    def clean(self) -> bool:
        return self.failed == 0

    @property
    def total_duration_s(self) -> float:
        """Wall-clock total across all benches."""
        return sum(r.duration_s for r in self.results)

    def format_report(self) -> str:
        lines = [f"Regression under {self.dialect}: "
                 f"{self.passed}/{len(self.results)} pass "
                 f"({self.total_duration_s * 1e3:.1f} ms)"]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            lines.append(f"  {result.name:30s} {status} "
                         f"{result.duration_s * 1e3:8.1f} ms")
            for mismatch in result.mismatches[:3]:
                lines.append(f"      {mismatch}")
        # Failure-summary footer: the one line a triager reads first.
        if self.clean:
            lines.append(f"  all {len(self.results)} benches passed")
        else:
            failing = [r.name for r in self.results if not r.passed]
            shown = ", ".join(failing[:5])
            if len(failing) > 5:
                shown += f", ... +{len(failing) - 5} more"
            lines.append(f"  FAILURES ({len(failing)}): {shown}")
        return "\n".join(lines)


def _bench_worker(task: tuple) -> TestbenchResult:
    """Module-level worker so suites can fan out across processes."""
    module, bench, config = task
    return bench.run(module, config)


def run_regression(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config: SimulatorConfig | None = None,
    workers: int | None = None,
) -> RegressionReport:
    """Run every bench under one dialect.

    ``workers > 1`` fans benches out over the deterministic process
    pool (results merge in suite order, so the report is identical to
    a serial run); benches with unpicklable checkers fall back to
    serial execution automatically.
    """
    config = config or VENDOR_A_SIM
    results = fanout(
        _bench_worker,
        [(module, bench, config) for bench in testbenches],
        workers=workers,
        stage="verification.regression",
    )
    return RegressionReport(dialect=config.name, results=list(results))


@dataclass
class CrossSimReport:
    """Dialect-to-dialect comparison of one suite."""

    report_a: RegressionReport
    report_b: RegressionReport
    verdict_mismatches: list[str] = field(default_factory=list)
    trace_mismatch_counts: dict[str, int] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return not self.verdict_mismatches and not any(
            count for count in self.trace_mismatch_counts.values()
        )

    @property
    def total_trace_mismatches(self) -> int:
        return sum(self.trace_mismatch_counts.values())

    def format_report(self) -> str:
        lines = [
            "Cross-simulator consistency "
            f"({self.report_a.dialect} vs {self.report_b.dialect})",
            f"  verdict mismatches : {len(self.verdict_mismatches)}",
            f"  trace mismatches   : {self.total_trace_mismatches}",
            f"  consistent         : {self.consistent}",
        ]
        for name in self.verdict_mismatches:
            lines.append(f"    verdict differs: {name}")
        return "\n".join(lines)


def cross_simulator_check(
    module: Module,
    testbenches: Sequence[Testbench],
    *,
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
    workers: int | None = None,
) -> CrossSimReport:
    """Run the suite under two dialects and reconcile (E13)."""
    report_a = run_regression(module, testbenches, config=config_a,
                              workers=workers)
    report_b = run_regression(module, testbenches, config=config_b,
                              workers=workers)
    cross = CrossSimReport(report_a, report_b)
    for result_a, result_b in zip(report_a.results, report_b.results):
        if result_a.passed != result_b.passed:
            cross.verdict_mismatches.append(result_a.name)
        if result_a.trace is not None and result_b.trace is not None:
            mismatches = diff_traces(result_a.trace, result_b.trace)
            cross.trace_mismatch_counts[result_a.name] = len(mismatches)
    return cross
