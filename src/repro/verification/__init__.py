"""Verification: testbenches, regression, cross-simulator checks."""

from .testbench import (
    Testbench,
    TestbenchResult,
    random_stimulus,
    toggle_coverage,
)
from .regression import (
    CrossSimReport,
    RegressionReport,
    cross_simulator_check,
    run_regression,
)
from .emulation import (
    CampaignPlan,
    CampaignSpec,
    EMULATOR,
    SIMULATOR,
    VerificationPlatform,
    best_strategy,
    plan_emulator_only,
    plan_hybrid,
    plan_simulator_only,
)

__all__ = [
    "Testbench",
    "TestbenchResult",
    "random_stimulus",
    "toggle_coverage",
    "CrossSimReport",
    "RegressionReport",
    "cross_simulator_check",
    "run_regression",
    "CampaignPlan",
    "CampaignSpec",
    "EMULATOR",
    "SIMULATOR",
    "VerificationPlatform",
    "best_strategy",
    "plan_emulator_only",
    "plan_hybrid",
    "plan_simulator_only",
]
