"""Verification: testbenches, regression, cross-simulator checks."""

from .testbench import (
    Testbench,
    TestbenchResult,
    random_stimulus,
    toggle_coverage,
)
from .regression import (
    CrossSimReport,
    RegressionReport,
    cross_simulator_check,
    run_regression,
)
from .crossval import (
    DivergenceValidation,
    cross_validate_divergence,
    observed_divergent_nets,
)
from .emulation import (
    CampaignPlan,
    CampaignSpec,
    EMULATOR,
    SIMULATOR,
    VerificationPlatform,
    best_strategy,
    plan_emulator_only,
    plan_hybrid,
    plan_simulator_only,
)

__all__ = [
    "Testbench",
    "TestbenchResult",
    "random_stimulus",
    "toggle_coverage",
    "CrossSimReport",
    "RegressionReport",
    "cross_simulator_check",
    "run_regression",
    "DivergenceValidation",
    "cross_validate_divergence",
    "observed_divergent_nets",
    "CampaignPlan",
    "CampaignSpec",
    "EMULATOR",
    "SIMULATOR",
    "VerificationPlatform",
    "best_strategy",
    "plan_emulator_only",
    "plan_hybrid",
    "plan_simulator_only",
]
