"""Testbench framework.

Section 2's lesson: "We encountered the problem of in-consistent and
in-sufficient test benches.  Therefore, developing test bench as the
project goes is very important."  The framework makes a testbench a
first-class object -- stimulus program, golden reference, pass/fail --
so a regression suite can measure their sufficiency (toggle coverage)
and consistency (same verdict under every simulator dialect).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..netlist import Logic, Module
from ..sim import BatchSimulator, LogicSimulator, SimulatorConfig, Trace


@dataclass
class TestbenchResult:
    """Verdict of one testbench run."""

    __test__ = False  # not a pytest collection target

    name: str
    passed: bool
    cycles: int
    mismatches: list[str] = field(default_factory=list)
    trace: Trace | None = None
    duration_s: float = 0.0


@dataclass
class Testbench:
    """A reusable stimulus + checker for one module.

    ``stimulus`` is a list of input vectors (one per clock cycle);
    ``checker`` receives (cycle, output values) and returns an error
    string or None.  ``reset_cycles`` holds reset low first, making the
    bench dialect-independent (the paper's sign-off twist came from
    benches that were not).
    """

    name: str
    stimulus: Sequence[Mapping[str, int]]
    checker: Callable[[int, dict[str, Logic]], str | None]
    clock_port: str = "clk"
    reset_port: str | None = "rst_n"
    reset_cycles: int = 1
    watch: tuple[str, ...] | None = None

    __test__ = False  # not a pytest collection target

    def run(
        self,
        module: Module,
        config: SimulatorConfig | None = None,
        *,
        engine: str = "event",
    ) -> TestbenchResult:
        """Execute against a module under one simulator dialect.

        ``engine`` picks the simulation backend: ``"event"`` (default)
        is the interpreted reference, ``"compiled"`` a one-lane
        :class:`~repro.sim.BatchSimulator` -- verdict and trace are
        bit-identical (suites batch lanes via
        :func:`repro.verification.run_regression` instead).
        """
        started = time.perf_counter()
        sim: LogicSimulator | BatchSimulator
        if engine == "compiled":
            sim = BatchSimulator(module, config, lanes=1)
        elif engine == "event":
            sim = LogicSimulator(module, config)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        ties = {self.clock_port: 0}
        for port_name, port in module.ports.items():
            if port.direction != "input":
                continue
            if port_name.startswith("scan_") or port_name == "scan_en":
                ties[port_name] = 0
        if self.reset_port and self.reset_port in module.ports:
            sim.set_inputs({**ties, self.reset_port: 0})
            sim.evaluate()
            for _ in range(self.reset_cycles):
                sim.clock_edge(self.clock_port)
            sim.set_input(self.reset_port, 1)

        watch = self.watch
        if watch is None:
            watch = tuple(sorted(
                name for name, port in module.ports.items()
                if port.direction == "output"
            ))
        trace = Trace(signals=watch)
        mismatches: list[str] = []
        for cycle, vector in enumerate(self.stimulus):
            sim.set_inputs({**ties, **vector})
            if self.reset_port and self.reset_port in module.ports:
                sim.set_input(self.reset_port, 1)
            sim.clock_edge(self.clock_port)
            outputs = {s: sim.read(s) for s in watch}
            trace.record(outputs)
            error = self.checker(cycle, outputs)
            if error:
                mismatches.append(f"cycle {cycle}: {error}")
        return TestbenchResult(
            name=self.name,
            passed=not mismatches,
            cycles=len(self.stimulus),
            mismatches=mismatches,
            trace=trace,
            duration_s=time.perf_counter() - started,
        )


def random_stimulus(
    module: Module,
    *,
    cycles: int,
    seed: int,
    exclude: tuple[str, ...] = ("clk", "rst_n", "scan_en"),
) -> list[dict[str, int]]:
    """Uniform random vectors over the module's data inputs."""
    rng = np.random.default_rng(seed)
    inputs = [
        name
        for name, port in module.ports.items()
        if port.direction == "input" and name not in exclude
        and not name.startswith("scan_in")
    ]
    return [
        {name: int(rng.integers(0, 2)) for name in inputs}
        for _ in range(cycles)
    ]


def toggle_coverage(module: Module, testbenches: Sequence[Testbench],
                    config: SimulatorConfig | None = None) -> float:
    """Fraction of nets that toggled (saw both 0 and 1) across a suite.

    The classic cheap sufficiency metric: a bench suite that leaves
    half the design static is "in-sufficient" in exactly the paper's
    sense.  Clock and reset infrastructure nets are excluded from the
    denominator, as coverage tools do.
    """
    infrastructure = {
        bench.clock_port for bench in testbenches
    } | {
        bench.reset_port for bench in testbenches
        if bench.reset_port is not None
    }
    seen_zero: set[str] = set()
    seen_one: set[str] = set()
    for bench in testbenches:
        sim = LogicSimulator(module, config)
        ties = {bench.clock_port: 0}
        if bench.reset_port and bench.reset_port in module.ports:
            sim.set_inputs({**ties, bench.reset_port: 0})
            sim.evaluate()
            sim.clock_edge(bench.clock_port)
            sim.set_input(bench.reset_port, 1)
        for vector in bench.stimulus:
            filtered = {k: v for k, v in vector.items()
                        if k in module.ports
                        and module.ports[k].direction == "input"}
            sim.set_inputs(filtered)
            sim.clock_edge(bench.clock_port)
            for net, value in sim.net_values.items():
                if value is Logic.ZERO:
                    seen_zero.add(net)
                elif value is Logic.ONE:
                    seen_one.add(net)
    countable = set(module.nets) - infrastructure
    if not countable:
        return 0.0
    return len(seen_zero & seen_one & countable) / len(countable)
