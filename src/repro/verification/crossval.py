"""Cross-validation of static divergence predictions against real
dual-dialect simulation.

The DIV rules of :mod:`repro.lint.analysis` *predict* which nets the
two simulator dialects can disagree on.  This harness closes the loop:
it runs the module under both dialects with identical stimulus, records
every net that actually diverged, and scores the prediction --

* **precision** -- predicted nets that really diverged (a false alarm
  is an imprecise but sound prediction);
* **recall** -- diverged nets that were predicted.  Recall below 1.0
  is a *soundness bug*: the analysis claimed "proven safe" about a net
  the simulators disagree on.  The seeded-bug corpus in
  ``tests/test_analysis.py`` pins both at 1.0.

The stimulus protocol matches the analysis's modelling assumptions
(binary inputs, reset discipline):

1. every input port is driven to a random binary value; the clock is
   held low and scan controls low;
2. if the module has a reset port it is asserted for the very first
   vector (the async reset settles before any sampling), then held
   deasserted -- flops with no working reset keep their power-on value;
3. several *settle vectors* are applied and sampled before the first
   clock edge: power-on divergence is widest before uninitialised
   flops get overwritten, and varying the data inputs exercises the
   combinational cones around the divergent state;
4. then ``cycles`` clocked vectors run, sampling every net after each
   edge.  Multiple seeds union their observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

import numpy as np

from ..netlist import Module
from ..sim import LogicSimulator, SimulatorConfig, VENDOR_A_SIM, VENDOR_B_SIM
from ..sim.compiled import BatchSimulator, lane_valid_words


def observed_divergent_nets(
    module: Module,
    *,
    cycles: int = 8,
    settle_vectors: int = 4,
    seed: int = 0,
    clock_port: str = "clk",
    reset_port: str = "rst_n",
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
) -> Set[str]:
    """Nets that actually differed between the two dialects."""
    sim_a = LogicSimulator(module, config_a)
    sim_b = LogicSimulator(module, config_b)
    rng = np.random.default_rng(seed)

    ties = {}
    if clock_port in module.ports:
        ties[clock_port] = 0
    for name, port in module.ports.items():
        if port.direction == "input" and (
            name.startswith("scan_") or name == "scan_en"
        ):
            ties[name] = 0
    data_ports = [
        name
        for name, port in module.ports.items()
        if port.direction == "input"
        and name not in ties and name != reset_port
    ]
    has_reset = (
        reset_port in module.ports
        and module.ports[reset_port].direction == "input"
    )

    divergent: Set[str] = set()

    def snapshot() -> None:
        values_a, values_b = sim_a.net_values, sim_b.net_values
        for net in module.nets:
            if values_a[net] is not values_b[net]:
                divergent.add(net)

    def apply(vector: dict) -> None:
        for sim in (sim_a, sim_b):
            sim.set_inputs(vector)
            sim.evaluate()

    # Power-on settle phase: reset discipline first, then a few data
    # vectors sampled before any clock edge.
    for index in range(max(1, settle_vectors)):
        vector = {name: int(rng.integers(0, 2)) for name in data_ports}
        vector.update(ties)
        if has_reset:
            vector[reset_port] = 0 if index == 0 else 1
        apply(vector)
        snapshot()

    # Clocked phase.
    can_clock = (
        clock_port in module.ports
        and module.ports[clock_port].direction == "input"
    )
    for _ in range(cycles):
        vector = {name: int(rng.integers(0, 2)) for name in data_ports}
        vector.update(ties)
        if has_reset:
            vector[reset_port] = 1
        apply(vector)
        if can_clock:
            sim_a.clock_edge(clock_port)
            sim_b.clock_edge(clock_port)
        snapshot()
    return divergent


def observed_divergent_nets_lanes(
    module: Module,
    *,
    cycles: int = 8,
    settle_vectors: int = 4,
    seeds: Sequence[int] = (0, 1, 2, 3),
    clock_port: str = "clk",
    reset_port: str = "rst_n",
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
) -> Set[str]:
    """Multi-seed divergence union as lanes of one compiled sweep.

    Seed *i* rides lane *i* of a :class:`~repro.sim.BatchSimulator`
    pair (one per dialect) and draws its vectors from the same rng
    stream the event path would, so the result equals the union of
    :func:`observed_divergent_nets` over ``seeds`` -- but both
    dialects' whole seed sweep costs two kernel passes per vector.
    """
    lanes = len(seeds)
    sim_a = BatchSimulator(module, config_a, lanes=lanes)
    sim_b = BatchSimulator(module, config_b, lanes=lanes)
    rngs = [np.random.default_rng(seed) for seed in seeds]

    ties = {}
    if clock_port in module.ports:
        ties[clock_port] = 0
    for name, port in module.ports.items():
        if port.direction == "input" and (
            name.startswith("scan_") or name == "scan_en"
        ):
            ties[name] = 0
    data_ports = [
        name
        for name, port in module.ports.items()
        if port.direction == "input"
        and name not in ties and name != reset_port
    ]
    has_reset = (
        reset_port in module.ports
        and module.ports[reset_port].direction == "input"
    )

    # Undriven tail lanes of the last word stay at power-on values,
    # which legitimately differ between dialects -- mask them out.
    valid = lane_valid_words(lanes, sim_a.words)
    diverged = np.zeros((sim_a.program.n_nets, sim_a.words),
                        dtype=np.uint64)

    def apply_vectors(index: int, *, reset_low: bool) -> None:
        vectors = []
        for rng in rngs:
            vector = {
                name: int(rng.integers(0, 2)) for name in data_ports
            }
            vector.update(ties)
            if has_reset:
                vector[reset_port] = 0 if reset_low else 1
            vectors.append(vector)
        sim_a.set_lane_inputs(vectors)
        sim_b.set_lane_inputs(vectors)
        sim_a.evaluate()
        sim_b.evaluate()

    def snapshot() -> None:
        np.bitwise_or(diverged, sim_a.divergence_words(sim_b) & valid,
                      out=diverged)

    for index in range(max(1, settle_vectors)):
        apply_vectors(index, reset_low=index == 0)
        snapshot()

    can_clock = (
        clock_port in module.ports
        and module.ports[clock_port].direction == "input"
    )
    for index in range(cycles):
        apply_vectors(index, reset_low=False)
        if can_clock:
            sim_a.clock_edge(clock_port)
            sim_b.clock_edge(clock_port)
        snapshot()

    hit = diverged.any(axis=1)
    names = sim_a.program.net_names
    return {names[i] for i in np.flatnonzero(hit)}


@dataclass(frozen=True)
class DivergenceValidation:
    """Scored comparison of predicted vs observed divergence."""

    module: str
    predicted: Tuple[str, ...]
    observed: Tuple[str, ...]

    @property
    def confirmed(self) -> Tuple[str, ...]:
        observed = set(self.observed)
        return tuple(n for n in self.predicted if n in observed)

    @property
    def false_alarms(self) -> Tuple[str, ...]:
        """Predicted but never observed (imprecision, not unsoundness)."""
        observed = set(self.observed)
        return tuple(n for n in self.predicted if n not in observed)

    @property
    def escapes(self) -> Tuple[str, ...]:
        """Observed but not predicted: a false 'proven safe' claim."""
        predicted = set(self.predicted)
        return tuple(n for n in self.observed if n not in predicted)

    @property
    def precision(self) -> float:
        if not self.predicted:
            return 1.0
        return len(self.confirmed) / len(self.predicted)

    @property
    def recall(self) -> float:
        if not self.observed:
            return 1.0
        return len(self.confirmed) / len(self.observed)

    @property
    def sound(self) -> bool:
        return not self.escapes

    def format_report(self) -> str:
        lines = [
            f"Divergence cross-validation for {self.module}",
            f"  predicted nets : {len(self.predicted)}",
            f"  observed nets  : {len(self.observed)}",
            f"  precision      : {self.precision:.2f}",
            f"  recall         : {self.recall:.2f}",
            f"  sound          : {self.sound}",
        ]
        if self.false_alarms:
            lines.append("  false alarms   : "
                         + ", ".join(self.false_alarms))
        if self.escapes:
            lines.append("  ESCAPES        : " + ", ".join(self.escapes))
        return "\n".join(lines)


def cross_validate_divergence(
    module: Module,
    *,
    cycles: int = 8,
    settle_vectors: int = 4,
    seeds: Sequence[int] = (0, 1, 2, 3),
    clock_port: str = "clk",
    reset_port: str = "rst_n",
    config_a: SimulatorConfig = VENDOR_A_SIM,
    config_b: SimulatorConfig = VENDOR_B_SIM,
    engine: str = "compiled",
) -> DivergenceValidation:
    """Predict, simulate under both dialects, and score.

    ``engine="compiled"`` (default) runs the multi-seed union as lanes
    of one compiled sweep per dialect; ``engine="event"`` runs one
    interpreted simulator pair per seed.  The verdict is identical.
    """
    from ..analysis import analyze_module, divergent_nets

    if engine not in ("compiled", "event"):
        raise ValueError(f"unknown engine {engine!r}")
    predicted = divergent_nets(analyze_module(module, config_a, config_b))
    if engine == "compiled":
        observed = observed_divergent_nets_lanes(
            module,
            cycles=cycles,
            settle_vectors=settle_vectors,
            seeds=seeds,
            clock_port=clock_port,
            reset_port=reset_port,
            config_a=config_a,
            config_b=config_b,
        )
    else:
        observed = set()
        for seed in seeds:
            observed |= observed_divergent_nets(
                module,
                cycles=cycles,
                settle_vectors=settle_vectors,
                seed=seed,
                clock_port=clock_port,
                reset_port=reset_port,
                config_a=config_a,
                config_b=config_b,
            )
    return DivergenceValidation(
        module=module.name,
        predicted=tuple(predicted),
        observed=tuple(sorted(observed)),
    )
