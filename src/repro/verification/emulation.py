"""Hybrid emulation/simulation campaign planning.

Section 3: "After whole system verification with hybrid
emulation/simulation, it was implemented in TSMC 0.25um..."  The
trade the team navigated: a gate-level simulator is slow but X-accurate
and compiles in minutes; an emulator runs orders of magnitude faster
but costs long compiles and two-state semantics.  For a campaign of
debug iterations plus bulk regression cycles there is a crossover, and
the hybrid (debug on the simulator, bulk on the emulator) dominates --
this module computes it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VerificationPlatform:
    """One execution vehicle for the system testbench."""

    name: str
    cycles_per_second: float
    compile_hours: float
    x_accurate: bool
    recompiles_per_debug_iteration: float = 1.0

    def run_hours(self, cycles: float) -> float:
        return cycles / self.cycles_per_second / 3600.0


#: A 2003-era gate-level logic simulator on a workstation, running the
#: FULL 240K-gate chip (system-level throughput, not block-level).
SIMULATOR = VerificationPlatform(
    "gate-level simulator", cycles_per_second=100.0,
    compile_hours=0.3, x_accurate=True,
)

#: A hardware emulator of the same era.
EMULATOR = VerificationPlatform(
    "emulator", cycles_per_second=500_000.0,
    compile_hours=30.0, x_accurate=False,
)


@dataclass(frozen=True)
class CampaignSpec:
    """The verification workload of the SoC project."""

    debug_iterations: int = 40          # RTL bug-fix loops
    debug_cycles_each: float = 50_000   # short directed runs
    regression_cycles: float = 2e8      # bulk system cycles (frames)


@dataclass
class CampaignPlan:
    """Wall-clock breakdown of one strategy."""

    strategy: str
    debug_hours: float
    regression_hours: float
    compile_hours: float

    @property
    def total_hours(self) -> float:
        return self.debug_hours + self.regression_hours + self.compile_hours

    @property
    def total_weeks(self) -> float:
        return self.total_hours / (24.0 * 7.0)

    def format_report(self) -> str:
        return (
            f"{self.strategy:24s} debug {self.debug_hours:8.1f} h  "
            f"regress {self.regression_hours:8.1f} h  "
            f"compile {self.compile_hours:7.1f} h  "
            f"total {self.total_weeks:5.1f} wk"
        )


def plan_simulator_only(spec: CampaignSpec,
                        simulator: VerificationPlatform = SIMULATOR
                        ) -> CampaignPlan:
    """Everything on the simulator."""
    debug = spec.debug_iterations * simulator.run_hours(
        spec.debug_cycles_each
    )
    compiles = (spec.debug_iterations
                * simulator.recompiles_per_debug_iteration
                * simulator.compile_hours)
    return CampaignPlan(
        strategy="simulator only",
        debug_hours=debug,
        regression_hours=simulator.run_hours(spec.regression_cycles),
        compile_hours=compiles + simulator.compile_hours,
    )


def plan_emulator_only(spec: CampaignSpec,
                       emulator: VerificationPlatform = EMULATOR
                       ) -> CampaignPlan:
    """Everything on the emulator: every debug fix pays a recompile."""
    debug = spec.debug_iterations * emulator.run_hours(
        spec.debug_cycles_each
    )
    compiles = (spec.debug_iterations
                * emulator.recompiles_per_debug_iteration
                * emulator.compile_hours)
    return CampaignPlan(
        strategy="emulator only",
        debug_hours=debug,
        regression_hours=emulator.run_hours(spec.regression_cycles),
        compile_hours=compiles + emulator.compile_hours,
    )


def plan_hybrid(spec: CampaignSpec,
                simulator: VerificationPlatform = SIMULATOR,
                emulator: VerificationPlatform = EMULATOR) -> CampaignPlan:
    """The paper's approach: debug on the simulator (X-accurate, cheap
    recompiles), bulk regression on the emulator (one compile)."""
    debug = spec.debug_iterations * simulator.run_hours(
        spec.debug_cycles_each
    )
    compiles = (spec.debug_iterations
                * simulator.recompiles_per_debug_iteration
                * simulator.compile_hours
                + emulator.compile_hours)  # one emulator build at the end
    return CampaignPlan(
        strategy="hybrid (sim + emu)",
        debug_hours=debug,
        regression_hours=emulator.run_hours(spec.regression_cycles),
        compile_hours=compiles,
    )


def best_strategy(spec: CampaignSpec) -> CampaignPlan:
    """The minimum-wall-clock plan for a campaign."""
    plans = [plan_simulator_only(spec), plan_emulator_only(spec),
             plan_hybrid(spec)]
    return min(plans, key=lambda p: p.total_hours)
