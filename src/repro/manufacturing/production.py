"""Mass-production planning (experiment E11).

Section 2 set the demand: "mass production of 3.5 million units in a
year"; Section 4 reports the outcome: "we went on to produce over
three millions of the chip over 18 months.  Our system customer was
able to take about 8% of world-wide market share during that period."

The simulator runs monthly wafer starts through the yield ramp of
:mod:`repro.manufacturing.ramp`, accumulates shipped units, and
derives the market share from a world DSC market model of the 2003-04
era (~40-50 M units/year, growing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ramp import DSC_DIE_AREA_MM2, RampResult, simulate_ramp
from .wafer import WaferSpec, gross_dies_per_wafer


@dataclass(frozen=True)
class MarketModel:
    """World DSC market, units per month."""

    base_units_per_month: float = 2.75e6  # ~33 M/year at ramp start
    monthly_growth: float = 0.012

    def units_in_month(self, month: int) -> float:
        return self.base_units_per_month * (1 + self.monthly_growth) ** month


@dataclass
class ProductionPlan:
    """Wafer starts per month."""

    wafers_per_month: list[int] = field(default_factory=list)

    @classmethod
    def ramped(cls, months: int, *, peak: int, ramp_months: int = 3
               ) -> "ProductionPlan":
        """Linear ramp to peak starts, then flat."""
        starts = []
        for month in range(months):
            if month < ramp_months:
                starts.append(int(peak * (month + 1) / (ramp_months + 1)))
            else:
                starts.append(peak)
        return cls(starts)


@dataclass
class ProductionResult:
    """Monthly and cumulative output."""

    months: list[int] = field(default_factory=list)
    units_shipped: list[int] = field(default_factory=list)
    yields: list[float] = field(default_factory=list)
    market_share: list[float] = field(default_factory=list)

    @property
    def total_units(self) -> int:
        return sum(self.units_shipped)

    @property
    def mean_market_share(self) -> float:
        if not self.market_share:
            return 0.0
        return sum(self.market_share) / len(self.market_share)

    def format_report(self) -> str:
        lines = [
            "Mass production",
            f"  total units : {self.total_units / 1e6:.2f} M over "
            f"{len(self.months)} months",
            f"  mean share  : {self.mean_market_share * 100:.1f}%",
            "  month  units(K)  yield  share",
        ]
        for month, units, y, share in zip(
            self.months, self.units_shipped, self.yields, self.market_share
        ):
            lines.append(
                f"  {month:5d}  {units / 1e3:8.0f}  {y * 100:5.1f}%"
                f"  {share * 100:5.1f}%"
            )
        return "\n".join(lines)


def simulate_production(
    *,
    months: int = 18,
    plan: ProductionPlan | None = None,
    ramp: RampResult | None = None,
    die_area_mm2: float = DSC_DIE_AREA_MM2,
    market: MarketModel | None = None,
    assembly_test_yield: float = 0.985,
    seed: int = 0,
) -> ProductionResult:
    """Run production against the yield ramp.

    The first 8 months follow the ramp trajectory; beyond that the
    final ramp yield holds.  Units = wafer starts x gross dies x probe
    yield x assembly/final-test yield.
    """
    if plan is None:
        # Peak sized for the ~3.5 M units/year demand at mature yield.
        plan = ProductionPlan.ramped(months, peak=800)
    if ramp is None:
        ramp = simulate_ramp(seed=seed)
    market = market or MarketModel()
    rng = np.random.default_rng(seed + 1)
    gross = gross_dies_per_wafer(WaferSpec(), die_area_mm2)

    result = ProductionResult()
    for month in range(months):
        if month < len(ramp.sampled_yield):
            month_yield = ramp.sampled_yield[month]
        else:
            month_yield = ramp.sampled_yield[-1]
        wafers = plan.wafers_per_month[min(month, len(plan.wafers_per_month) - 1)]
        good = rng.binomial(wafers * gross, month_yield)
        shipped = int(good * assembly_test_yield)
        share = shipped / market.units_in_month(month)
        result.months.append(month)
        result.units_shipped.append(shipped)
        result.yields.append(month_yield)
        result.market_share.append(share)
    return result
