"""The 8-month yield-learning ramp (experiment E7).

Section 3: "The mass production yield was enhanced from 82.7%
initially to very close to foundry's yield model of 93.4% over a
period of 8 months.  Our measures included optimizing probe card
overdrive spec, optimizing power relay waiting time, and retargeting
Isat and Vth by optimizing poly CD ... according to results from
corner lot splitting.  We also corrected the insufficient driving
strength problem by means of metal changes to utilize the spare
cells."

The simulation composes the yield stack of
:mod:`repro.manufacturing.yield_model` with the probe model and
applies each measure at its month; the expected-yield trajectory and a
Monte-Carlo wafer-level trajectory are both produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from .probe import ProbeCardSetup
from .yield_model import (
    DefectModel,
    ParametricModel,
    SystematicLoss,
    YieldStack,
)
from .corner_lots import retarget_from_split, run_corner_split
from .wafer import WaferSpec, gross_dies_per_wafer


@dataclass
class RampState:
    """Everything the ramp can change month to month."""

    stack: YieldStack
    probe: ProbeCardSetup
    #: The true (hidden) process CD miscentring the retarget corrects.
    process_cd_offset_um: float

    def measured_yield(self, die_area_mm2: float) -> float:
        base = self.stack.expected_yield(die_area_mm2)
        return base * (1.0 - self.probe.total_overkill())


@dataclass(frozen=True)
class RampMeasure:
    """One named improvement action applied at a given month."""

    name: str
    month: int
    apply: Callable[[RampState], RampState]


@dataclass
class RampResult:
    """Month-by-month ramp trajectory."""

    months: list[int] = field(default_factory=list)
    expected_yield: list[float] = field(default_factory=list)
    sampled_yield: list[float] = field(default_factory=list)
    events: list[tuple[int, str]] = field(default_factory=list)
    foundry_model_yield: float = 0.0

    def format_report(self) -> str:
        lines = [
            "Yield ramp",
            f"  foundry model: {self.foundry_model_yield * 100:.1f}%",
            "  month  expected  sampled  event",
        ]
        event_map = dict(self.events)
        for month, expected, sampled in zip(
            self.months, self.expected_yield, self.sampled_yield
        ):
            lines.append(
                f"  {month:5d}  {expected * 100:7.1f}%  {sampled * 100:6.1f}%"
                f"  {event_map.get(month, '')}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The DSC controller's calibrated starting point
# ---------------------------------------------------------------------------

#: DSC die: ~8.5 x 8.5 mm in 0.25 um (240K gates + 30 SRAMs + pads).
DSC_DIE_AREA_MM2 = 72.25
DSC_DIE_EDGE_MM = 8.5

#: The hidden poly-CD miscentring at production start.
INITIAL_CD_OFFSET_UM = 0.014

WEAK_BUFFER_LOSS = 0.05  # the paper's 5% yield killer


def initial_ramp_state() -> RampState:
    """Production month 0, calibrated to the paper's 82.7%."""
    stack = YieldStack(
        defect=DefectModel(d0_per_cm2=0.095, alpha=2.0),
        parametric=ParametricModel(cd_offset_um=INITIAL_CD_OFFSET_UM),
        systematics=(
            SystematicLoss("weak_output_buffer", WEAK_BUFFER_LOSS),
        ),
    )
    probe = ProbeCardSetup(overdrive_um=45.0, relay_settling_ms=2.0)
    return RampState(
        stack=stack, probe=probe,
        process_cd_offset_um=INITIAL_CD_OFFSET_UM,
    )


def foundry_model_yield(state: RampState, die_area_mm2: float) -> float:
    """The foundry's entitlement: defect + centred parametric only."""
    centred = state.stack.parametric.retargeted(0.0)
    return (
        state.stack.defect.yield_for_area(die_area_mm2)
        * centred.yield_fraction()
    )


def _optimize_probe(state: RampState) -> RampState:
    return replace(state, probe=state.probe.optimized())


def _optimize_overdrive_only(state: RampState) -> RampState:
    probe = replace(state.probe, overdrive_um=state.probe.optimal_overdrive_um)
    return replace(state, probe=probe)


def _optimize_settling_only(state: RampState) -> RampState:
    probe = replace(state.probe,
                    relay_settling_ms=state.probe.needed_settling_ms)
    return replace(state, probe=probe)


def _retarget_cd(state: RampState, *, seed: int = 0) -> RampState:
    current = state.stack.parametric.cd_offset_um
    split = run_corner_split(
        state.stack.parametric,
        process_offset_um=current,  # splits skew on top of the process
        seed=seed,
    )
    parametric = retarget_from_split(
        state.stack.parametric, split, process_offset_um=current,
    )
    return replace(state, stack=replace(state.stack, parametric=parametric))


def _fix_weak_buffer(state: RampState) -> RampState:
    systematics = tuple(
        replace(s, active=False) if s.name == "weak_output_buffer" else s
        for s in state.stack.systematics
    )
    return replace(state, stack=replace(state.stack, systematics=systematics))


def paper_measures() -> list[RampMeasure]:
    """The paper's five measures on a plausible 8-month schedule."""
    return [
        RampMeasure("optimize probe card overdrive", 2,
                    _optimize_overdrive_only),
        RampMeasure("optimize power relay waiting time", 3,
                    _optimize_settling_only),
        RampMeasure("poly CD retarget from corner lot split", 5,
                    lambda s: _retarget_cd(s, seed=11)),
        RampMeasure("metal ECO: strengthen weak output buffer", 6,
                    _fix_weak_buffer),
    ]


def simulate_ramp(
    *,
    months: int = 8,
    measures: list[RampMeasure] | None = None,
    die_area_mm2: float = DSC_DIE_AREA_MM2,
    wafers_per_month: int = 400,
    seed: int = 0,
) -> RampResult:
    """Run the ramp month by month.

    Each month first applies any scheduled measures, then produces
    ``wafers_per_month`` wafers and records expected and sampled
    yield.
    """
    state = initial_ramp_state()
    if measures is None:
        measures = paper_measures()
    rng = np.random.default_rng(seed)
    result = RampResult(
        foundry_model_yield=foundry_model_yield(state, die_area_mm2)
    )
    gross = gross_dies_per_wafer(WaferSpec(), die_area_mm2)
    for month in range(months + 1):
        for measure in measures:
            if measure.month == month:
                state = measure.apply(state)
                result.events.append((month, measure.name))
        expected = state.measured_yield(die_area_mm2)
        dies = gross * wafers_per_month
        true_pass = state.stack.sample_dies(die_area_mm2, dies, rng)
        overkill = rng.random(dies) < state.probe.total_overkill()
        sampled = float((true_pass & ~overkill).mean())
        result.months.append(month)
        result.expected_yield.append(expected)
        result.sampled_yield.append(sampled)
    return result
