"""Corner-lot splitting and poly-CD retargeting.

The paper: "retargeting Isat and Vth by optimizing poly CD in the
foundry according to results from corner lot splitting."  A corner lot
split runs wafers of one lot at deliberately skewed poly CD; probing
each split measures parametric yield versus CD and the retarget picks
the best centring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .yield_model import ParametricModel


@dataclass
class CornerSplitResult:
    """Outcome of one corner-lot experiment."""

    offsets_um: list[float]
    measured_yield: list[float]
    best_offset_um: float = 0.0

    def format_report(self) -> str:
        lines = ["Corner lot split (poly CD vs parametric yield)"]
        for offset, value in zip(self.offsets_um, self.measured_yield):
            marker = "  <-- retarget" if offset == self.best_offset_um else ""
            lines.append(f"  CD {offset:+.3f} um : {value * 100:5.1f}%{marker}")
        return "\n".join(lines)


def run_corner_split(
    parametric: ParametricModel,
    *,
    process_offset_um: float,
    offsets_um: list[float] | None = None,
    dies_per_split: int = 2000,
    seed: int = 0,
) -> CornerSplitResult:
    """Simulate a corner-lot split around the current process centring.

    ``process_offset_um`` is the (unknown to the engineers) true
    miscentring; each split adds its deliberate skew on top, wafers
    are probed, and the retarget offset is whichever split yielded
    best (negated: the retarget *corrects* the skew that helped).
    """
    if offsets_um is None:
        offsets_um = [-0.020, -0.010, 0.0, +0.010, +0.020]
    rng = np.random.default_rng(seed)
    result = CornerSplitResult(offsets_um=list(offsets_um), measured_yield=[])
    best = (-1.0, 0.0)
    for split in offsets_um:
        model = parametric.retargeted(process_offset_um + split)
        passed = model.sample_pass(dies_per_split, rng)
        value = float(passed.mean())
        result.measured_yield.append(value)
        if value > best[0]:
            best = (value, split)
    result.best_offset_um = best[1]
    return result


def retarget_from_split(
    parametric: ParametricModel,
    split: CornerSplitResult,
    *,
    process_offset_um: float,
) -> ParametricModel:
    """Apply the retarget: the foundry shifts poly CD by the winning
    split skew, moving the effective centring."""
    return parametric.retargeted(process_offset_um + split.best_offset_um)
