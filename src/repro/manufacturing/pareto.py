"""Failure Pareto analysis: how the yield killer was found.

Section 3: "During mass production, manufacturing test uncovered that
the yield killer (5% loss) was in the insufficient driving strength of
an output buffer in the CPU."  The discovery instrument is the test
floor's failure Pareto: classify every failing die by which test bin
killed it, rank the bins, and a systematic mechanism stands out from
the random-defect background.

The classifier here runs the yield stack's Monte-Carlo per-die draws
*per mechanism*, so each failing die carries its true kill reason the
way a binned tester log does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .yield_model import YieldStack


@dataclass
class ParetoBin:
    """One failure bin of the tester log."""

    name: str
    count: int
    fraction_of_failures: float
    fraction_of_all_dies: float


@dataclass
class FailurePareto:
    """Ranked failure bins for one production sample."""

    dies_tested: int
    dies_failing: int
    bins: list[ParetoBin] = field(default_factory=list)

    @property
    def top_bin(self) -> ParetoBin | None:
        return self.bins[0] if self.bins else None

    def bin_named(self, name: str) -> ParetoBin | None:
        for item in self.bins:
            if item.name == name:
                return item
        return None

    def format_report(self) -> str:
        lines = [
            f"Failure Pareto ({self.dies_failing}/{self.dies_tested}"
            f" dies failing)",
            "  bin                      fails   %fails  %dies",
        ]
        for item in self.bins:
            lines.append(
                f"  {item.name:22s}  {item.count:6d}"
                f"  {item.fraction_of_failures * 100:6.1f}%"
                f"  {item.fraction_of_all_dies * 100:5.1f}%"
            )
        return "\n".join(lines)


def classify_failures(
    stack: YieldStack,
    *,
    die_area_mm2: float,
    n_dies: int,
    probe_overkill: float = 0.0,
    rng: np.random.Generator,
) -> FailurePareto:
    """Bin every failing die by its (first) kill mechanism.

    Order of test bins mirrors a real flow: continuity/parametric
    first, then functional (defects), then the at-speed/IO bins where
    systematics like the weak output buffer appear, then overkill.
    """
    parametric_pass = stack.parametric.sample_pass(n_dies, rng)
    defects = stack.defect.sample_defect_counts(die_area_mm2, n_dies, rng)
    defect_pass = defects == 0

    systematic_pass: dict[str, np.ndarray] = {}
    for systematic in stack.systematics:
        if systematic.active and systematic.loss_fraction > 0:
            systematic_pass[systematic.name] = (
                rng.random(n_dies) >= systematic.loss_fraction
            )
    overkill_pass = (
        rng.random(n_dies) >= probe_overkill
        if probe_overkill > 0 else np.ones(n_dies, dtype=bool)
    )

    bins: dict[str, int] = {}
    failing = 0
    for index in range(n_dies):
        if not parametric_pass[index]:
            bins["parametric (Vth/Isat)"] = bins.get(
                "parametric (Vth/Isat)", 0) + 1
            failing += 1
            continue
        if not defect_pass[index]:
            bins["functional (defect)"] = bins.get(
                "functional (defect)", 0) + 1
            failing += 1
            continue
        killed = False
        for name, passes in systematic_pass.items():
            if not passes[index]:
                bins[name] = bins.get(name, 0) + 1
                failing += 1
                killed = True
                break
        if killed:
            continue
        if not overkill_pass[index]:
            bins["tester overkill"] = bins.get("tester overkill", 0) + 1
            failing += 1

    pareto = FailurePareto(dies_tested=n_dies, dies_failing=failing)
    for name, count in sorted(bins.items(), key=lambda kv: -kv[1]):
        pareto.bins.append(
            ParetoBin(
                name=name,
                count=count,
                fraction_of_failures=count / max(failing, 1),
                fraction_of_all_dies=count / n_dies,
            )
        )
    return pareto


def is_systematic_suspect(
    pareto: FailurePareto,
    bin_name: str,
    *,
    min_die_fraction: float = 0.02,
) -> bool:
    """The yield engineer's trigger: a single named bin eating more
    than ``min_die_fraction`` of all dies is a systematic, not noise."""
    item = pareto.bin_named(bin_name)
    return item is not None and item.fraction_of_all_dies >= min_die_fraction
