"""Wafer geometry and wafer-map simulation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .yield_model import YieldStack


@dataclass(frozen=True)
class WaferSpec:
    """A production wafer."""

    diameter_mm: float = 200.0
    edge_exclusion_mm: float = 3.0

    @property
    def usable_radius_mm(self) -> float:
        return self.diameter_mm / 2.0 - self.edge_exclusion_mm


def gross_dies_per_wafer(wafer: WaferSpec, die_area_mm2: float) -> int:
    """De Vries' formula: dies lost to the round edge accounted for."""
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    diameter = 2 * wafer.usable_radius_mm
    return max(
        0,
        int(
            math.pi * diameter**2 / (4.0 * die_area_mm2)
            - math.pi * diameter / math.sqrt(2.0 * die_area_mm2)
        ),
    )


@dataclass
class WaferMap:
    """Pass/fail grid for one probed wafer."""

    wafer: WaferSpec
    die_width_mm: float
    die_height_mm: float
    passing: dict[tuple[int, int], bool] = field(default_factory=dict)

    @property
    def gross(self) -> int:
        return len(self.passing)

    @property
    def good(self) -> int:
        return sum(self.passing.values())

    @property
    def measured_yield(self) -> float:
        if not self.passing:
            return 0.0
        return self.good / self.gross

    def ascii_map(self) -> str:
        """Classic wafer-map printout: '.' pass, 'X' fail."""
        if not self.passing:
            return "(empty)"
        cols = [c for c, _ in self.passing]
        rows = [r for _, r in self.passing]
        lines = []
        for row in range(min(rows), max(rows) + 1):
            chars = []
            for col in range(min(cols), max(cols) + 1):
                state = self.passing.get((col, row))
                chars.append("." if state else "X" if state is not None
                             else " ")
            lines.append("".join(chars))
        return "\n".join(lines)


def simulate_wafer(
    stack: YieldStack,
    *,
    die_width_mm: float,
    die_height_mm: float,
    wafer: WaferSpec | None = None,
    rng: np.random.Generator,
) -> WaferMap:
    """Probe one simulated wafer.

    Die sites are laid out on a grid and kept when fully inside the
    usable radius; each die then passes/fails per the yield stack,
    with an extra radial defect gradient (edge dies see ~1.5x the
    defect rate, a second-order effect every fab fights).
    """
    wafer = wafer or WaferSpec()
    radius = wafer.usable_radius_mm
    n_cols = int(2 * radius / die_width_mm) + 2
    n_rows = int(2 * radius / die_height_mm) + 2
    sites: list[tuple[int, int, float]] = []
    for row in range(-n_rows // 2, n_rows // 2 + 1):
        for col in range(-n_cols // 2, n_cols // 2 + 1):
            x = (col + 0.5) * die_width_mm
            y = (row + 0.5) * die_height_mm
            corner = math.hypot(abs(x) + die_width_mm / 2,
                                abs(y) + die_height_mm / 2)
            if corner <= radius:
                sites.append((col, row, math.hypot(x, y) / radius))
    die_area = die_width_mm * die_height_mm
    base_pass = stack.sample_dies(die_area, len(sites), rng)
    wafer_map = WaferMap(wafer, die_width_mm, die_height_mm)
    for (col, row, radial), ok in zip(sites, base_pass):
        if ok and radial > 0.8:
            # Edge-region extra defectivity.
            edge_fail = rng.random() < 0.5 * stack.defect.d0_per_cm2 \
                * (die_area / 100.0) * (radial - 0.8) / 0.2
            ok = not edge_fail
        wafer_map.passing[(col, row)] = bool(ok)
    return wafer_map


def simulate_lot(
    stack: YieldStack,
    *,
    die_width_mm: float,
    die_height_mm: float,
    wafers: int = 25,
    seed: int = 0,
) -> list[WaferMap]:
    """Simulate a standard 25-wafer lot."""
    rng = np.random.default_rng(seed)
    return [
        simulate_wafer(
            stack,
            die_width_mm=die_width_mm,
            die_height_mm=die_height_mm,
            rng=rng,
        )
        for _ in range(wafers)
    ]
