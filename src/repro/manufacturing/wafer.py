"""Wafer geometry and wafer-map simulation.

The Monte-Carlo path is fully vectorized: die-site geometry and the
edge-defectivity pass are whole-wafer numpy expressions, and
:func:`simulate_lot` fans wafers out over a process pool with one
spawned ``numpy.random.Generator`` stream per wafer.  Both the
vectorized and the scalar reference path share :func:`_wafer_sites`
and consume their generator identically (``rng.random(k)`` draws the
same stream as ``k`` scalar ``rng.random()`` calls), so the two
produce bit-identical wafer maps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..perf import fanout, stage_timer
from .yield_model import YieldStack


@dataclass(frozen=True)
class WaferSpec:
    """A production wafer."""

    diameter_mm: float = 200.0
    edge_exclusion_mm: float = 3.0

    @property
    def usable_radius_mm(self) -> float:
        return self.diameter_mm / 2.0 - self.edge_exclusion_mm


def gross_dies_per_wafer(wafer: WaferSpec, die_area_mm2: float) -> int:
    """De Vries' formula: dies lost to the round edge accounted for."""
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    diameter = 2 * wafer.usable_radius_mm
    return max(
        0,
        int(
            math.pi * diameter**2 / (4.0 * die_area_mm2)
            - math.pi * diameter / math.sqrt(2.0 * die_area_mm2)
        ),
    )


class WaferMap:
    """Pass/fail grid for one probed wafer.

    Backed by flat site arrays when built by the vectorized simulator;
    the ``passing`` dict view is materialized lazily so yield-summary
    consumers (``gross`` / ``good`` / ``measured_yield``) never pay
    for a per-die Python dict.
    """

    def __init__(
        self,
        wafer: WaferSpec,
        die_width_mm: float,
        die_height_mm: float,
        passing: dict[tuple[int, int], bool] | None = None,
    ) -> None:
        self.wafer = wafer
        self.die_width_mm = die_width_mm
        self.die_height_mm = die_height_mm
        self._passing = dict(passing) if passing is not None else None
        self._cols: np.ndarray | None = None
        self._rows: np.ndarray | None = None
        self._ok: np.ndarray | None = None

    @classmethod
    def from_arrays(
        cls,
        wafer: WaferSpec,
        die_width_mm: float,
        die_height_mm: float,
        cols: np.ndarray,
        rows: np.ndarray,
        ok: np.ndarray,
    ) -> "WaferMap":
        """Array-backed construction (site order preserved)."""
        wafer_map = cls(wafer, die_width_mm, die_height_mm)
        wafer_map._cols = cols
        wafer_map._rows = rows
        wafer_map._ok = ok
        return wafer_map

    @property
    def passing(self) -> dict[tuple[int, int], bool]:
        """Site -> pass/fail dict (materialized on first access)."""
        if self._passing is None:
            if self._ok is None:
                self._passing = {}
            else:
                self._passing = dict(zip(
                    zip(self._cols.tolist(), self._rows.tolist()),
                    self._ok.tolist(),
                ))
        return self._passing

    @passing.setter
    def passing(self, value: dict[tuple[int, int], bool]) -> None:
        self._passing = value
        self._cols = self._rows = self._ok = None

    @property
    def gross(self) -> int:
        """Probed die sites on this wafer.

        Counts every site whose full outline fits inside the usable
        radius (edge-exclusion already subtracted) -- the probed-die
        population, so edge-region dies that failed the radial
        defect-gradient screen are still *gross* dies.  This is the
        simulated counterpart of :func:`gross_dies_per_wafer`; the two
        track each other but differ by the grid-vs-analytic edge
        treatment (De Vries' formula approximates the partial-die ring
        instead of rastering it).
        """
        if self._passing is None and self._ok is not None:
            return len(self._ok)
        return len(self.passing)

    @property
    def good(self) -> int:
        if self._passing is None and self._ok is not None:
            return int(np.count_nonzero(self._ok))
        return sum(self.passing.values())

    @property
    def measured_yield(self) -> float:
        """``good / gross`` over probed sites; 0.0 for an empty map.

        Because ``gross`` includes edge-region sites, the extra edge
        defectivity *lowers* measured yield rather than shrinking the
        denominator -- matching how a fab reports probe yield (edge
        dies are tested, not excluded).
        """
        gross = self.gross
        if gross == 0:
            return 0.0
        return self.good / gross

    def ascii_map(self) -> str:
        """Classic wafer-map printout: '.' pass, 'X' fail."""
        if not self.passing:
            return "(empty)"
        cols = [c for c, _ in self.passing]
        rows = [r for _, r in self.passing]
        lines = []
        for row in range(min(rows), max(rows) + 1):
            chars = []
            for col in range(min(cols), max(cols) + 1):
                state = self.passing.get((col, row))
                chars.append("." if state else "X" if state is not None
                             else " ")
            lines.append("".join(chars))
        return "\n".join(lines)


@lru_cache(maxsize=64)
def _wafer_sites(
    wafer: WaferSpec, die_width_mm: float, die_height_mm: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Die sites fully inside the usable radius, row-major order.

    Returns ``(cols, rows, radial)`` read-only arrays where ``radial``
    is the die-centre distance as a fraction of the usable radius.
    Shared by the vectorized and scalar simulation paths so both see
    identical geometry (down to the last ulp of the hypot), and cached
    because the geometry is a pure function of the wafer spec and die
    dimensions (every wafer of a lot reuses it).
    """
    radius = wafer.usable_radius_mm
    n_cols = int(2 * radius / die_width_mm) + 2
    n_rows = int(2 * radius / die_height_mm) + 2
    row_idx = np.arange(-n_rows // 2, n_rows // 2 + 1)
    col_idx = np.arange(-n_cols // 2, n_cols // 2 + 1)
    # Row-outer / column-inner, matching the original scan order.
    rows = np.repeat(row_idx, len(col_idx))
    cols = np.tile(col_idx, len(row_idx))
    x = (cols + 0.5) * die_width_mm
    y = (rows + 0.5) * die_height_mm
    corner = np.hypot(np.abs(x) + die_width_mm / 2,
                      np.abs(y) + die_height_mm / 2)
    keep = corner <= radius
    out = (cols[keep], rows[keep], np.hypot(x[keep], y[keep]) / radius)
    for array in out:
        array.setflags(write=False)
    return out


def simulate_wafer(
    stack: YieldStack,
    *,
    die_width_mm: float,
    die_height_mm: float,
    wafer: WaferSpec | None = None,
    rng: np.random.Generator,
) -> WaferMap:
    """Probe one simulated wafer (vectorized).

    Die sites are laid out on a grid and kept when fully inside the
    usable radius; each die then passes/fails per the yield stack,
    with an extra radial defect gradient (edge dies see ~1.5x the
    defect rate, a second-order effect every fab fights).

    The edge pass draws ``rng.random(k)`` for the ``k`` base-passing
    edge dies in site order -- the same stream the per-die scalar loop
    (:func:`simulate_wafer_scalar`) consumes -- so the map is
    bit-identical to the reference path.
    """
    wafer = wafer or WaferSpec()
    with stage_timer("manufacturing.wafer") as stats:
        cols, rows, radial = _wafer_sites(wafer, die_width_mm,
                                          die_height_mm)
        die_area = die_width_mm * die_height_mm
        passing = np.array(
            stack.sample_dies(die_area, len(cols), rng), dtype=bool
        )
        candidates = np.flatnonzero(passing & (radial > 0.8))
        if len(candidates):
            draws = rng.random(len(candidates))
            # Edge-region extra defectivity; float-op order matches
            # the scalar loop exactly.
            threshold = 0.5 * stack.defect.d0_per_cm2 \
                * (die_area / 100.0) * (radial[candidates] - 0.8) / 0.2
            passing[candidates[draws < threshold]] = False
        wafer_map = WaferMap.from_arrays(
            wafer, die_width_mm, die_height_mm,
            cols, rows, passing,
        )
        stats.add(wafers=1, dies=len(cols))
    return wafer_map


def simulate_wafer_scalar(
    stack: YieldStack,
    *,
    die_width_mm: float,
    die_height_mm: float,
    wafer: WaferSpec | None = None,
    rng: np.random.Generator,
) -> WaferMap:
    """Per-die reference implementation of :func:`simulate_wafer`.

    Kept as the equivalence oracle for the vectorized path; property
    tests assert both produce the same map from the same seed.
    """
    wafer = wafer or WaferSpec()
    cols, rows, radials = _wafer_sites(wafer, die_width_mm, die_height_mm)
    die_area = die_width_mm * die_height_mm
    base_pass = stack.sample_dies(die_area, len(cols), rng)
    wafer_map = WaferMap(wafer, die_width_mm, die_height_mm)
    for col, row, radial, ok in zip(cols, rows, radials, base_pass):
        if ok and radial > 0.8:
            # Edge-region extra defectivity.
            edge_fail = rng.random() < 0.5 * stack.defect.d0_per_cm2 \
                * (die_area / 100.0) * (radial - 0.8) / 0.2
            ok = not edge_fail
        wafer_map.passing[(int(col), int(row))] = bool(ok)
    return wafer_map


def _lot_worker(task) -> WaferMap:
    """Simulate one wafer of a lot from its spawned seed sequence."""
    stack, die_width_mm, die_height_mm, seq = task
    return simulate_wafer(
        stack,
        die_width_mm=die_width_mm,
        die_height_mm=die_height_mm,
        rng=np.random.default_rng(seq),
    )


def simulate_lot(
    stack: YieldStack,
    *,
    die_width_mm: float,
    die_height_mm: float,
    wafers: int = 25,
    seed: int = 0,
    workers: int | None = 1,
) -> list[WaferMap]:
    """Simulate a standard 25-wafer lot.

    Each wafer gets an independent generator stream spawned from
    ``SeedSequence(seed)``, so the lot is a pure function of ``seed``
    -- identical for any ``workers`` count (``workers > 1`` fans the
    wafers out over a process pool).
    """
    sequences = np.random.SeedSequence(seed).spawn(wafers)
    tasks = [
        (stack, die_width_mm, die_height_mm, seq) for seq in sequences
    ]
    return fanout(
        _lot_worker, tasks, workers=workers, stage="manufacturing.lot"
    )
