"""Die yield models: defect-limited, parametric, and systematic.

Three loss mechanisms combine multiplicatively into the measured
yield, mirroring what the paper's team untangled during the ramp:

* **Defect yield** -- random particle defects, negative-binomial
  (clustered) model: ``Y = (1 + D0*A/alpha)^-alpha``.
* **Parametric yield** -- transistor parameters (Vth, Isat) drift from
  poly critical dimension (CD); dies outside the spec window fail at
  speed/current test.  The paper retargeted Isat/Vth "by optimizing
  poly CD in the foundry according to results from corner lot
  splitting".
* **Systematic/test losses** -- the weak output buffer (5% loss), plus
  probe-card overdrive and power-relay settling overkill, modelled in
  :mod:`repro.manufacturing.probe`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class DefectModel:
    """Negative-binomial defect-limited yield."""

    d0_per_cm2: float = 0.5     # defect density
    alpha: float = 2.0          # clustering parameter

    def yield_for_area(self, die_area_mm2: float) -> float:
        """Expected defect-limited yield for a die of given area."""
        if die_area_mm2 <= 0:
            raise ValueError("die area must be positive")
        area_cm2 = die_area_mm2 / 100.0
        return float(
            (1.0 + self.d0_per_cm2 * area_cm2 / self.alpha) ** (-self.alpha)
        )

    def sample_defect_counts(
        self, die_area_mm2: float, n_dies: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-die defect counts with gamma-mixed (clustered) Poisson."""
        area_cm2 = die_area_mm2 / 100.0
        lam = rng.gamma(
            shape=self.alpha,
            scale=self.d0_per_cm2 * area_cm2 / self.alpha,
            size=n_dies,
        )
        return rng.poisson(lam)


@dataclass(frozen=True)
class ParametricModel:
    """Poly-CD-driven parametric yield.

    CD error (um) shifts Vth and Isat linearly around their targets;
    a die passes when both parameters are inside their spec windows.
    """

    cd_offset_um: float = 0.0           # process miscentring
    cd_sigma_um: float = 0.008          # within-lot CD spread
    vth_target_v: float = 0.50
    vth_per_um: float = -2.0            # dVth/dCD
    vth_window_v: float = 0.065
    isat_target_ma: float = 5.6
    isat_per_um: float = 28.0           # dIsat/dCD
    isat_window_ma: float = 0.9
    vth_noise_v: float = 0.012          # die-level random variation
    isat_noise_ma: float = 0.16

    def parameters_for_cd(self, cd_error_um: float) -> tuple[float, float]:
        """(Vth, Isat) means at a given CD error."""
        vth = self.vth_target_v + self.vth_per_um * cd_error_um
        isat = self.isat_target_ma + self.isat_per_um * cd_error_um
        return vth, isat

    def yield_fraction(self) -> float:
        """Closed-form parametric yield at the current centring."""
        def window_pass(offset_scale, window, noise, cd_scale):
            total_sigma = math.hypot(noise, cd_scale * self.cd_sigma_um)
            z_high = (window - offset_scale) / total_sigma
            z_low = (-window - offset_scale) / total_sigma
            return stats.norm.cdf(z_high) - stats.norm.cdf(z_low)

        vth_shift = self.vth_per_um * self.cd_offset_um
        isat_shift = self.isat_per_um * self.cd_offset_um
        vth_pass = window_pass(vth_shift, self.vth_window_v,
                               self.vth_noise_v, abs(self.vth_per_um))
        isat_pass = window_pass(isat_shift, self.isat_window_ma,
                                self.isat_noise_ma, abs(self.isat_per_um))
        # Vth and Isat are driven by the same CD: strongly correlated;
        # the binding constraint dominates.
        return float(min(vth_pass, isat_pass))

    def retargeted(self, new_offset_um: float) -> "ParametricModel":
        """The foundry's poly-CD retarget: move the centring."""
        return replace(self, cd_offset_um=new_offset_um)

    def sample_pass(self, n_dies: int, rng: np.random.Generator
                    ) -> np.ndarray:
        """Monte-Carlo pass/fail per die."""
        cd = rng.normal(self.cd_offset_um, self.cd_sigma_um, size=n_dies)
        vth = (self.vth_target_v + self.vth_per_um * cd
               + rng.normal(0, self.vth_noise_v, size=n_dies))
        isat = (self.isat_target_ma + self.isat_per_um * cd
                + rng.normal(0, self.isat_noise_ma, size=n_dies))
        vth_ok = np.abs(vth - self.vth_target_v) <= self.vth_window_v
        isat_ok = np.abs(isat - self.isat_target_ma) <= self.isat_window_ma
        return vth_ok & isat_ok


@dataclass(frozen=True)
class SystematicLoss:
    """A named deterministic loss mechanism (e.g. the weak output
    buffer that cost 5% of dies until the metal ECO)."""

    name: str
    loss_fraction: float
    active: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_fraction < 1.0:
            raise ValueError("loss fraction must be in [0, 1)")

    @property
    def yield_factor(self) -> float:
        return 1.0 - self.loss_fraction if self.active else 1.0


@dataclass(frozen=True)
class YieldStack:
    """The multiplicative composition of all yield mechanisms."""

    defect: DefectModel
    parametric: ParametricModel
    systematics: tuple[SystematicLoss, ...] = ()
    test_overkill_fraction: float = 0.0

    def expected_yield(self, die_area_mm2: float) -> float:
        """Expected measured yield for a die."""
        value = self.defect.yield_for_area(die_area_mm2)
        value *= self.parametric.yield_fraction()
        for systematic in self.systematics:
            value *= systematic.yield_factor
        value *= 1.0 - self.test_overkill_fraction
        return float(value)

    def breakdown(self, die_area_mm2: float) -> dict[str, float]:
        """Per-mechanism yield factors (multiply to the total)."""
        out = {
            "defect": self.defect.yield_for_area(die_area_mm2),
            "parametric": self.parametric.yield_fraction(),
        }
        for systematic in self.systematics:
            out[systematic.name] = systematic.yield_factor
        out["test_overkill"] = 1.0 - self.test_overkill_fraction
        return out

    def sample_dies(
        self, die_area_mm2: float, n_dies: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Monte-Carlo pass/fail for ``n_dies``."""
        defects = self.defect.sample_defect_counts(die_area_mm2, n_dies, rng)
        passing = defects == 0
        passing &= self.parametric.sample_pass(n_dies, rng)
        for systematic in self.systematics:
            if systematic.active and systematic.loss_fraction > 0:
                passing &= rng.random(n_dies) >= systematic.loss_fraction
        if self.test_overkill_fraction > 0:
            passing &= rng.random(n_dies) >= self.test_overkill_fraction
        return passing
