"""Wafer-probe test model: overdrive and power-relay settling.

Two of the paper's five yield-improvement measures were pure test-cell
fixes: "optimizing probe card overdrive spec" and "optimizing power
relay waiting time".  Both recover *overkill* -- good dies failed by
the tester, not by silicon:

* insufficient probe **overdrive** leaves some needles with marginal
  contact resistance -> intermittent continuity fails;
* insufficient **relay settling** starts the test before the supply is
  stable -> false functional/IDDQ fails.

The model turns each knob setting into an overkill fraction so the
ramp simulation can apply the fixes on the paper's schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeCardSetup:
    """Tester/prober configuration knobs."""

    overdrive_um: float = 45.0          # needle overtravel
    relay_settling_ms: float = 2.0      # wait after power relay close
    optimal_overdrive_um: float = 75.0
    needed_settling_ms: float = 8.0

    def contact_overkill(self) -> float:
        """Fraction of good dies lost to marginal probe contact.

        Falls off smoothly as overdrive approaches the optimum; at the
        optimum, contact loss is negligible.
        """
        deficit = max(0.0, self.optimal_overdrive_um - self.overdrive_um)
        return 0.035 * (1.0 - math.exp(-deficit / 25.0))

    def settling_overkill(self) -> float:
        """Fraction of good dies lost to unstable power at test start."""
        deficit = max(0.0, self.needed_settling_ms - self.relay_settling_ms)
        return 0.018 * (1.0 - math.exp(-deficit / 3.0))

    def total_overkill(self) -> float:
        """Combined tester-induced yield loss."""
        contact = self.contact_overkill()
        settling = self.settling_overkill()
        return 1.0 - (1.0 - contact) * (1.0 - settling)

    def optimized(self) -> "ProbeCardSetup":
        """Both measures applied: knobs at their characterised optima."""
        return ProbeCardSetup(
            overdrive_um=self.optimal_overdrive_um,
            relay_settling_ms=self.needed_settling_ms,
            optimal_overdrive_um=self.optimal_overdrive_um,
            needed_settling_ms=self.needed_settling_ms,
        )


@dataclass(frozen=True)
class ProbeTestResult:
    """Aggregate outcome of probing one population."""

    dies_tested: int
    true_good: int
    measured_good: int
    overkill: int

    @property
    def true_yield(self) -> float:
        return self.true_good / max(self.dies_tested, 1)

    @property
    def measured_yield(self) -> float:
        return self.measured_good / max(self.dies_tested, 1)


def probe_population(
    true_pass: "list[bool] | object",
    setup: ProbeCardSetup,
    *,
    rng,
) -> ProbeTestResult:
    """Apply tester overkill to a vector of true die states."""
    import numpy as np

    true_pass = np.asarray(true_pass, dtype=bool)
    overkill_rate = setup.total_overkill()
    kill = rng.random(true_pass.size) < overkill_rate
    measured = true_pass & ~kill
    return ProbeTestResult(
        dies_tested=int(true_pass.size),
        true_good=int(true_pass.sum()),
        measured_good=int(measured.sum()),
        overkill=int((true_pass & kill).sum()),
    )
