"""Die cost and the 0.25 um -> 0.18 um migration (experiment E9).

Section 4: "We have also migrated the chip from 0.25um process to
0.18um one achieving 20% saving in die cost."  Die cost is wafer cost
divided by good dies per wafer; migration shrinks logic by the square
of the feature-size ratio (embedded SRAM and I/O shrink less), raises
the wafer price, and initially costs some yield until the new node
matures -- the model exposes each term so the 20% figure is a
computation, not an assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

from .wafer import WaferSpec, gross_dies_per_wafer
from .yield_model import DefectModel


@dataclass(frozen=True)
class ProcessNode:
    """Cost-relevant parameters of one foundry process."""

    name: str
    feature_um: float
    wafer_cost_usd: float
    defect_model: DefectModel

    def logic_scale_from(self, other: "ProcessNode") -> float:
        """Area scale factor for standard-cell logic."""
        return (self.feature_um / other.feature_um) ** 2


#: Mature 0.25 um -- the original DSC controller node.
NODE_025 = ProcessNode(
    "TSMC-style 0.25um", 0.25, wafer_cost_usd=1400.0,
    defect_model=DefectModel(d0_per_cm2=0.095, alpha=2.0),
)

#: 0.18 um at migration time: pricier wafers, slightly higher D0.
NODE_018 = ProcessNode(
    "TSMC-style 0.18um", 0.18, wafer_cost_usd=1900.0,
    defect_model=DefectModel(d0_per_cm2=0.14, alpha=2.0),
)


@dataclass(frozen=True)
class DieContent:
    """Area composition of the DSC die at the source node."""

    logic_area_mm2: float
    sram_area_mm2: float
    analog_io_area_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.logic_area_mm2 + self.sram_area_mm2 + self.analog_io_area_mm2


#: The DSC controller die content at 0.25 um (72.25 mm^2 total).
DSC_CONTENT_025 = DieContent(
    logic_area_mm2=34.0,
    sram_area_mm2=26.0,
    analog_io_area_mm2=12.25,
)

#: How much of the full logic shrink each content class realises.
SRAM_SHRINK_EFFICIENCY = 0.80
ANALOG_IO_SHRINK_EFFICIENCY = 0.35


def migrate_content(
    content: DieContent, source: ProcessNode, target: ProcessNode
) -> DieContent:
    """Scale die content between nodes with per-class efficiency."""
    full = target.logic_scale_from(source)
    def scaled(area: float, efficiency: float) -> float:
        return area * (efficiency * full + (1.0 - efficiency))

    return DieContent(
        logic_area_mm2=content.logic_area_mm2 * full,
        sram_area_mm2=scaled(content.sram_area_mm2, SRAM_SHRINK_EFFICIENCY),
        analog_io_area_mm2=scaled(
            content.analog_io_area_mm2, ANALOG_IO_SHRINK_EFFICIENCY
        ),
    )


@dataclass(frozen=True)
class DieCostReport:
    """Cost breakdown for one die on one node."""

    node: str
    die_area_mm2: float
    gross_dies: int
    yield_fraction: float
    wafer_cost_usd: float

    @property
    def good_dies(self) -> float:
        return self.gross_dies * self.yield_fraction

    @property
    def cost_per_good_die_usd(self) -> float:
        if self.good_dies <= 0:
            return float("inf")
        return self.wafer_cost_usd / self.good_dies

    def format_report(self) -> str:
        return (
            f"{self.node:22s} die {self.die_area_mm2:6.1f} mm^2  "
            f"gross {self.gross_dies:4d}  yield {self.yield_fraction*100:5.1f}%"
            f"  cost/die ${self.cost_per_good_die_usd:6.2f}"
        )


def die_cost(
    node: ProcessNode,
    die_area_mm2: float,
    *,
    extra_yield_factor: float = 1.0,
    wafer: WaferSpec | None = None,
) -> DieCostReport:
    """Cost of one die on one node.

    ``extra_yield_factor`` folds in non-defect yield terms (parametric,
    systematic) when comparing mature vs fresh processes.
    """
    wafer = wafer or WaferSpec()
    gross = gross_dies_per_wafer(wafer, die_area_mm2)
    value = node.defect_model.yield_for_area(die_area_mm2)
    return DieCostReport(
        node=node.name,
        die_area_mm2=die_area_mm2,
        gross_dies=gross,
        yield_fraction=value * extra_yield_factor,
        wafer_cost_usd=node.wafer_cost_usd,
    )


@dataclass(frozen=True)
class MigrationReport:
    """Side-by-side of the two nodes (E9)."""

    source: DieCostReport
    target: DieCostReport

    @property
    def cost_saving_fraction(self) -> float:
        return 1.0 - (
            self.target.cost_per_good_die_usd
            / self.source.cost_per_good_die_usd
        )

    def format_report(self) -> str:
        return "\n".join(
            [
                "Process migration",
                "  " + self.source.format_report(),
                "  " + self.target.format_report(),
                f"  die cost saving: {self.cost_saving_fraction * 100:.1f}%",
            ]
        )


def migrate_dsc(
    *,
    source: ProcessNode = NODE_025,
    target: ProcessNode = NODE_018,
    content: DieContent = DSC_CONTENT_025,
    mature_yield_factor: float = 0.988,
) -> MigrationReport:
    """The paper's migration: DSC die from 0.25 um to 0.18 um.

    ``mature_yield_factor`` is the non-defect yield at the mature
    source node; the fresh target node gets a mild extra penalty
    captured in its higher D0.
    """
    migrated = migrate_content(content, source, target)
    return MigrationReport(
        source=die_cost(source, content.total_mm2,
                        extra_yield_factor=mature_yield_factor),
        target=die_cost(target, migrated.total_mm2,
                        extra_yield_factor=mature_yield_factor),
    )
