"""Compiled word-parallel simulation backend.

:class:`~repro.sim.LogicSimulator` *interprets* the netlist: every
cycle walks every gate in Python, one four-value tuple at a time
(~225 cycles/s on the 456-gate E4 block).  This module takes the
classic compiled-code simulation route instead: the module is
levelized **once** into a flat numpy program, and four-value logic is
packed into ``uint64`` bit-planes so one kernel sweep evaluates 64
independent stimulus lanes per word -- the same literal-matrix idiom
:mod:`repro.dft.faultsim` proved out for stuck-at patterns, now
generalised to full four-value sequential simulation.

Encoding
--------
Per net the state holds three *indicator planes* -- ``is0``, ``is1``,
``isX`` -- each an array of ``words`` uint64 values whose bit *b* of
word *w* belongs to lane ``64*w + b``.  Exactly one plane bit is set
per (net, lane).  ``Z`` collapses to ``X`` inside the kernel (gates
read a floating input as unknown, and only input-port nets can carry
``Z`` in this netlist model -- the library has no tristate drivers);
a per-input-port mask restores ``Z`` on read-back so observers see
the exact event-simulator value.  Two extra plane rows, ``ALWAYS``
(all ones) and ``NEVER`` (all zeros), serve as padding literals, and
two pseudo-net slots hold constant 0/1 for absent flop pins.

Program
-------
Compilation enumerates every cell's {0,1,X}^n truth table through
:func:`repro.sim.evaluate_cell` -- the same single source of truth
the interpreter and the static analysis use, so dialect knobs
(``x_pessimism``) cannot drift between engines -- and flattens each
topological level into

* a literal matrix of ``(class, net-slot)`` index pairs (one row per
  minterm, padded with ``ALWAYS`` literals),
* ``reduceat`` segment boundaries grouping rows per instance, and
* an output-slot vector.

One level then evaluates in three vectorised steps: fancy-index the
planes, ``bitwise_and.reduce`` across literals, ``bitwise_or.reduceat``
across each instance's minterms.  Because a concrete lane matches
exactly one row of the three-valued table, the ``is1``/``is0`` results
are disjoint and ``isX`` is their complement.

Programs are cached per ``(module fingerprint, config)`` in a
module-level cache; :class:`BatchSimulator` instances of any lane
count share one program.  The backend is drop-in bit-identical to the
event-driven reference under both dialects -- power-on policy,
async-reset settle fixpoint (same ``max_settle_rounds`` bound and
error), scan-enable muxing, clock gating through ICGs, and the
observer hook (observers receive a per-lane
``LogicSimulator``-compatible view) -- enforced by the randomized
property tests in ``tests/test_sim_compiled.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..netlist import Logic, Module
from ..netlist.library import Cell
from ..netlist.netlist import Instance, NetlistError
from ..perf import stage_timer
from .simulator import (
    SimulatorConfig,
    Trace,
    evaluate_cell,
    resolve_clock_connection,
)

__all__ = [
    "BatchSimulator",
    "CompileError",
    "CompiledProgram",
    "compile_module",
    "levelize_combinational",
]

WORD_BITS = 64

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

# Plane classes (axis 0 of the state array).  The first three encode
# net values; ALWAYS/NEVER are constant literal planes for padding.
_IS0, _IS1, _ISX, _ALWAYS, _NEVER = 0, 1, 2, 3, 4

_LOGIC_BY_CODE = (Logic.ZERO, Logic.ONE, Logic.X, Logic.Z)


class CompileError(NetlistError):
    """A cell or module cannot be lowered to the bit-plane kernel."""


def _logic_of(value: Logic | int | bool) -> Logic:
    if isinstance(value, bool):
        return Logic.from_bool(value)
    if isinstance(value, Logic):
        return value
    return Logic(value)


def _pack_lane_bools(bools: np.ndarray, words: int) -> np.ndarray:
    """Pack a per-lane boolean vector into ``words`` uint64 words."""
    bits = np.zeros(words * WORD_BITS, dtype=np.uint8)
    bits[: bools.size] = bools
    return np.packbits(bits, bitorder="little").view(np.uint64)


def _words_of_int(mask: int, words: int) -> np.ndarray:
    """A Python int bit-mask as a little-endian uint64 word vector."""
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype="<u8"
    ).astype(np.uint64)


def levelize_combinational(
    module: Module,
) -> tuple[dict[str, int], list[list[Instance]]]:
    """Levelize the combinational network of ``module``.

    Returns ``(net_level, levels)``: the topological level of every
    gate-driven net (primary and pseudo inputs are level 0, a gate's
    output is one past its deepest input) and the combinational
    instances grouped per level in ascending order.  This is the
    single levelization both flat-program compilers build on -- the
    functional bit-plane backend here and the fused fault-cone
    programs in :mod:`repro.dft.compiled` -- so level boundaries (the
    points where fault forces are injected) are identical across
    engines by construction.
    """
    order = module.topological_combinational_order()
    net_level: dict[str, int] = {}
    by_level: dict[int, list[Instance]] = {}
    for inst in order:
        level = 1 + max(
            (net_level.get(inst.net_of(pin), 0)
             for pin in inst.cell.input_pins),
            default=0,
        )
        net_level[inst.net_of(inst.cell.output_pins[0])] = level
        by_level.setdefault(level, []).append(inst)
    return net_level, [by_level[level] for level in sorted(by_level)]


def lane_valid_words(lanes: int, words: int) -> np.ndarray:
    """Word mask with a bit set for every valid lane (tail bits clear)."""
    bits = np.zeros(words * WORD_BITS, dtype=np.uint8)
    bits[:lanes] = 1
    return np.packbits(bits, bitorder="little").view(np.uint64)


# ---------------------------------------------------------------------------
# Cell truth tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _CellTable:
    """Three-valued truth table of one cell as literal-class rows."""

    n_inputs: int
    #: minterms whose output is ONE; each row maps input position ->
    #: plane class (_IS0/_IS1/_ISX).
    rows1: tuple[tuple[int, ...], ...]
    #: minterms whose output is ZERO.
    rows0: tuple[tuple[int, ...], ...]


_TABLE_CACHE: dict[tuple[Cell, bool], _CellTable] = {}

_TABLE_LEVELS = (Logic.ZERO, Logic.ONE, Logic.X)


def _cell_table(cell: Cell, config: SimulatorConfig) -> _CellTable:
    """Truth table of ``cell`` under ``config``, via ``evaluate_cell``.

    Enumerating {0,1,X}^n through the interpreter's own cell evaluator
    makes the compiled kernel correct by construction against every
    dialect knob that affects gate semantics.  Also verifies that the
    cell treats ``Z`` inputs exactly like ``X`` (the kernel collapses
    them), raising :class:`CompileError` for exotic cells that do not.
    """
    key = (cell, config.x_pessimism)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    if len(cell.output_pins) != 1:
        raise CompileError(
            f"cell {cell.name} has {len(cell.output_pins)} outputs; the "
            "compiled backend supports single-output cells only"
        )
    pins = cell.input_pins
    n = len(pins)
    rows1: list[tuple[int, ...]] = []
    rows0: list[tuple[int, ...]] = []
    for combo in itertools.product(_TABLE_LEVELS, repeat=n):
        out = evaluate_cell(cell, dict(zip(pins, combo)), config)
        if out is Logic.Z:
            raise CompileError(
                f"cell {cell.name} outputs Z; the bit-plane encoding "
                "has no tristate representation"
            )
        classes = tuple(int(v) for v in combo)  # ZERO/ONE/X == 0/1/2
        if out is Logic.ONE:
            rows1.append(classes)
        elif out is Logic.ZERO:
            rows0.append(classes)
    for combo in itertools.product(tuple(Logic), repeat=n):
        if Logic.Z not in combo:
            continue
        collapsed = tuple(
            Logic.X if v is Logic.Z else v for v in combo
        )
        if (evaluate_cell(cell, dict(zip(pins, combo)), config)
                is not evaluate_cell(cell, dict(zip(pins, collapsed)),
                                     config)):
            raise CompileError(
                f"cell {cell.name} distinguishes Z from X on an input; "
                "it cannot be compiled"
            )
    table = _CellTable(n, tuple(rows1), tuple(rows0))
    _TABLE_CACHE[key] = table
    return table


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------


@dataclass
class _Level:
    """One topological level, flattened for the kernel."""

    cls: np.ndarray  # (rows, n_max) plane-class indices
    net: np.ndarray  # (rows, n_max) net-slot indices
    seg: np.ndarray  # (2 * n_insts,) reduceat boundaries (rows1|rows0)
    out: np.ndarray  # (n_insts,) output net slots
    n_insts: int


@dataclass
class _ClockPlan:
    """Flop subset driven by one clock port, as index arrays."""

    sel: np.ndarray  # indices into the flop state arrays
    d: np.ndarray    # data-net slots
    si: np.ndarray   # scan-in slots (const-0 slot when absent)
    se: np.ndarray   # scan-enable slots (const-0 slot when absent)
    rn: np.ndarray   # reset-net slots (const-1 slot when absent)
    en: np.ndarray   # (n, max_en) ICG enable slots, const-1 padded


class CompiledProgram:
    """A module levelized into flat numpy index arrays.

    Immutable once built; shared by every :class:`BatchSimulator`
    with the same ``(module fingerprint, config)``.
    """

    def __init__(self, module: Module, config: SimulatorConfig) -> None:
        self.module = module
        self.config = config
        self.net_names: tuple[str, ...] = tuple(module.nets)
        self.n_nets = len(self.net_names)
        self.net_index: dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        # Two pseudo-net slots holding constant 0 / constant 1.
        self.const0_slot = self.n_nets
        self.const1_slot = self.n_nets + 1
        self.n_slots = self.n_nets + 2

        self.input_ports: tuple[str, ...] = tuple(
            name for name, port in module.ports.items()
            if port.direction == "input"
        )
        self.input_row: dict[str, int] = {
            name: i for i, name in enumerate(self.input_ports)
        }
        self.input_slots = np.array(
            [self.net_index[name] for name in self.input_ports],
            dtype=np.intp,
        )
        self.output_ports: tuple[str, ...] = tuple(sorted(
            name for name, port in module.ports.items()
            if port.direction == "output"
        ))

        flops = module.sequential_instances
        self._flop_insts: list[Instance] = flops
        self.flop_names: tuple[str, ...] = tuple(f.name for f in flops)
        self.q_slots = np.array(
            [self.net_index[f.net_of("Q")] for f in flops], dtype=np.intp
        )
        reset_sel: list[int] = []
        reset_rn: list[int] = []
        for i, flop in enumerate(flops):
            if flop.cell.reset_pin is not None:
                reset_sel.append(i)
                reset_rn.append(
                    self.net_index[flop.net_of(flop.cell.reset_pin)]
                )
        self.reset_sel = np.array(reset_sel, dtype=np.intp)
        self.reset_rn = np.array(reset_rn, dtype=np.intp)

        self.levels: list[_Level] = self._build_levels(module, config)
        self._clock_plans: dict[str, _ClockPlan] = {}

    # -- build --------------------------------------------------------

    def _build_levels(
        self, module: Module, config: SimulatorConfig
    ) -> list[_Level]:
        by_level = levelize_combinational(module)[1]

        levels: list[_Level] = []
        for insts in by_level:
            tables = [_cell_table(inst.cell, config) for inst in insts]
            n_max = 1
            for table in tables:
                for row in table.rows1 + table.rows0:
                    n_max = max(n_max, len(row))

            cls_rows: list[list[int]] = []
            net_rows: list[list[int]] = []

            def emit(
                rows: tuple[tuple[int, ...], ...],
                in_slots: list[int],
                seg: list[int],
            ) -> None:
                seg.append(len(cls_rows))
                if not rows:
                    # An instance whose output is never this polarity
                    # still needs one row so its reduceat segment is
                    # non-empty; a NEVER literal kills every lane.
                    cls_rows.append([_NEVER] + [_ALWAYS] * (n_max - 1))
                    net_rows.append([0] * n_max)
                    return
                for row in rows:
                    pad = n_max - len(row)
                    cls_rows.append(list(row) + [_ALWAYS] * pad)
                    net_rows.append(in_slots + [0] * pad)

            seg1: list[int] = []
            seg0: list[int] = []
            rows0_spec: list[tuple[tuple[tuple[int, ...], ...],
                                   list[int]]] = []
            out_slots: list[int] = []
            for inst, table in zip(insts, tables):
                in_slots = [
                    self.net_index[inst.net_of(pin)]
                    for pin in inst.cell.input_pins
                ]
                emit(table.rows1, in_slots, seg1)
                rows0_spec.append((table.rows0, in_slots))
                out_slots.append(
                    self.net_index[inst.net_of(inst.cell.output_pins[0])]
                )
            for rows0, in_slots in rows0_spec:
                emit(rows0, in_slots, seg0)

            levels.append(_Level(
                cls=np.array(cls_rows, dtype=np.intp),
                net=np.array(net_rows, dtype=np.intp),
                seg=np.array(seg1 + seg0, dtype=np.intp),
                out=np.array(out_slots, dtype=np.intp),
                n_insts=len(insts),
            ))
        return levels

    # -- clock plans --------------------------------------------------

    def clock_plan(self, clock_port: str) -> _ClockPlan:
        """Index arrays for the flops clocked by ``clock_port``.

        Resolution matches ``LogicSimulator.clock_edge``: through
        buffers and ICGs via :func:`resolve_clock_connection`.
        """
        plan = self._clock_plans.get(clock_port)
        if plan is not None:
            return plan
        sel: list[int] = []
        d: list[int] = []
        si: list[int] = []
        se: list[int] = []
        rn: list[int] = []
        en_lists: list[list[int]] = []
        for i, flop in enumerate(self._flop_insts):
            clock_pin = flop.cell.clock_pin
            if clock_pin is None:
                continue
            enables = resolve_clock_connection(
                self.module, flop.net_of(clock_pin), clock_port
            )
            if enables is None:
                continue
            cell = flop.cell
            sel.append(i)
            d.append(self.net_index[flop.net_of(cell.data_pin)])
            si.append(
                self.net_index[flop.net_of(cell.scan_in_pin)]
                if cell.scan_in_pin is not None else self.const0_slot
            )
            se.append(
                self.net_index[flop.net_of(cell.scan_enable_pin)]
                if cell.scan_enable_pin is not None else self.const0_slot
            )
            rn.append(
                self.net_index[flop.net_of(cell.reset_pin)]
                if cell.reset_pin is not None else self.const1_slot
            )
            en_lists.append(
                [self.net_index[name] for name in enables]
            )
        max_en = max((len(e) for e in en_lists), default=0)
        en = np.full((len(sel), max_en), self.const1_slot, dtype=np.intp)
        for row, enables_row in enumerate(en_lists):
            en[row, : len(enables_row)] = enables_row
        plan = _ClockPlan(
            sel=np.array(sel, dtype=np.intp),
            d=np.array(d, dtype=np.intp),
            si=np.array(si, dtype=np.intp),
            se=np.array(se, dtype=np.intp),
            rn=np.array(rn, dtype=np.intp),
            en=en,
        )
        self._clock_plans[clock_port] = plan
        return plan


_PROGRAM_CACHE: dict[tuple[str, SimulatorConfig], CompiledProgram] = {}


def compile_module(
    module: Module, config: SimulatorConfig | None = None
) -> CompiledProgram:
    """Levelize ``module`` under ``config`` (cached).

    The cache key is ``(module.fingerprint(), config)``: structurally
    identical modules share one program, and editing a module yields
    a new fingerprint (and hence a fresh compile) automatically.
    """
    config = config or SimulatorConfig()
    key = (module.fingerprint(), config)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        with stage_timer("sim.compiled.compile") as stats:
            program = CompiledProgram(module, config)
            stats.add(gates=len(module.instances),
                      nets=len(module.nets))
        _PROGRAM_CACHE[key] = program
    return program


# ---------------------------------------------------------------------------
# Batch simulator
# ---------------------------------------------------------------------------


class _LaneView:
    """Read-only, ``LogicSimulator``-shaped view of one lane.

    Exposes ``module``, ``config``, ``cycle``, ``net_values``,
    ``flop_state``, ``read`` / ``read_vector`` / ``read_outputs`` --
    the surface observers such as
    :class:`repro.coverage.StructuralObserver` consume.  Dict
    materialisation is memoized per kernel sweep.
    """

    def __init__(self, batch: "BatchSimulator", lane: int) -> None:
        self._batch = batch
        self.lane = lane
        self._serial = -1
        self._net_values: dict[str, Logic] | None = None
        self._flop_state: dict[str, Logic] | None = None

    @property
    def module(self) -> Module:
        return self._batch.module

    @property
    def config(self) -> SimulatorConfig:
        return self._batch.config

    @property
    def cycle(self) -> int:
        return self._batch.cycle

    def _refresh(self) -> None:
        batch = self._batch
        if self._serial == batch._serial and self._net_values is not None:
            return
        program = batch.program
        planes = batch._planes
        word, bit = divmod(self.lane, WORD_BITS)
        shift = np.uint64(bit)
        one = np.uint64(1)
        col1 = (planes[_IS1, : program.n_nets, word] >> shift) & one
        col0 = (planes[_IS0, : program.n_nets, word] >> shift) & one
        zcol = (batch._znet[: program.n_nets, word] >> shift) & one
        codes = np.where(
            zcol == one, 3,
            np.where(col1 == one, 1, np.where(col0 == one, 0, 2)),
        ).astype(np.int64)
        self._net_values = dict(zip(
            program.net_names,
            map(_LOGIC_BY_CODE.__getitem__, codes.tolist()),
        ))
        f1 = (batch._flop1[:, word] >> shift) & one
        f0 = (batch._flop0[:, word] >> shift) & one
        fz = (batch._flopz[:, word] >> shift) & one
        fcodes = np.where(
            fz == one, 3,
            np.where(f1 == one, 1, np.where(f0 == one, 0, 2)),
        )
        self._flop_state = dict(zip(
            program.flop_names,
            map(_LOGIC_BY_CODE.__getitem__, fcodes.tolist()),
        ))
        self._serial = batch._serial

    @property
    def net_values(self) -> dict[str, Logic]:
        self._refresh()
        assert self._net_values is not None
        return self._net_values

    @property
    def flop_state(self) -> dict[str, Logic]:
        self._refresh()
        assert self._flop_state is not None
        return self._flop_state

    def read(self, net: str) -> Logic:
        return self._batch.read(net, self.lane)

    def read_vector(self, prefix: str, width: int) -> list[Logic]:
        return [self.read(f"{prefix}{i}") for i in range(width)]

    def read_outputs(self) -> dict[str, Logic]:
        return {
            name: self.read(name)
            for name in self._batch.program.output_ports
        }


class BatchSimulator:
    """Compiled-backend simulator running N stimulus lanes at once.

    Mirrors the :class:`~repro.sim.LogicSimulator` API lane-wise:
    ``set_input`` broadcasts a scalar to every lane or takes a
    per-lane sequence, ``evaluate`` / ``clock_edge`` advance all lanes
    together, ``read(net, lane)`` and :meth:`lane_view` observe one
    lane.  Every lane behaves bit-identically to a dedicated
    ``LogicSimulator`` fed the same stimulus.
    """

    def __init__(
        self,
        module: Module,
        config: SimulatorConfig | None = None,
        *,
        lanes: int = WORD_BITS,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.module = module
        self.config = config or SimulatorConfig()
        self.lanes = lanes
        self.words = (lanes + WORD_BITS - 1) // WORD_BITS
        self.program = compile_module(module, self.config)
        program = self.program

        planes = np.zeros((5, program.n_slots, self.words),
                          dtype=np.uint64)
        planes[_ALWAYS] = _FULL
        planes[_ISX, : program.n_nets] = _FULL  # all nets power up X
        planes[_IS0, program.const0_slot] = _FULL
        planes[_ISX, program.const0_slot] = 0
        planes[_IS1, program.const1_slot] = _FULL
        self._planes = planes

        n_flops = len(program.flop_names)
        self._flop0 = np.zeros((n_flops, self.words), dtype=np.uint64)
        self._flop1 = np.zeros((n_flops, self.words), dtype=np.uint64)
        # The event engine stores a captured Z verbatim in flop state
        # (gates normalise it, but reads and traces surface it), so a
        # Z plane rides along: a set bit refines that lane's X.
        self._flopz = np.zeros((n_flops, self.words), dtype=np.uint64)
        if self.config.uninitialized_flop is Logic.ZERO:
            self._flop0[:] = _FULL
        elif self.config.uninitialized_flop is Logic.ONE:
            self._flop1[:] = _FULL

        n_inputs = len(program.input_ports)
        self._in0 = np.zeros((n_inputs, self.words), dtype=np.uint64)
        self._in1 = np.zeros((n_inputs, self.words), dtype=np.uint64)
        self._inx = np.full((n_inputs, self.words), _FULL,
                            dtype=np.uint64)
        self._inz = np.zeros((n_inputs, self.words), dtype=np.uint64)
        # Per-slot Z refinement of the X plane.  Only input-port nets
        # and flop Q nets can carry Z (gates normalise it away); the
        # sweep refreshes those rows, everything else stays zero.
        self._znet = np.zeros((program.n_slots, self.words),
                              dtype=np.uint64)

        self.cycle = 0
        self._serial = 0
        self._observers: list[tuple[Callable, int | None]] = []
        self._views: dict[int, _LaneView] = {}
        self.evaluate()

    # -- observers ----------------------------------------------------

    def attach_observer(
        self, observer: Callable, *, lane: int | None = None
    ) -> None:
        """Fire ``observer(lane_view)`` after every settled edge.

        ``lane=None`` fires it once per lane (in lane order);
        an explicit lane restricts it to that lane -- the idiom for
        per-test attribution when tests ride separate lanes.
        """
        self._observers.append((observer, lane))

    def detach_observer(self, observer: Callable) -> None:
        """Remove every registration of ``observer``."""
        self._observers = [
            (obs, lane) for obs, lane in self._observers
            if obs is not observer
        ]

    def lane_view(self, lane: int) -> _LaneView:
        """A ``LogicSimulator``-compatible read-only view of one lane."""
        view = self._views.get(lane)
        if view is None:
            if not 0 <= lane < self.lanes:
                raise IndexError(f"lane {lane} out of range")
            view = _LaneView(self, lane)
            self._views[lane] = view
        return view

    # -- stimulus -----------------------------------------------------

    def _input_row(self, port: str) -> int:
        row = self.program.input_row.get(port)
        if row is None:
            raise KeyError(
                f"{port!r} is not an input port of {self.module.name}"
            )
        return row

    def set_input(
        self,
        port: str,
        value: Logic | int | bool | Sequence[Logic | int | bool],
    ) -> None:
        """Drive one input port: a scalar broadcasts to every lane, a
        sequence gives one value per lane (propagates on evaluate)."""
        row = self._input_row(port)
        if isinstance(value, (list, tuple, np.ndarray)):
            if len(value) != self.lanes:
                raise ValueError(
                    f"expected {self.lanes} per-lane values for "
                    f"{port!r}, got {len(value)}"
                )
            codes = np.full(self.words * WORD_BITS, int(Logic.X),
                            dtype=np.uint8)
            for lane, item in enumerate(value):
                codes[lane] = int(_logic_of(item))
            self._in0[row] = _pack_lane_bools(codes == 0, self.words)
            self._in1[row] = _pack_lane_bools(codes == 1, self.words)
            self._inx[row] = _pack_lane_bools(codes >= 2, self.words)
            self._inz[row] = _pack_lane_bools(codes == 3, self.words)
            return
        code = _logic_of(value)
        self._in0[row] = _FULL if code is Logic.ZERO else 0
        self._in1[row] = _FULL if code is Logic.ONE else 0
        self._inx[row] = 0 if code.is_known else _FULL
        self._inz[row] = _FULL if code is Logic.Z else 0

    def set_inputs(
        self,
        values: Mapping[str, Logic | int | bool
                        | Sequence[Logic | int | bool]],
    ) -> None:
        """Drive several input ports at once."""
        for port, value in values.items():
            self.set_input(port, value)

    def set_lane_inputs(
        self, vectors: Sequence[Mapping[str, Logic | int | bool]]
    ) -> None:
        """Apply one input vector per lane (like per-lane set_inputs).

        Ports absent from a lane's vector keep that lane's previous
        value -- exactly the hold semantics of running N independent
        ``LogicSimulator.set_inputs`` calls.
        """
        if len(vectors) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} vectors, got {len(vectors)}"
            )
        updates: dict[str, dict[int, Logic]] = {}
        for lane, vector in enumerate(vectors):
            for port, value in vector.items():
                updates.setdefault(port, {})[lane] = _logic_of(value)
        for port, pairs in updates.items():
            row = self._input_row(port)
            touched = bits0 = bits1 = bitsx = bitsz = 0
            for lane, code in pairs.items():
                bit = 1 << lane
                touched |= bit
                if code is Logic.ZERO:
                    bits0 |= bit
                elif code is Logic.ONE:
                    bits1 |= bit
                else:
                    bitsx |= bit
                    if code is Logic.Z:
                        bitsz |= bit
            keep = ~_words_of_int(touched, self.words)
            self._in0[row] = ((self._in0[row] & keep)
                              | _words_of_int(bits0, self.words))
            self._in1[row] = ((self._in1[row] & keep)
                              | _words_of_int(bits1, self.words))
            self._inx[row] = ((self._inx[row] & keep)
                              | _words_of_int(bitsx, self.words))
            self._inz[row] = ((self._inz[row] & keep)
                              | _words_of_int(bitsz, self.words))

    # -- evaluation ---------------------------------------------------

    def _sweep(self) -> None:
        """One full combinational propagation of every lane."""
        planes = self._planes
        program = self.program
        if program.input_slots.size:
            planes[_IS0, program.input_slots] = self._in0
            planes[_IS1, program.input_slots] = self._in1
            planes[_ISX, program.input_slots] = self._inx
            self._znet[program.input_slots] = self._inz
        if program.q_slots.size:
            planes[_IS0, program.q_slots] = self._flop0
            planes[_IS1, program.q_slots] = self._flop1
            planes[_ISX, program.q_slots] = ~(self._flop0 | self._flop1)
            self._znet[program.q_slots] = self._flopz
        for level in program.levels:
            lit = planes[level.cls, level.net]
            terms = np.bitwise_and.reduce(lit, axis=1)
            acc = np.bitwise_or.reduceat(terms, level.seg, axis=0)
            r1 = acc[: level.n_insts]
            r0 = acc[level.n_insts:]
            planes[_IS1, level.out] = r1
            planes[_IS0, level.out] = r0
            planes[_ISX, level.out] = ~(r1 | r0)
        self._serial += 1

    def _apply_async_resets(self) -> bool:
        """Force reset flops low; True if any lane's state changed."""
        program = self.program
        if not program.reset_sel.size:
            return False
        rn0 = self._planes[_IS0, program.reset_rn]
        state0 = self._flop0[program.reset_sel]
        mask = rn0 & ~state0
        if not mask.any():
            return False
        self._flop0[program.reset_sel] = state0 | mask
        self._flop1[program.reset_sel] &= ~mask
        self._flopz[program.reset_sel] &= ~mask
        return True

    def evaluate(self) -> None:
        """Propagate inputs and state to a fixpoint (every lane).

        Same contract as ``LogicSimulator.evaluate``: combinational
        sweep and async-reset application iterate until settled,
        bounded by ``max_settle_rounds``.
        """
        for _ in range(self.config.max_settle_rounds):
            self._sweep()
            if not self._apply_async_resets():
                return
        raise NetlistError(
            f"simulation of {self.module.name} did not settle within "
            f"{self.config.max_settle_rounds} rounds"
        )

    def clock_edge(self, clock_port: str = "clk") -> None:
        """One rising edge of ``clock_port`` across every lane.

        Scan-enable muxing, ICG gating and async-reset override follow
        ``LogicSimulator.clock_edge`` bit for bit: gate all-ONE
        captures, any-ZERO holds, otherwise the state goes X; an
        asserted reset wins over everything.
        """
        with stage_timer("sim.compiled.edge") as stats:
            self.evaluate()  # propagate pending input changes first
            plan = self.program.clock_plan(clock_port)
            if plan.sel.size:
                planes = self._planes
                d0 = planes[_IS0, plan.d]
                d1 = planes[_IS1, plan.d]
                si0 = planes[_IS0, plan.si]
                si1 = planes[_IS1, plan.si]
                se0 = planes[_IS0, plan.se]
                se1 = planes[_IS1, plan.se]
                data1 = (se1 & si1) | (se0 & d1)
                data0 = (se1 & si0) | (se0 & d0)
                dataz = ((se1 & self._znet[plan.si])
                         | (se0 & self._znet[plan.d]))
                # Effective clock gate: AND of the ICG enables.
                all1 = np.bitwise_and.reduce(planes[_IS1, plan.en],
                                             axis=1)
                any0 = np.bitwise_or.reduce(planes[_IS0, plan.en],
                                            axis=1)
                gate_x = ~(all1 | any0)
                captured = all1 | gate_x
                data1 &= ~gate_x  # unknown edge: state becomes X
                data0 &= ~gate_x
                dataz &= ~gate_x
                rn0 = planes[_IS0, plan.rn]
                rn_x = planes[_ISX, plan.rn]
                data0 = (data0 | rn0) & ~rn_x
                data1 = data1 & ~rn0 & ~rn_x
                dataz = dataz & ~rn0 & ~rn_x
                hold1 = self._flop1[plan.sel]
                hold0 = self._flop0[plan.sel]
                holdz = self._flopz[plan.sel]
                self._flop1[plan.sel] = ((captured & data1)
                                         | (~captured & hold1))
                self._flop0[plan.sel] = ((captured & data0)
                                         | (~captured & hold0))
                self._flopz[plan.sel] = ((captured & dataz)
                                         | (~captured & holdz))
            self.cycle += 1
            self.evaluate()
            stats.add(cycles=self.lanes)
        if self._observers:
            for observer, obs_lane in self._observers:
                if obs_lane is None:
                    for lane in range(self.lanes):
                        observer(self.lane_view(lane))
                else:
                    observer(self.lane_view(obs_lane))

    # -- observation --------------------------------------------------

    def read(self, net: str, lane: int = 0) -> Logic:
        """Current value of a net on one lane."""
        slot = self.program.net_index.get(net)
        if slot is None:
            raise KeyError(f"no net {net!r} in {self.module.name}")
        word, bit = divmod(lane, WORD_BITS)
        if (int(self._planes[_IS1, slot, word]) >> bit) & 1:
            return Logic.ONE
        if (int(self._planes[_IS0, slot, word]) >> bit) & 1:
            return Logic.ZERO
        if (int(self._znet[slot, word]) >> bit) & 1:
            return Logic.Z
        return Logic.X

    def read_vector(self, prefix: str, width: int,
                    lane: int = 0) -> list[Logic]:
        """Read ``prefix0..prefix{width-1}`` LSB-first on one lane."""
        return [self.read(f"{prefix}{i}", lane) for i in range(width)]

    def read_outputs(self, lane: int = 0) -> dict[str, Logic]:
        """Snapshot of every output port value on one lane."""
        return {
            name: self.read(name, lane)
            for name in self.program.output_ports
        }

    def net_value_words(self) -> tuple[np.ndarray, np.ndarray]:
        """``(is0, is1)`` uint64 views over (real nets, words).

        Read-only accessors for vectorised consumers (coverage
        accumulation, divergence checks); bit *b* of word *w* is lane
        ``64*w + b``.  Do not mutate.
        """
        n = self.program.n_nets
        return self._planes[_IS0, :n], self._planes[_IS1, :n]

    def flop_state_words(self) -> tuple[np.ndarray, np.ndarray]:
        """``(is0, is1)`` uint64 views over (flops, words)."""
        return self._flop0, self._flop1

    def divergence_words(self, other: "BatchSimulator") -> np.ndarray:
        """Per-net word mask of lanes where two sims disagree.

        Compares the value planes (including the Z refinement, so a
        flop holding Z in one dialect and X in the other counts, just
        as the event engine's identity comparison would).
        """
        if self.program.net_names != other.program.net_names:
            raise ValueError("divergence requires identical netlists")
        mine0, mine1 = self.net_value_words()
        theirs0, theirs1 = other.net_value_words()
        n = self.program.n_nets
        return ((mine0 ^ theirs0) | (mine1 ^ theirs1)
                | (self._znet[:n] ^ other._znet[:n]))

    # -- batch run ----------------------------------------------------

    def _input_codes(self, row: int) -> np.ndarray:
        """Current per-lane value codes (0/1/2/3) of one input row."""
        bits0 = np.unpackbits(self._in0[row].view(np.uint8),
                              bitorder="little")
        bits1 = np.unpackbits(self._in1[row].view(np.uint8),
                              bitorder="little")
        bitsz = np.unpackbits(self._inz[row].view(np.uint8),
                              bitorder="little")
        return np.where(
            bitsz == 1, 3,
            np.where(bits1 == 1, 1, np.where(bits0 == 1, 0, 2)),
        ).astype(np.uint8)

    def run(
        self,
        stimuli: Sequence[Sequence[Mapping[str, Logic | int | bool]]],
        *,
        clock_port: str = "clk",
        watch: Iterable[str] | None = None,
    ) -> list[Trace]:
        """Run one stimulus sequence per lane, returning per-lane traces.

        The lane-wise counterpart of ``LogicSimulator.run``: each
        lane's vector *t* is applied before rising edge *t* and the
        watched signals (default: all output ports, sorted) are
        sampled after the edge.  Lanes may have different stimulus
        lengths; a shorter lane's trace simply stops early (its inputs
        hold their last values while other lanes finish).  Stimulus is
        pre-packed into bit-plane columns, so the per-cycle cost is a
        handful of numpy ops regardless of lane count.
        """
        if len(stimuli) != self.lanes:
            raise ValueError(
                f"expected {self.lanes} stimulus sequences, "
                f"got {len(stimuli)}"
            )
        if watch is None:
            watch_t: tuple[str, ...] = self.program.output_ports
        else:
            watch_t = tuple(watch)
        for signal in watch_t:
            if signal not in self.program.net_index:
                raise KeyError(
                    f"no net {signal!r} in {self.module.name}"
                )
        cycles = max((len(s) for s in stimuli), default=0)
        if cycles == 0:
            return [Trace(signals=watch_t) for _ in stimuli]
        watch_slots = np.array(
            [self.program.net_index[s] for s in watch_t], dtype=np.intp
        )

        # Pre-pack the stimulus: per driven port, a (cycles, words)
        # word matrix per plane, with per-lane hold-previous-value
        # resolution done once up front.
        ports_used = sorted({
            port for seq in stimuli for vector in seq for port in vector
        })
        lanes_pad = self.words * WORD_BITS
        packed: list[tuple[int, np.ndarray, np.ndarray,
                           np.ndarray, np.ndarray]] = []
        for port in ports_used:
            row = self._input_row(port)
            current = self._input_codes(row)
            matrix = np.empty((cycles, lanes_pad), dtype=np.uint8)
            for t in range(cycles):
                for lane, seq in enumerate(stimuli):
                    if t < len(seq):
                        value = seq[t].get(port)
                        if value is not None:
                            current[lane] = int(_logic_of(value))
                matrix[t] = current

            def pack(mask: np.ndarray) -> np.ndarray:
                return np.packbits(
                    mask, axis=1, bitorder="little"
                ).view(np.uint64)

            packed.append((row, pack(matrix == 0), pack(matrix == 1),
                           pack(matrix >= 2), pack(matrix == 3)))

        hist0 = np.empty((cycles, len(watch_t), self.words),
                         dtype=np.uint64)
        hist1 = np.empty_like(hist0)
        histz = np.empty_like(hist0)

        with stage_timer("sim.compiled.run") as stats:
            for t in range(cycles):
                for row, m0, m1, mx, mz in packed:
                    self._in0[row] = m0[t]
                    self._in1[row] = m1[t]
                    self._inx[row] = mx[t]
                    self._inz[row] = mz[t]
                self.clock_edge(clock_port)
                hist0[t] = self._planes[_IS0, watch_slots]
                hist1[t] = self._planes[_IS1, watch_slots]
                histz[t] = self._znet[watch_slots]
            stats.add(cycles=cycles * self.lanes, lanes=self.lanes,
                      runs=1)

        bits0 = np.unpackbits(hist0.view(np.uint8), axis=-1,
                              bitorder="little")
        bits1 = np.unpackbits(hist1.view(np.uint8), axis=-1,
                              bitorder="little")
        bitsz = np.unpackbits(histz.view(np.uint8), axis=-1,
                              bitorder="little")
        codes = np.where(
            bitsz == 1, 3,
            np.where(bits1 == 1, 1, np.where(bits0 == 1, 0, 2)),
        ).astype(np.uint8)

        traces: list[Trace] = []
        for lane, seq in enumerate(stimuli):
            lane_codes = codes[: len(seq), :, lane].tolist()
            trace = Trace(signals=watch_t)
            trace.samples = [
                tuple(_LOGIC_BY_CODE[c] for c in sample)
                for sample in lane_codes
            ]
            traces.append(trace)
        return traces


def run_lanes(
    module: Module,
    stimuli: Sequence[Sequence[Mapping[str, Logic | int | bool]]],
    config: SimulatorConfig | None = None,
    *,
    clock_port: str = "clk",
    watch: Iterable[str] | None = None,
) -> list[Trace]:
    """Convenience: one fresh ``BatchSimulator`` run over N stimuli."""
    sim = BatchSimulator(module, config, lanes=len(stimuli))
    return sim.run(stimuli, clock_port=clock_port, watch=watch)


def clear_program_cache() -> None:
    """Drop every cached compiled program (mainly for tests)."""
    _PROGRAM_CACHE.clear()
    _TABLE_CACHE.clear()
