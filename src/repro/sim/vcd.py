"""Value-change-dump (VCD) export for simulation traces.

Writes IEEE-1364 VCD from a :class:`repro.sim.Trace` so waveforms from
the Python simulator open in any standard viewer (GTKWave etc.) --
the cross-team debug currency the paper's sign-off arguments were
settled with.
"""

from __future__ import annotations

from typing import IO

from ..netlist import Logic
from .simulator import Trace

#: Printable VCD identifier alphabet.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))

_VALUE_CHAR = {
    Logic.ZERO: "0",
    Logic.ONE: "1",
    Logic.X: "x",
    Logic.Z: "z",
}


def _identifier(index: int) -> str:
    """Compact VCD identifier for the index-th signal."""
    if index < 0:
        raise ValueError("index must be non-negative")
    chars = []
    index += 1
    while index:
        index -= 1
        chars.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
    return "".join(chars)


def write_vcd(
    trace: Trace,
    stream: IO[str],
    *,
    module_name: str = "dut",
    timescale: str = "1 ns",
    cycle_time: int = 10,
) -> int:
    """Serialise a trace as VCD; returns value changes written.

    Each trace sample becomes one timestep of ``cycle_time``; only
    changed signals are dumped per step, per the VCD format.
    """
    identifiers = {
        signal: _identifier(index)
        for index, signal in enumerate(trace.signals)
    }
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {module_name} $end\n")
    for signal in trace.signals:
        stream.write(f"$var wire 1 {identifiers[signal]} {signal} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    changes = 0
    previous: dict[str, Logic] = {}
    for cycle, sample in enumerate(trace.samples):
        emitted_time = False
        for signal, value in zip(trace.signals, sample):
            if previous.get(signal) is value:
                continue
            if not emitted_time:
                stream.write(f"#{cycle * cycle_time}\n")
                emitted_time = True
            stream.write(f"{_VALUE_CHAR[value]}{identifiers[signal]}\n")
            previous[signal] = value
            changes += 1
    stream.write(f"#{len(trace.samples) * cycle_time}\n")
    return changes


def save_vcd(trace: Trace, path: str, **kwargs) -> int:
    """Convenience wrapper: write the trace to a file path."""
    with open(path, "w", encoding="ascii") as stream:
        return write_vcd(trace, stream, **kwargs)
