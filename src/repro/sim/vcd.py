"""Value-change-dump (VCD) export/import for simulation traces.

Writes IEEE-1364 VCD from a :class:`repro.sim.Trace` so waveforms from
the Python simulator open in any standard viewer (GTKWave etc.) --
the cross-team debug currency the paper's sign-off arguments were
settled with -- and reads them back (:func:`read_vcd`) so dumped
traces round-trip exactly.

VCD tokenises on whitespace and on the ``$``-keyword sentinels, so a
raw signal name like ``bus $end`` or ``data out`` would corrupt the
``$var`` declaration.  Such names are percent-escaped on write
(``%20``, ``%24``, ...) and transparently unescaped on read; see
:func:`escape_signal_name`.
"""

from __future__ import annotations

from typing import IO

from ..netlist import Logic
from .simulator import Trace

#: Printable VCD identifier alphabet.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))

_VALUE_CHAR = {
    Logic.ZERO: "0",
    Logic.ONE: "1",
    Logic.X: "x",
    Logic.Z: "z",
}

_CHAR_VALUE = {char: level for level, char in _VALUE_CHAR.items()}


def _identifier(index: int) -> str:
    """Compact VCD identifier for the index-th signal."""
    if index < 0:
        raise ValueError("index must be non-negative")
    chars = []
    index += 1
    while index:
        index -= 1
        chars.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
    return "".join(chars)


def escape_signal_name(name: str) -> str:
    """Escape a signal name into one safe VCD reference token.

    Whitespace and non-printable characters would break VCD's
    whitespace tokenisation, ``$`` could collide with keyword
    sentinels like ``$end``, and ``%`` is the escape introducer
    itself; each such character becomes ``%XX`` (uppercase hex).
    Empty names are rejected -- there is nothing to escape them *to*.
    """
    if not name:
        raise ValueError("signal name must be non-empty")
    escaped = []
    for char in name:
        code = ord(char)
        if char in "$%" or char.isspace() or not 33 <= code <= 126:
            if code > 0xFF:
                raise ValueError(
                    f"cannot escape non-Latin-1 character {char!r} "
                    f"in signal name {name!r}"
                )
            escaped.append(f"%{code:02X}")
        else:
            escaped.append(char)
    return "".join(escaped)


def unescape_signal_name(token: str) -> str:
    """Inverse of :func:`escape_signal_name`."""
    out = []
    index = 0
    while index < len(token):
        char = token[index]
        if char == "%":
            if index + 3 > len(token):
                raise ValueError(f"truncated escape in {token!r}")
            out.append(chr(int(token[index + 1:index + 3], 16)))
            index += 3
        else:
            out.append(char)
            index += 1
    return "".join(out)


def write_vcd(
    trace: Trace,
    stream: IO[str],
    *,
    module_name: str = "dut",
    timescale: str = "1 ns",
    cycle_time: int = 10,
) -> int:
    """Serialise a trace as VCD; returns value changes written.

    Each trace sample becomes one timestep of ``cycle_time``; only
    changed signals are dumped per step, per the VCD format.  Signal
    names that would corrupt the format are percent-escaped (see
    :func:`escape_signal_name`).
    """
    identifiers = {
        signal: _identifier(index)
        for index, signal in enumerate(trace.signals)
    }
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {module_name} $end\n")
    for signal in trace.signals:
        safe = escape_signal_name(signal)
        stream.write(f"$var wire 1 {identifiers[signal]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    changes = 0
    previous: dict[str, Logic] = {}
    for cycle, sample in enumerate(trace.samples):
        emitted_time = False
        for signal, value in zip(trace.signals, sample):
            if previous.get(signal) is value:
                continue
            if not emitted_time:
                stream.write(f"#{cycle * cycle_time}\n")
                emitted_time = True
            stream.write(f"{_VALUE_CHAR[value]}{identifiers[signal]}\n")
            previous[signal] = value
            changes += 1
    stream.write(f"#{len(trace.samples) * cycle_time}\n")
    return changes


def read_vcd(stream: IO[str], *, cycle_time: int = 10) -> Trace:
    """Parse a VCD produced by :func:`write_vcd` back into a trace.

    Signals come back in declaration order with their original
    (unescaped) names; samples are reconstructed on the writer's
    ``cycle_time`` grid, holding each signal's last change per the
    format.  The trailing ``#time`` marker defines the trace length.
    """
    signals: list[str] = []
    id_to_signal: dict[str, str] = {}
    events: list[tuple[int, str, Logic]] = []
    last_time = 0
    current_time = 0
    in_header = True
    for raw_line in stream:
        line = raw_line.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$var"):
                tokens = line.split()
                if len(tokens) != 6 or tokens[-1] != "$end":
                    raise ValueError(f"malformed $var line: {line!r}")
                _, _, _, identifier, name_token, _ = tokens
                name = unescape_signal_name(name_token)
                signals.append(name)
                id_to_signal[identifier] = name
            elif line.startswith("$enddefinitions"):
                in_header = False
            continue
        if line.startswith("#"):
            current_time = int(line[1:])
            last_time = max(last_time, current_time)
            continue
        value_char, identifier = line[0], line[1:]
        if value_char not in _CHAR_VALUE:
            raise ValueError(f"unknown value change line: {line!r}")
        try:
            signal = id_to_signal[identifier]
        except KeyError:
            raise ValueError(
                f"value change for undeclared identifier {identifier!r}"
            ) from None
        events.append((current_time, signal, _CHAR_VALUE[value_char]))

    n_cycles = last_time // cycle_time
    current: dict[str, Logic] = {name: Logic.X for name in signals}
    samples: list[tuple[Logic, ...]] = []
    event_index = 0
    for cycle in range(n_cycles):
        boundary = cycle * cycle_time
        while event_index < len(events) and \
                events[event_index][0] <= boundary:
            _, signal, value = events[event_index]
            current[signal] = value
            event_index += 1
        samples.append(tuple(current[name] for name in signals))
    return Trace(signals=tuple(signals), samples=samples)


def save_vcd(
    trace: Trace,
    path: str,
    *,
    module_name: str = "dut",
    timescale: str = "1 ns",
    cycle_time: int = 10,
) -> int:
    """Convenience wrapper: write the trace to a file path."""
    with open(path, "w", encoding="ascii") as stream:
        return write_vcd(trace, stream, module_name=module_name,
                         timescale=timescale, cycle_time=cycle_time)


def load_vcd(path: str, *, cycle_time: int = 10) -> Trace:
    """Convenience wrapper: read a trace back from a file path."""
    with open(path, "r", encoding="ascii") as stream:
        return read_vcd(stream, cycle_time=cycle_time)
