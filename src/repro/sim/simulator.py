"""Cycle-accurate four-value logic simulation of netlist modules.

The simulator evaluates a flat :class:`~repro.netlist.Module`:
combinational logic is propagated in topological order each delta
round, flip-flops are updated on explicit clock edges, and asynchronous
resets are honoured between rounds.

Two *dialects* are provided (:data:`VENDOR_A_SIM`, :data:`VENDOR_B_SIM`)
that differ in how uninitialised flip-flops and unknown values are
treated.  This reproduces the paper's Section-3 pain point: the
customer simulated with a PC-based Verilog/ModelSim setup while the
design service used NC-Verilog, and the differing X semantics caused
"extra twist during ASIC sign-off".  Running the same netlist and
stimulus under both dialects and diffing the traces is experiment E13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..netlist import Logic, Module
from ..netlist.library import Cell
from ..netlist.logic import logic_and
from ..netlist.netlist import Instance, NetlistError
from ..perf import stage_timer


@dataclass(frozen=True)
class SimulatorConfig:
    """Dialect knobs for the logic simulator.

    ``uninitialized_flop`` -- power-on value of a flip-flop that has
    not been reset: true Verilog semantics use ``X``; some flows
    initialise to ``0`` (e.g. FPGA-targeted RTL or two-state modes).

    ``x_pessimism`` -- when True, an ``X`` on a mux select poisons the
    output even if both data inputs agree (pessimistic X propagation);
    when False the standard optimistic semantics apply.

    ``max_settle_rounds`` -- bound on async-reset/evaluate iterations.
    """

    name: str = "default"
    uninitialized_flop: Logic = Logic.X
    x_pessimism: bool = False
    max_settle_rounds: int = 8


#: NC-Verilog-style four-state simulation: flops power up unknown.
VENDOR_A_SIM = SimulatorConfig(name="vendor_a_4state", uninitialized_flop=Logic.X)

#: PC/ModelSim-style two-state-leaning setup: flops power up at zero.
VENDOR_B_SIM = SimulatorConfig(
    name="vendor_b_2state", uninitialized_flop=Logic.ZERO
)


def evaluate_cell(
    cell: Cell, inputs: Mapping[str, Logic], config: SimulatorConfig
) -> Logic:
    """Evaluate one combinational cell under a dialect's X policy.

    This is the single source of truth for dialect-sensitive gate
    semantics: the simulator's inner loop and the static analysis
    engine (:mod:`repro.analysis`) both call it, so a policy change
    (e.g. ``x_pessimism``) cannot drift between the two.
    """
    if config.x_pessimism and cell.footprint == "MUX2":
        if not inputs["S"].is_known:
            return Logic.X
    return cell.evaluate(inputs)


@dataclass
class Trace:
    """Per-cycle recording of selected signals (a tiny VCD substitute)."""

    signals: tuple[str, ...]
    samples: list[tuple[Logic, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        # signal -> tuple position, so column() is O(1) per sample
        # instead of a linear signal scan.
        self._index = {s: i for i, s in enumerate(self.signals)}

    def record(self, values: Mapping[str, Logic]) -> None:
        self.samples.append(tuple(values[s] for s in self.signals))

    def column(self, signal: str) -> list[Logic]:
        index = self._index.get(signal)
        if index is None:
            raise ValueError(
                f"trace does not record signal {signal!r}"
            )
        return [sample[index] for sample in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


def diff_traces(
    a: Trace, b: Trace, *, limit: int | None = None
) -> list[tuple[int, str, Logic, Logic]]:
    """All (cycle, signal, value_a, value_b) points where two traces differ.

    Traces must cover the same signals; the comparison runs over the
    common cycle prefix.  ``limit`` caps how many mismatches are
    materialised (None keeps them all): diffing long, widely divergent
    traces otherwise builds millions of tuples just to learn "they
    differ".
    """
    if a.signals != b.signals:
        raise ValueError("traces record different signal sets")
    mismatches: list[tuple[int, str, Logic, Logic]] = []
    for cycle in range(min(len(a), len(b))):
        for signal, va, vb in zip(a.signals, a.samples[cycle], b.samples[cycle]):
            if va is not vb:
                mismatches.append((cycle, signal, va, vb))
                if limit is not None and len(mismatches) >= limit:
                    return mismatches
    return mismatches


def resolve_clock_connection(
    module: Module, net_name: str, clock_port: str
) -> tuple[str, ...] | None:
    """Enable nets between ``clock_port`` and a clock-pin net, or None.

    A flop is driven by ``clock_port``'s rising edge iff its clock net
    traces back -- through buffers, pads and integrated clock gates --
    to that input port with even inverter parity.  The returned tuple
    lists the EN nets of every ICG crossed (empty when the pin sees
    the port through buffers only); ``None`` means the pin is not
    clocked by this port at all (another port, an inverted/derived
    clock, a flop-driven ripple clock, ...).
    """
    from ..lint.domains import trace_control_source

    trace = trace_control_source(module, net_name)
    if trace.kind != "port" or trace.root != clock_port or trace.inverted:
        return None
    enables: list[str] = []
    for inst_name in trace.path:
        inst = module.instances[inst_name]
        if inst.cell.is_clock_gate:
            enables.extend(
                inst.net_of(pin)
                for pin in inst.cell.input_pins
                if pin != "CK"
            )
    return tuple(enables)


class LogicSimulator:
    """Four-value, cycle-driven simulator for one flat module."""

    def __init__(self, module: Module,
                 config: SimulatorConfig | None = None) -> None:
        self.module = module
        self.config = config or SimulatorConfig()
        self._order = module.topological_combinational_order()
        self._flops = module.sequential_instances
        self.net_values: dict[str, Logic] = {
            name: Logic.X for name in module.nets
        }
        self.flop_state: dict[str, Logic] = {
            flop.name: self.config.uninitialized_flop for flop in self._flops
        }
        self._input_values: dict[str, Logic] = {
            name: Logic.X
            for name, port in module.ports.items()
            if port.direction == "input"
        }
        self.cycle = 0
        self._observers: list[Callable[["LogicSimulator"], None]] = []
        # clock port -> [(flop, ICG enable nets)], resolved lazily.
        self._clock_plans: dict[
            str, list[tuple[Instance, tuple[str, ...]]]
        ] = {}
        self.evaluate()

    # -- observers ----------------------------------------------------

    def attach_observer(
        self, observer: Callable[["LogicSimulator"], None]
    ) -> None:
        """Register a callback fired after every settled clock edge.

        Coverage collectors (:mod:`repro.coverage`) hook in here; with
        no observers attached the simulator pays only an empty-list
        check per edge, so the bare simulation path is not slowed.
        """
        self._observers.append(observer)

    def detach_observer(
        self, observer: Callable[["LogicSimulator"], None]
    ) -> None:
        """Remove a previously attached observer."""
        self._observers.remove(observer)

    # -- stimulus -----------------------------------------------------

    def set_input(self, port: str, value: Logic | int | bool) -> None:
        """Drive one input port (does not propagate until evaluate)."""
        if port not in self._input_values:
            raise KeyError(f"{port!r} is not an input port of {self.module.name}")
        if isinstance(value, bool):
            value = Logic.from_bool(value)
        elif isinstance(value, int) and not isinstance(value, Logic):
            value = Logic(value)
        self._input_values[port] = value

    def set_inputs(self, values: Mapping[str, Logic | int | bool]) -> None:
        """Drive several input ports at once."""
        for port, value in values.items():
            self.set_input(port, value)

    # -- evaluation ---------------------------------------------------

    def _evaluate_instance(self, inst: Instance) -> Logic:
        cell = inst.cell
        inputs = {
            pin: self.net_values[inst.net_of(pin)] for pin in cell.input_pins
        }
        return evaluate_cell(cell, inputs, self.config)

    def _propagate_combinational(self) -> None:
        values = self.net_values
        # Input ports drive their named nets.
        for port, value in self._input_values.items():
            values[port] = value
        # Flop outputs drive their Q nets.
        for flop in self._flops:
            q_net = flop.net_of("Q")
            values[q_net] = self.flop_state[flop.name]
        for inst in self._order:
            out_pin = inst.cell.output_pins[0]
            values[inst.net_of(out_pin)] = self._evaluate_instance(inst)

    def _apply_async_resets(self) -> bool:
        """Force reset flops low; returns True if any state changed."""
        changed = False
        for flop in self._flops:
            reset_pin = flop.cell.reset_pin
            if reset_pin is None:
                continue
            if self.net_values[flop.net_of(reset_pin)] is Logic.ZERO:
                if self.flop_state[flop.name] is not Logic.ZERO:
                    self.flop_state[flop.name] = Logic.ZERO
                    changed = True
        return changed

    def evaluate(self) -> None:
        """Propagate inputs and state through combinational logic.

        Iterates evaluation and asynchronous-reset application until a
        fixpoint (bounded by ``max_settle_rounds``).
        """
        for _ in range(self.config.max_settle_rounds):
            self._propagate_combinational()
            if not self._apply_async_resets():
                return
        raise NetlistError(
            f"simulation of {self.module.name} did not settle within "
            f"{self.config.max_settle_rounds} rounds"
        )

    def _clock_plan(
        self, clock_port: str
    ) -> list[tuple[Instance, tuple[str, ...]]]:
        plan = self._clock_plans.get(clock_port)
        if plan is None:
            plan = []
            for flop in self._flops:
                clock_pin = flop.cell.clock_pin
                if clock_pin is None:
                    continue
                enables = resolve_clock_connection(
                    self.module, flop.net_of(clock_pin), clock_port
                )
                if enables is not None:
                    plan.append((flop, enables))
            self._clock_plans[clock_port] = plan
        return plan

    def clock_edge(self, clock_port: str = "clk") -> None:
        """Apply one rising edge on ``clock_port``: sample D, update Q.

        A flop is clocked iff its clock pin traces back to
        ``clock_port`` (through buffers and clock gates -- see
        :func:`resolve_clock_connection`); other flops are left
        untouched, which supports simple multi-clock designs.  For a
        gated clock the ICG enables decide: all ONE captures, any ZERO
        holds, otherwise whether an edge reached the flop is unknown
        and its state goes X.
        """
        with stage_timer("sim.event.edge") as stats:
            self.evaluate()  # propagate any pending input changes first
            next_state: dict[str, Logic] = {}
            for flop, enable_nets in self._clock_plan(clock_port):
                gate = Logic.ONE
                for net in enable_nets:
                    gate = logic_and(gate, self.net_values[net])
                if gate is Logic.ZERO:
                    continue  # clock gated off: the flop holds
                cell = flop.cell
                if cell.scan_enable_pin is not None:
                    scan_enable = self.net_values[
                        flop.net_of(cell.scan_enable_pin)
                    ]
                else:
                    scan_enable = Logic.ZERO
                if scan_enable is Logic.ONE:
                    data = self.net_values[flop.net_of(cell.scan_in_pin)]
                elif scan_enable is Logic.ZERO:
                    data = self.net_values[flop.net_of(cell.data_pin)]
                else:
                    data = Logic.X
                if gate is not Logic.ONE:
                    data = Logic.X  # gate unknown: edge may have fired
                if cell.reset_pin is not None:
                    reset = self.net_values[flop.net_of(cell.reset_pin)]
                    if reset is Logic.ZERO:
                        data = Logic.ZERO
                    elif not reset.is_known:
                        data = Logic.X
                next_state[flop.name] = data
            self.flop_state.update(next_state)
            self.cycle += 1
            self.evaluate()
            stats.add(cycles=1)
        if self._observers:
            for observer in self._observers:
                observer(self)

    # -- observation ----------------------------------------------------

    def read(self, net: str) -> Logic:
        """Current value of a net (or port, which shares its net name)."""
        try:
            return self.net_values[net]
        except KeyError:
            raise KeyError(f"no net {net!r} in {self.module.name}") from None

    def read_vector(self, prefix: str, width: int) -> list[Logic]:
        """Read ``prefix0..prefix{width-1}`` as an LSB-first vector."""
        return [self.read(f"{prefix}{i}") for i in range(width)]

    def read_outputs(self) -> dict[str, Logic]:
        """Snapshot of every output port value."""
        return {
            name: self.net_values[name]
            for name, port in self.module.ports.items()
            if port.direction == "output"
        }

    def run(
        self,
        stimulus: Sequence[Mapping[str, Logic | int | bool]],
        *,
        clock_port: str = "clk",
        watch: Iterable[str] | None = None,
    ) -> Trace:
        """Run a clocked stimulus sequence, returning a trace.

        Each element of ``stimulus`` is applied before one rising clock
        edge; watched signals (default: all output ports) are sampled
        after each edge.
        """
        if watch is None:
            watch = sorted(
                name
                for name, port in self.module.ports.items()
                if port.direction == "output"
            )
        trace = Trace(signals=tuple(watch))
        for vector in stimulus:
            self.set_inputs(vector)
            self.evaluate()
            self.clock_edge(clock_port)
            trace.record({s: self.read(s) for s in trace.signals})
        return trace
