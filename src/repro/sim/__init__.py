"""Four-value logic simulation with configurable vendor dialects."""

from .simulator import (
    LogicSimulator,
    SimulatorConfig,
    Trace,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
)
from .vcd import save_vcd, write_vcd

__all__ = [
    "LogicSimulator",
    "SimulatorConfig",
    "Trace",
    "VENDOR_A_SIM",
    "VENDOR_B_SIM",
    "diff_traces",
    "save_vcd",
    "write_vcd",
]
