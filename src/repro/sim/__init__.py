"""Four-value logic simulation with configurable vendor dialects."""

from .simulator import (
    LogicSimulator,
    SimulatorConfig,
    Trace,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
    evaluate_cell,
)
from .vcd import (
    escape_signal_name,
    load_vcd,
    read_vcd,
    save_vcd,
    unescape_signal_name,
    write_vcd,
)

__all__ = [
    "LogicSimulator",
    "SimulatorConfig",
    "Trace",
    "VENDOR_A_SIM",
    "VENDOR_B_SIM",
    "diff_traces",
    "evaluate_cell",
    "escape_signal_name",
    "load_vcd",
    "read_vcd",
    "save_vcd",
    "unescape_signal_name",
    "write_vcd",
]
