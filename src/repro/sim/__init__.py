"""Four-value logic simulation with configurable vendor dialects.

Two engines share one semantic core (:func:`evaluate_cell`):

* :class:`LogicSimulator` -- the interpreted, event-style reference.
* :class:`BatchSimulator` -- the compiled word-parallel backend
  (:mod:`repro.sim.compiled`): the module is levelized once into a
  flat numpy program and 64 stimulus lanes evaluate per uint64 word.
"""

from .compiled import (
    BatchSimulator,
    CompileError,
    CompiledProgram,
    compile_module,
    run_lanes,
)
from .simulator import (
    LogicSimulator,
    SimulatorConfig,
    Trace,
    VENDOR_A_SIM,
    VENDOR_B_SIM,
    diff_traces,
    evaluate_cell,
    resolve_clock_connection,
)
from .vcd import (
    escape_signal_name,
    load_vcd,
    read_vcd,
    save_vcd,
    unescape_signal_name,
    write_vcd,
)

__all__ = [
    "BatchSimulator",
    "CompileError",
    "CompiledProgram",
    "LogicSimulator",
    "SimulatorConfig",
    "Trace",
    "VENDOR_A_SIM",
    "VENDOR_B_SIM",
    "compile_module",
    "diff_traces",
    "evaluate_cell",
    "escape_signal_name",
    "load_vcd",
    "read_vcd",
    "resolve_clock_connection",
    "run_lanes",
    "save_vcd",
    "unescape_signal_name",
    "write_vcd",
]
