"""MBIST execution: run a planned BIST architecture against silicon.

The :class:`~repro.mbist.bist.BistPlan` says *what* hardware is
inserted; this module runs it: the shared controller sequences the
memory groups, each group's sequencer drives the March algorithm into
its member memories in lockstep, pattern generators compare, and the
controller collects a per-memory pass/fail map -- exactly what the
tester reads out of the paper's 30-macro DSC controller at probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .bist import BistPlan, MemoryMacro
from .march import run_march
from .memory import SramModel, random_fault


@dataclass
class BistRunResult:
    """Outcome of one full-chip MBIST session."""

    plan_sharing: str
    march_name: str
    per_memory_pass: dict[str, bool] = field(default_factory=dict)
    cycles_executed: int = 0
    groups_run: int = 0

    @property
    def all_pass(self) -> bool:
        return all(self.per_memory_pass.values())

    @property
    def failing_memories(self) -> list[str]:
        return sorted(
            name for name, ok in self.per_memory_pass.items() if not ok
        )

    def format_report(self) -> str:
        lines = [
            f"MBIST session ({self.plan_sharing}, {self.march_name})",
            f"  memories   : {len(self.per_memory_pass)}"
            f" ({len(self.failing_memories)} failing)",
            f"  cycles     : {self.cycles_executed}",
            f"  verdict    : {'PASS' if self.all_pass else 'FAIL'}",
        ]
        for name in self.failing_memories:
            lines.append(f"    FAIL {name}")
        return "\n".join(lines)


def run_bist_session(
    plan: BistPlan,
    memories: Mapping[str, SramModel],
    *,
    max_parallel_groups: int = 4,
) -> BistRunResult:
    """Execute the BIST plan against behavioural memories.

    ``memories`` maps macro name -> its (possibly fault-injected)
    :class:`SramModel`.  Groups execute in waves of
    ``max_parallel_groups``; within a wave the wall-clock cycles are
    the longest member group's March run.
    """
    missing = [
        name for group in plan.groups for name in group
        if name not in memories
    ]
    if missing:
        raise KeyError(f"no SramModel supplied for: {missing[:4]}")

    result = BistRunResult(
        plan_sharing=plan.sharing, march_name=plan.march.name
    )
    group_cycles: list[int] = []
    for group in plan.groups:
        longest = 0
        for name in group:
            memory = memories[name]
            outcome = run_march(memory, plan.march)
            result.per_memory_pass[name] = outcome.passed
            longest = max(
                longest, plan.march.test_cycles(memory.words)
            )
        group_cycles.append(longest)
        result.groups_run += 1
    # Wave scheduling, longest groups first (as the planner assumed).
    group_cycles.sort(reverse=True)
    for start in range(0, len(group_cycles), max_parallel_groups):
        result.cycles_executed += group_cycles[start]
    return result


def build_memories(
    macros: list[MemoryMacro],
    *,
    defective: Mapping[str, str] | None = None,
    seed: int = 0,
) -> dict[str, SramModel]:
    """Instantiate SramModels for a macro list.

    ``defective`` maps macro name -> fault family to inject (one
    random instance of that family).
    """
    rng = np.random.default_rng(seed)
    defective = defective or {}
    memories: dict[str, SramModel] = {}
    for macro in macros:
        memory = SramModel(macro.words, macro.bits)
        family = defective.get(macro.name)
        if family is not None:
            memory.inject(
                random_fault(family, macro.words, macro.bits, rng)
            )
        memories[macro.name] = memory
    return memories
