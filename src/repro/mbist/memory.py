"""Behavioural SRAM model with injectable functional fault models.

The fault models are the classical memory-test taxonomy (van de Goor):

* ``SAF``  -- stuck-at cell,
* ``TF``   -- transition fault (cell cannot make one transition),
* ``CFid`` -- idempotent coupling fault (aggressor write transition
  forces the victim to a value),
* ``CFin`` -- inversion coupling fault (aggressor transition inverts
  the victim),
* ``AF``   -- address-decoder fault (two addresses map to one cell),
* ``SOF``  -- stuck-open cell (read returns the previous read value).

March tests from :mod:`repro.mbist.march` run against this model to
measure real (not tabulated) fault coverage -- the methodology behind
the paper's in-house MBIST generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class MemoryFault(Protocol):
    """Interface every injectable fault implements."""

    def on_write(self, memory: "SramModel", address: int, value: int) -> int | None:
        """Observe/modify a write.  Return a replacement value or None."""

    def on_read(self, memory: "SramModel", address: int, value: int) -> int:
        """Observe/modify a read result."""


@dataclass
class StuckAtFault:
    """Cell at ``address`` bit ``bit`` permanently reads ``value``."""

    address: int
    bit: int
    value: int

    def on_write(self, memory, address, value):
        if address == self.address:
            mask = 1 << self.bit
            return (value & ~mask) | (self.value << self.bit)
        return None

    def on_read(self, memory, address, value):
        if address == self.address:
            mask = 1 << self.bit
            return (value & ~mask) | (self.value << self.bit)
        return value


@dataclass
class TransitionFault:
    """Cell cannot make the ``rising`` (0->1) or falling transition."""

    address: int
    bit: int
    rising: bool  # True: up-transition fails; False: down-transition

    def on_write(self, memory, address, value):
        if address != self.address:
            return None
        mask = 1 << self.bit
        old_bit = (memory.raw_word(address) >> self.bit) & 1
        new_bit = (value >> self.bit) & 1
        if self.rising and old_bit == 0 and new_bit == 1:
            return value & ~mask
        if not self.rising and old_bit == 1 and new_bit == 0:
            return value | mask
        return None

    def on_read(self, memory, address, value):
        return value


@dataclass
class CouplingFaultIdempotent:
    """A write transition on the aggressor cell forces the victim."""

    aggressor_address: int
    aggressor_bit: int
    victim_address: int
    victim_bit: int
    trigger_rising: bool
    forced_value: int

    def on_write(self, memory, address, value):
        if address != self.aggressor_address:
            return None
        old_bit = (memory.raw_word(address) >> self.aggressor_bit) & 1
        new_bit = (value >> self.aggressor_bit) & 1
        triggered = (
            (self.trigger_rising and old_bit == 0 and new_bit == 1)
            or (not self.trigger_rising and old_bit == 1 and new_bit == 0)
        )
        if triggered:
            victim = memory.raw_word(self.victim_address)
            mask = 1 << self.victim_bit
            victim = (victim & ~mask) | (self.forced_value << self.victim_bit)
            memory.poke(self.victim_address, victim)
        return None

    def on_read(self, memory, address, value):
        return value


@dataclass
class CouplingFaultInversion:
    """A write transition on the aggressor inverts the victim cell."""

    aggressor_address: int
    aggressor_bit: int
    victim_address: int
    victim_bit: int
    trigger_rising: bool

    def on_write(self, memory, address, value):
        if address != self.aggressor_address:
            return None
        old_bit = (memory.raw_word(address) >> self.aggressor_bit) & 1
        new_bit = (value >> self.aggressor_bit) & 1
        triggered = (
            (self.trigger_rising and old_bit == 0 and new_bit == 1)
            or (not self.trigger_rising and old_bit == 1 and new_bit == 0)
        )
        if triggered:
            victim = memory.raw_word(self.victim_address)
            memory.poke(self.victim_address, victim ^ (1 << self.victim_bit))
        return None

    def on_read(self, memory, address, value):
        return value


@dataclass
class AddressDecoderFault:
    """Accesses to ``ghost_address`` land on ``real_address`` instead."""

    ghost_address: int
    real_address: int

    def remap(self, address: int) -> int:
        return self.real_address if address == self.ghost_address else address

    def on_write(self, memory, address, value):
        return None  # handled via remap in SramModel

    def on_read(self, memory, address, value):
        return value


@dataclass
class StuckOpenFault:
    """Broken access transistor: a read returns the previously read
    word (sense-amp retains its last value) for this cell's bit."""

    address: int
    bit: int

    def on_write(self, memory, address, value):
        return None

    def on_read(self, memory, address, value):
        if address == self.address:
            mask = 1 << self.bit
            stale = memory.last_read_value & mask
            return (value & ~mask) | stale
        return value


class SramModel:
    """A ``words`` x ``bits`` behavioural SRAM with injectable faults."""

    def __init__(self, words: int, bits: int) -> None:
        if words < 2 or bits < 1:
            raise ValueError("need at least 2 words and 1 bit")
        self.words = words
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._array = np.zeros(words, dtype=np.int64)
        self.faults: list = []
        self.last_read_value = 0
        self.reads = 0
        self.writes = 0

    # -- fault management -----------------------------------------------

    def inject(self, fault) -> None:
        """Add a fault; reads/writes observe it from now on."""
        for attr in ("address", "victim_address", "aggressor_address",
                     "ghost_address", "real_address"):
            value = getattr(fault, attr, None)
            if value is not None and not 0 <= value < self.words:
                raise ValueError(f"fault {attr}={value} out of range")
        self.faults.append(fault)

    def _remap(self, address: int) -> int:
        for fault in self.faults:
            remap = getattr(fault, "remap", None)
            if remap is not None:
                address = remap(address)
        return address

    # -- accesses ----------------------------------------------------------

    def raw_word(self, address: int) -> int:
        """Fault-free view of the stored word (internal/poke use)."""
        return int(self._array[address])

    def poke(self, address: int, value: int) -> None:
        """Set a word bypassing fault hooks (used by coupling faults)."""
        self._array[address] = value & self._mask

    def write(self, address: int, value: int) -> None:
        """Functional write through all injected faults."""
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range")
        address = self._remap(address)
        value &= self._mask
        for fault in self.faults:
            replaced = fault.on_write(self, address, value)
            if replaced is not None:
                value = replaced & self._mask
        self._array[address] = value
        self.writes += 1

    def read(self, address: int) -> int:
        """Functional read through all injected faults."""
        if not 0 <= address < self.words:
            raise IndexError(f"address {address} out of range")
        address = self._remap(address)
        value = int(self._array[address])
        for fault in self.faults:
            value = fault.on_read(self, address, value) & self._mask
        self.last_read_value = value
        self.reads += 1
        return value


def random_fault(
    kind: str, words: int, bits: int, rng: np.random.Generator
):
    """Sample one random fault instance of the named family."""
    address = int(rng.integers(0, words))
    bit = int(rng.integers(0, bits))
    if kind == "SAF":
        return StuckAtFault(address, bit, int(rng.integers(0, 2)))
    if kind == "TF":
        return TransitionFault(address, bit, bool(rng.integers(0, 2)))
    if kind in ("CFid", "CFin"):
        victim = int(rng.integers(0, words - 1))
        if victim >= address:
            victim += 1
        victim_bit = int(rng.integers(0, bits))
        rising = bool(rng.integers(0, 2))
        if kind == "CFid":
            return CouplingFaultIdempotent(
                address, bit, victim, victim_bit, rising, int(rng.integers(0, 2))
            )
        return CouplingFaultInversion(address, bit, victim, victim_bit, rising)
    if kind == "AF":
        real = int(rng.integers(0, words - 1))
        if real >= address:
            real += 1
        return AddressDecoderFault(address, real)
    if kind == "SOF":
        return StuckOpenFault(address, bit)
    raise ValueError(f"unknown fault kind {kind!r}")


FAULT_FAMILIES = ("SAF", "TF", "CFid", "CFin", "AF", "SOF")
