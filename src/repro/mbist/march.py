"""March test algorithms and fault-coverage measurement.

A March test is a sequence of March elements; each element sweeps the
address space in a fixed order applying a fixed list of read/write
operations per address.  The notation follows van de Goor:

    MATS+    : {M0: up w0; M1: up r0,w1; M2: down r1,w0}
    March X  : {up w0; up r0,w1; down r1,w0; up r0}
    March Y  : {up w0; up r0,w1,r1; down r1,w0,r0; up r0}
    March C- : {up w0; up r0,w1; up r1,w0; down r0,w1; down r1,w0; up r0}
    March B  : {up w0; up r0,w1,r1,w0,r0,w1; up r1,w0,w1;
                down r1,w0,w1,w0; down r0,w1,w0}

Data backgrounds: operations write/expect all-0 or all-1 words; for a
``bits``-wide memory the solid background is used (checker backgrounds
are available via ``background``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from .memory import FAULT_FAMILIES, SramModel, random_fault

Op = tuple[Literal["r", "w"], int]  # ("r", expected_bg) / ("w", bg)


@dataclass(frozen=True)
class MarchElement:
    """One address sweep: direction and per-address operation list."""

    direction: Literal["up", "down", "any"]
    operations: tuple[Op, ...]

    def addresses(self, words: int) -> range:
        if self.direction == "down":
            return range(words - 1, -1, -1)
        return range(words)


@dataclass(frozen=True)
class MarchTest:
    """A named March algorithm."""

    name: str
    elements: tuple[MarchElement, ...]

    @property
    def operations_per_word(self) -> int:
        """Complexity in N (e.g. March C- is 10N)."""
        return sum(len(e.operations) for e in self.elements)

    def test_cycles(self, words: int) -> int:
        """Total memory operations for one run."""
        return self.operations_per_word * words


def _element(direction: str, spec: str) -> MarchElement:
    ops: list[Op] = []
    for token in spec.split(","):
        token = token.strip()
        ops.append((token[0], int(token[1])))  # type: ignore[arg-type]
    return MarchElement(direction, tuple(ops))  # type: ignore[arg-type]


MATS_PLUS = MarchTest(
    "MATS+",
    (
        _element("up", "w0"),
        _element("up", "r0,w1"),
        _element("down", "r1,w0"),
    ),
)

MARCH_X = MarchTest(
    "March X",
    (
        _element("up", "w0"),
        _element("up", "r0,w1"),
        _element("down", "r1,w0"),
        _element("up", "r0"),
    ),
)

MARCH_Y = MarchTest(
    "March Y",
    (
        _element("up", "w0"),
        _element("up", "r0,w1,r1"),
        _element("down", "r1,w0,r0"),
        _element("up", "r0"),
    ),
)

MARCH_C_MINUS = MarchTest(
    "March C-",
    (
        _element("up", "w0"),
        _element("up", "r0,w1"),
        _element("up", "r1,w0"),
        _element("down", "r0,w1"),
        _element("down", "r1,w0"),
        _element("up", "r0"),
    ),
)

MARCH_B = MarchTest(
    "March B",
    (
        _element("up", "w0"),
        _element("up", "r0,w1,r1,w0,r0,w1"),
        _element("up", "r1,w0,w1"),
        _element("down", "r1,w0,w1,w0"),
        _element("down", "r0,w1,w0"),
    ),
)

STANDARD_TESTS: tuple[MarchTest, ...] = (
    MATS_PLUS, MARCH_X, MARCH_Y, MARCH_C_MINUS, MARCH_B,
)


def background(bits: int, value: int) -> int:
    """Solid data background: all-0 or all-1 across ``bits``."""
    return ((1 << bits) - 1) if value else 0


@dataclass
class MarchRunResult:
    """Outcome of one March run on one memory."""

    test_name: str
    passed: bool
    operations: int = 0
    first_failure: tuple[int, int, int] | None = None  # (element, addr, op)


def run_march(memory: SramModel, test: MarchTest) -> MarchRunResult:
    """Execute a March test; stops at the first miscompare."""
    operations = 0
    for element_index, element in enumerate(test.elements):
        for address in element.addresses(memory.words):
            for op_index, (kind, bg) in enumerate(element.operations):
                data = background(memory.bits, bg)
                operations += 1
                if kind == "w":
                    memory.write(address, data)
                else:
                    observed = memory.read(address)
                    if observed != data:
                        return MarchRunResult(
                            test.name,
                            passed=False,
                            operations=operations,
                            first_failure=(element_index, address, op_index),
                        )
    return MarchRunResult(test.name, passed=True, operations=operations)


@dataclass
class CoverageReport:
    """Monte-Carlo fault coverage of one March test."""

    test_name: str
    trials_per_family: int
    coverage: dict[str, float] = field(default_factory=dict)

    @property
    def overall(self) -> float:
        if not self.coverage:
            return 0.0
        return sum(self.coverage.values()) / len(self.coverage)

    def format_report(self) -> str:
        lines = [f"{self.test_name} fault coverage "
                 f"({self.trials_per_family} faults/family)"]
        for family, value in self.coverage.items():
            lines.append(f"  {family:5s}: {value * 100:6.1f}%")
        lines.append(f"  mean : {self.overall * 100:6.1f}%")
        return "\n".join(lines)


def measure_coverage(
    test: MarchTest,
    *,
    words: int = 64,
    bits: int = 8,
    trials_per_family: int = 100,
    families: Sequence[str] = FAULT_FAMILIES,
    seed: int = 0,
) -> CoverageReport:
    """Empirical fault coverage: inject one random fault per trial and
    check whether the March test flags it."""
    rng = np.random.default_rng(seed)
    report = CoverageReport(test.name, trials_per_family)
    for family in families:
        detected = 0
        for _ in range(trials_per_family):
            memory = SramModel(words, bits)
            memory.inject(random_fault(family, words, bits, rng))
            if not run_march(memory, test).passed:
                detected += 1
        report.coverage[family] = detected / trials_per_family
    return report
