"""Memory-BIST architecture generation.

Models the paper's in-house MBIST circuit generator: for the DSC
controller's 30 embedded memory macros it inserted **one common BIST
controller, multiple sequencers, and 30 pattern generators** (Section
3).  This module reproduces that architecture decision quantitatively:

* every memory gets a local pattern generator (address counter, data
  background mux, comparator) whose gate cost is derived from real
  generated netlists (:func:`repro.netlist.counter`), not guessed;
* memories are clustered under shared sequencers (one per group of
  same-protocol memories);
* a single controller sequences the groups, either serially (minimum
  area, longest test time) or with bounded parallelism (power-limited).

``plan_bist`` compares sharing strategies so experiment E3 can report
the area/test-time trade-off the paper's team navigated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Sequence

from ..netlist import StdCellLibrary, collect_stats, counter
from .march import MARCH_C_MINUS, MarchTest


@dataclass(frozen=True)
class MemoryMacro:
    """One embedded SRAM macro on the die."""

    name: str
    words: int
    bits: int
    ports: int = 1

    @property
    def address_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.words)))

    @property
    def capacity_bits(self) -> int:
        return self.words * self.bits

    @property
    def area_um2(self) -> float:
        """SRAM macro area: ~35 um^2/bit at 0.25 um plus periphery."""
        return 35.0 * self.capacity_bits + 9000.0


@dataclass
class BistComponentCost:
    """Gate/area cost of one BIST building block."""

    name: str
    gates: int
    area_um2: float


@dataclass
class BistPlan:
    """A complete MBIST insertion plan for a set of memories."""

    sharing: str
    march: MarchTest
    controllers: int
    sequencers: int
    pattern_generators: int
    total_gates: int
    total_area_um2: float
    test_cycles: int
    memory_area_um2: float
    groups: list[list[str]] = field(default_factory=list)

    @property
    def area_overhead_fraction(self) -> float:
        """BIST area relative to the memory area it tests."""
        if self.memory_area_um2 == 0:
            return 0.0
        return self.total_area_um2 / self.memory_area_um2

    def format_report(self) -> str:
        lines = [
            f"MBIST plan ({self.sharing}, {self.march.name})",
            f"  controllers        : {self.controllers}",
            f"  sequencers         : {self.sequencers}",
            f"  pattern generators : {self.pattern_generators}",
            f"  BIST gates         : {self.total_gates}",
            f"  BIST area          : {self.total_area_um2 / 1e6:.3f} mm^2"
            f" ({self.area_overhead_fraction * 100:.1f}% of memory area)",
            f"  test time          : {self.test_cycles} cycles",
        ]
        return "\n".join(lines)


class BistGenerator:
    """Generates BIST plans for a list of memory macros."""

    def __init__(self, library: StdCellLibrary, *,
                 march: MarchTest = MARCH_C_MINUS) -> None:
        self.library = library
        self.march = march
        self._pattern_gen_cache: dict[int, BistComponentCost] = {}

    # -- component cost models -------------------------------------------

    def pattern_generator_cost(self, memory: MemoryMacro) -> BistComponentCost:
        """Cost of one per-memory pattern generator.

        The dominant piece is the address counter, which we *actually
        generate* as a netlist and measure; comparator and data mux
        scale with word width.
        """
        addr_bits = memory.address_bits
        cached = self._pattern_gen_cache.get(addr_bits)
        if cached is None:
            address_counter = counter(
                f"pg_addr{addr_bits}", self.library, width=addr_bits
            )
            stats = collect_stats(address_counter)
            cached = BistComponentCost(
                f"addr_counter_{addr_bits}", stats.instance_count,
                stats.total_area_um2,
            )
            self._pattern_gen_cache[addr_bits] = cached
        # Comparator: ~3 gates/bit; background mux + control: ~4/bit.
        datapath_gates = 7 * memory.bits + 12
        nand_area = self.library["NAND2_X1"].area_um2
        return BistComponentCost(
            f"pattern_gen_{memory.name}",
            cached.gates + datapath_gates,
            cached.area_um2 + datapath_gates * nand_area,
        )

    def sequencer_cost(self) -> BistComponentCost:
        """A March-element sequencer FSM (shared per memory group)."""
        gates = 40 + 18 * len(self.march.elements)
        nand_area = self.library["NAND2_X1"].area_um2
        return BistComponentCost("sequencer", gates, gates * nand_area)

    def controller_cost(self, n_groups: int) -> BistComponentCost:
        """The top controller: group scheduling, result collection."""
        gates = 120 + 25 * n_groups
        nand_area = self.library["NAND2_X1"].area_um2
        return BistComponentCost("controller", gates, gates * nand_area)

    # -- planning -----------------------------------------------------------

    def _group_memories(
        self, memories: Sequence[MemoryMacro]
    ) -> list[list[MemoryMacro]]:
        """Group same-shape memories under one sequencer."""
        groups: dict[tuple[int, int], list[MemoryMacro]] = {}
        for memory in memories:
            groups.setdefault((memory.words, memory.bits), []).append(memory)
        return [groups[key] for key in sorted(groups)]

    def plan(
        self,
        memories: Sequence[MemoryMacro],
        *,
        sharing: Literal["shared", "per-memory"] = "shared",
        max_parallel_groups: int = 4,
    ) -> BistPlan:
        """Produce a BIST plan.

        ``shared`` -- the paper's architecture: one controller, one
        sequencer per memory-shape group, one pattern generator per
        memory; groups run with bounded parallelism (test power).

        ``per-memory`` -- the naive alternative: a full controller +
        sequencer per memory; everything runs in parallel.
        """
        if not memories:
            raise ValueError("no memories to test")
        memory_area = sum(m.area_um2 for m in memories)
        pattern_costs = [self.pattern_generator_cost(m) for m in memories]
        pg_gates = sum(c.gates for c in pattern_costs)
        pg_area = sum(c.area_um2 for c in pattern_costs)

        if sharing == "per-memory":
            seq = self.sequencer_cost()
            ctl = self.controller_cost(1)
            total_gates = pg_gates + len(memories) * (seq.gates + ctl.gates)
            total_area = pg_area + len(memories) * (seq.area_um2 + ctl.area_um2)
            # Fully parallel: the slowest memory bounds test time.
            test_cycles = max(
                self.march.test_cycles(m.words) for m in memories
            )
            return BistPlan(
                sharing="per-memory",
                march=self.march,
                controllers=len(memories),
                sequencers=len(memories),
                pattern_generators=len(memories),
                total_gates=total_gates,
                total_area_um2=total_area,
                test_cycles=test_cycles,
                memory_area_um2=memory_area,
                groups=[[m.name] for m in memories],
            )

        if sharing != "shared":
            raise ValueError(f"unknown sharing strategy {sharing!r}")
        groups = self._group_memories(memories)
        seq = self.sequencer_cost()
        ctl = self.controller_cost(len(groups))
        total_gates = pg_gates + len(groups) * seq.gates + ctl.gates
        total_area = pg_area + len(groups) * seq.area_um2 + ctl.area_um2
        # Within a group all memories run in lockstep (same sequencer);
        # groups are scheduled max_parallel_groups at a time.
        group_cycles = sorted(
            (max(self.march.test_cycles(m.words) for m in group)
             for group in groups),
            reverse=True,
        )
        test_cycles = 0
        for start in range(0, len(group_cycles), max_parallel_groups):
            test_cycles += group_cycles[start]  # longest of the wave
        return BistPlan(
            sharing="shared",
            march=self.march,
            controllers=1,
            sequencers=len(groups),
            pattern_generators=len(memories),
            total_gates=total_gates,
            total_area_um2=total_area,
            test_cycles=test_cycles,
            memory_area_um2=memory_area,
            groups=[[m.name for m in group] for group in groups],
        )


def dsc_memory_set() -> list[MemoryMacro]:
    """The 30 embedded memory macros of the DSC controller.

    The paper gives only the count (30); the shapes below are a
    representative camera-controller mix: line buffers for the image
    pipeline, JPEG block/quant/Huffman tables, CPU caches and TCM,
    USB/SD FIFOs, display buffers.
    """
    memories: list[MemoryMacro] = []

    def add(prefix: str, count: int, words: int, bits: int) -> None:
        for index in range(count):
            memories.append(MemoryMacro(f"{prefix}{index}", words, bits))

    add("line_buffer", 6, 2048, 16)     # sensor/pipeline line buffers
    add("jpeg_block", 4, 256, 12)       # DCT block buffers
    add("jpeg_qtable", 2, 64, 8)        # quant tables
    add("jpeg_huff", 2, 512, 16)        # Huffman LUTs
    add("cpu_icache", 2, 1024, 32)      # instruction cache data/tag
    add("cpu_dcache", 2, 1024, 32)
    add("cpu_tcm", 2, 2048, 32)         # tightly-coupled memory
    add("usb_fifo", 2, 256, 8)
    add("sd_fifo", 2, 512, 8)
    add("lcd_buffer", 2, 1024, 18)
    add("tv_line", 2, 1440, 10)
    add("misc_reg", 2, 128, 8)
    assert len(memories) == 30
    return memories
