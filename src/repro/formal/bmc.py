"""Bounded model checking over the compiled simulation program.

The unroller Tseitin-encodes the *levelized program* of
:mod:`repro.sim.compiled` -- the same literal-class tables the
bit-plane kernel sweeps -- frame by frame into CNF, with every net's
four-value state carried as a dual-rail :data:`~repro.formal.cnf.Pair`.
Because the tables are enumerated through
:func:`repro.sim.evaluate_cell`, dialect semantics (``x_pessimism``,
``uninitialized_flop``, the async-reset settle fixpoint, scan-enable
muxing, ICG gating) hold in the CNF **by construction**: a satisfying
assignment of the unrolled formula is, literal for literal, a trace
the simulator would produce.

Frame convention (matches a testbench loop over the event simulator)::

    for t in range(depth):
        sim.set_inputs(frames[t]); sim.evaluate()   # <- frame t
        ...properties are judged on these settled values...
        if t < depth - 1:
            sim.clock_edge(clock_port)

Inputs are binary decision variables per (free port, frame); the
clock and scan ports are tied low and the reset follows a
reset-then-release protocol, so every counterexample is a concrete
binary stimulus that replays on **both** simulator dialects
(:func:`replay_counterexample` -- the crossval discipline of PR 4
applied to formal results).

Per-property solving uses a **fresh seeded solver**, so verdicts,
models and statistics are a pure function of (module, property,
depth, seed) -- independent of worker count or which process solved
which property.  :func:`check_properties` fans properties out via
:func:`repro.perf.fanout` and merges in task order; report JSON is
byte-identical for any worker count.

The ``lanes`` engine cross-checks the SAT path with the compiled
simulator itself: exhaustive stimulus enumeration on a
:class:`~repro.sim.compiled.BatchSimulator` when the free-input space
is small, seeded random lanes otherwise.

:func:`check_bus_exclusivity` is the pure-CNF member of the family:
address-window comparators prove (or give a witness address against)
the MAP-rule claim that decode windows never overlap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from ..netlist import Logic, Module
from ..netlist.netlist import NetlistError
from ..perf import fanout
from ..sim import VENDOR_A_SIM, VENDOR_B_SIM, LogicSimulator
from ..sim.compiled import BatchSimulator, CompiledProgram, compile_module
from ..sim.simulator import SimulatorConfig
from .cdcl import Solver
from .cnf import CnfBuilder, Pair
from .properties import Property, PropertySet
from .properties import PropertyError as PropertyError

__all__ = [
    "BmcError",
    "BmcReport",
    "BusExclusivityResult",
    "Counterexample",
    "PropertyCheck",
    "ReplayResult",
    "Unroller",
    "check_bus_exclusivity",
    "check_properties",
    "counterexample_stimulus",
    "replay_counterexample",
]


class BmcError(NetlistError):
    """The module or property cannot be bounded-model-checked."""


#: Free-stimulus budget below which the ``lanes`` engine enumerates
#: every binary input combination (2**bits simulator lanes) and its
#: no-counterexample verdict is therefore *proven*, not sampled.
LANES_EXHAUSTIVE_BITS = 14

#: Seeded random stimulus lanes when exhaustive enumeration is too big.
LANES_RANDOM = 256


# ---------------------------------------------------------------------------
# Input protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _InputPlan:
    """How each input port is driven during BMC, shared by engines."""

    clock_port: str | None
    reset_ports: tuple[str, ...]
    tied: tuple[tuple[str, Logic], ...]
    free_ports: tuple[str, ...]


def _plan_inputs(
    program: CompiledProgram,
    clock_port: str,
    ties: Mapping[str, Logic] | None,
) -> _InputPlan:
    """Classify input ports into clock / reset / tied / free."""
    tied: dict[str, Logic] = {}
    for port in program.input_ports:
        if port.startswith("scan_en") or port.startswith("scan_in"):
            tied[port] = Logic.ZERO
    for port, value in (ties or {}).items():
        if port not in program.input_row:
            raise BmcError(
                f"tie target {port!r} is not an input port of "
                f"{program.module.name}"
            )
        tied[port] = value

    input_slots = {int(s) for s in program.input_slots}
    reset_slots = {int(s) for s in program.reset_rn}
    for slot in sorted(reset_slots):
        if slot not in input_slots:
            raise BmcError(
                f"reset net {program.net_names[slot]!r} of "
                f"{program.module.name} is gate-driven; BMC models "
                "input-driven resets only"
            )
    reset_ports = tuple(sorted(
        port for port in program.input_ports
        if program.net_index[port] in reset_slots and port not in tied
    ))

    clock: str | None = clock_port if clock_port in program.input_row \
        else None
    if clock is None and program.q_slots.size:
        raise BmcError(
            f"{program.module.name} has state but no input port "
            f"{clock_port!r} to clock it"
        )
    free = tuple(
        port for port in program.input_ports
        if port != clock and port not in tied
        and port not in reset_ports
    )
    return _InputPlan(
        clock_port=clock,
        reset_ports=reset_ports,
        tied=tuple(sorted(tied.items())),
        free_ports=free,
    )


def _protocol_value(
    plan: _InputPlan, port: str, frame: int, reset_frames: int
) -> Logic | None:
    """Fixed value of a non-free port at ``frame`` (None = free)."""
    if port == plan.clock_port:
        return Logic.ZERO
    for tied_port, value in plan.tied:
        if port == tied_port:
            return value
    if port in plan.reset_ports:
        return Logic.ZERO if frame < reset_frames else Logic.ONE
    return None


# ---------------------------------------------------------------------------
# Unroller
# ---------------------------------------------------------------------------


class Unroller:
    """Frame-by-frame Tseitin encoding of one compiled program.

    Builds, per frame ``t``, a dual-rail pair for every net slot --
    the settled combinational values after applying frame ``t``
    inputs, including the async-reset fixpoint -- and threads flop
    state through the exact ``clock_edge`` capture formulas of
    :class:`~repro.sim.compiled.BatchSimulator` between frames.
    """

    def __init__(
        self,
        module: Module,
        config: SimulatorConfig,
        builder: CnfBuilder,
        *,
        clock_port: str = "clk",
        reset_frames: int = 1,
        ties: Mapping[str, Logic] | None = None,
        initial_state: Mapping[str, Logic] | None = None,
    ) -> None:
        if reset_frames < 0:
            raise BmcError("reset_frames must be >= 0")
        self.module = module
        self.config = config
        self.builder = builder
        self.program = compile_module(module, config)
        self.plan = _plan_inputs(self.program, clock_port, ties)
        self.reset_frames = reset_frames
        #: Per-frame slot pairs (settled combinational values).
        self.slots: list[list[Pair]] = []
        #: Per-frame input pairs by port name (clock port included).
        self.inputs: list[dict[str, Pair]] = []
        init = dict(initial_state or {})
        unknown = sorted(set(init) - set(self.program.flop_names))
        if unknown:
            raise BmcError(f"unknown flops in initial state: {unknown}")
        self._state: list[Pair] = [
            builder.pair_const(init.get(name, config.uninitialized_flop))
            for name in self.program.flop_names
        ]

    @property
    def depth(self) -> int:
        """Number of frames built so far."""
        return len(self.slots)

    def pair_of(self, frame: int, net: str) -> Pair:
        """The dual-rail pair of ``net`` at ``frame``."""
        slot = self.program.net_index.get(net)
        if slot is None:
            raise BmcError(
                f"no net {net!r} in {self.module.name}"
            )
        return self.slots[frame][slot]

    def extend(self, depth: int) -> None:
        """Build frames until ``depth`` frames exist."""
        while self.depth < depth:
            self._build_frame()

    # -- internals ----------------------------------------------------

    def _frame_inputs(self, frame: int) -> dict[str, Pair]:
        builder = self.builder
        pairs: dict[str, Pair] = {}
        for port in self.program.input_ports:
            value = _protocol_value(
                self.plan, port, frame, self.reset_frames
            )
            if value is None:
                pairs[port] = builder.pair_free()
            else:
                pairs[port] = builder.pair_const(value)
        return pairs

    def _adjust_resets(
        self, state: list[Pair], inputs: dict[str, Pair]
    ) -> list[Pair]:
        """Async-reset fixpoint: force reset-asserted flops low.

        Mirrors ``_apply_async_resets``: ``mask = rn0 & ~state0``,
        then ``state0 |= mask`` / ``state1 &= ~mask``.  Reset nets are
        input-driven (checked at plan time), so one application
        settles, exactly like the simulator's fixpoint does.
        """
        builder = self.builder
        program = self.program
        adjusted = list(state)
        for sel, rn_slot in zip(program.reset_sel, program.reset_rn):
            port = program.net_names[rn_slot]
            rn0 = inputs[port][1]
            s1, s0 = adjusted[sel]
            mask = builder.lit_and((rn0, -s0))
            adjusted[sel] = (
                builder.lit_and((s1, -mask)),
                builder.lit_or((s0, mask)),
            )
        return adjusted

    def _combinational(
        self, state: list[Pair], inputs: dict[str, Pair]
    ) -> list[Pair]:
        """One settled sweep: slot pairs from state + input pairs."""
        builder = self.builder
        program = self.program
        pairs: list[Pair] = [builder.pair_x] * program.n_slots
        pairs[program.const0_slot] = builder.pair_zero
        pairs[program.const1_slot] = builder.pair_one
        for port in program.input_ports:
            pairs[program.net_index[port]] = inputs[port]
        for slot, pair in zip(program.q_slots, state):
            pairs[int(slot)] = pair

        def literal(cls: int, slot: int) -> int:
            if cls == 3:  # _ALWAYS
                return builder.true_lit
            if cls == 4:  # _NEVER
                return builder.false_lit
            pair = pairs[slot]
            if cls == 1:  # _IS1
                return pair[0]
            if cls == 0:  # _IS0
                return pair[1]
            return builder.pair_is_x(pair)  # _ISX

        for level in program.levels:
            cls_rows = level.cls.tolist()
            net_rows = level.net.tolist()
            seg = level.seg.tolist()
            n = level.n_insts
            bounds = seg + [len(cls_rows)]
            for index in range(n):
                rails: list[int] = []
                for half in (0, 1):  # rows1 block, then rows0 block
                    start = bounds[half * n + index]
                    stop = bounds[half * n + index + 1]
                    terms = [
                        builder.lit_and(
                            literal(c, s) for c, s in
                            zip(cls_rows[row], net_rows[row])
                        )
                        for row in range(start, stop)
                    ]
                    rails.append(builder.lit_or(terms))
                pairs[int(level.out[index])] = (rails[0], rails[1])
        return pairs

    def _clock_edge(
        self, slots: list[Pair], state: list[Pair]
    ) -> list[Pair]:
        """Capture formulas of ``BatchSimulator.clock_edge`` in CNF."""
        builder = self.builder
        program = self.program
        assert self.plan.clock_port is not None
        plan = program.clock_plan(self.plan.clock_port)
        next_state = list(state)
        for k in range(len(plan.sel)):
            d = slots[int(plan.d[k])]
            si = slots[int(plan.si[k])]
            se = slots[int(plan.se[k])]
            rn = slots[int(plan.rn[k])]
            data1 = builder.lit_or((
                builder.lit_and((se[0], si[0])),
                builder.lit_and((se[1], d[0])),
            ))
            data0 = builder.lit_or((
                builder.lit_and((se[0], si[1])),
                builder.lit_and((se[1], d[1])),
            ))
            all1 = builder.lit_and(
                slots[int(s)][0] for s in plan.en[k]
            )
            any0 = builder.lit_or(
                slots[int(s)][1] for s in plan.en[k]
            )
            gate_x = -builder.lit_or((all1, any0))
            captured = builder.lit_or((all1, gate_x))
            data1 = builder.lit_and((data1, -gate_x))
            data0 = builder.lit_and((data0, -gate_x))
            rn0 = rn[1]
            rn_x = builder.pair_is_x(rn)
            data0 = builder.lit_and(
                (builder.lit_or((data0, rn0)), -rn_x)
            )
            data1 = builder.lit_and((data1, -rn0, -rn_x))
            hold1, hold0 = state[int(plan.sel[k])]
            next_state[int(plan.sel[k])] = (
                builder.lit_or((
                    builder.lit_and((captured, data1)),
                    builder.lit_and((-captured, hold1)),
                )),
                builder.lit_or((
                    builder.lit_and((captured, data0)),
                    builder.lit_and((-captured, hold0)),
                )),
            )
        return next_state

    def _build_frame(self) -> None:
        frame = self.depth
        inputs = self._frame_inputs(frame)
        state = self._adjust_resets(self._state, inputs)
        slots = self._combinational(state, inputs)
        self.inputs.append(inputs)
        self.slots.append(slots)
        if self.plan.clock_port is not None and self.program.q_slots.size:
            # State for the next frame: capture on the rising edge,
            # then the post-edge evaluate re-applies this frame's
            # async resets (matters for held, reset-asserted flops).
            captured = self._clock_edge(slots, state)
            self._state = self._adjust_resets(captured, inputs)
        else:
            self._state = state

    # -- model extraction ---------------------------------------------

    def stimulus_from_model(
        self, solver: Solver
    ) -> tuple[dict[str, Logic], ...]:
        """Per-frame input vectors realized by a satisfying model.

        Includes every input port except the clock (the replay loop
        owns the clock), so the vectors drive a simulator directly.
        """
        def lit_logic(pair: Pair) -> Logic:
            if solver.value(pair[0]):
                return Logic.ONE
            if solver.value(pair[1]):
                return Logic.ZERO
            return Logic.X

        frames: list[dict[str, Logic]] = []
        for inputs in self.inputs:
            frames.append({
                port: lit_logic(pair)
                for port, pair in sorted(inputs.items())
                if port != self.plan.clock_port
            })
        return tuple(frames)

    def net_value_from_model(
        self, solver: Solver, frame: int, net: str
    ) -> Logic:
        """A net's four-value model value at one frame."""
        pair = self.pair_of(frame, net)
        if solver.value(pair[0]):
            return Logic.ONE
        if solver.value(pair[1]):
            return Logic.ZERO
        return Logic.X


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Counterexample:
    """A concrete stimulus falsifying an assert (or hitting a cover).

    ``frames[t]`` is the input vector applied before frame ``t``;
    ``frame`` is where the violation completes (for ``within=n``
    asserts the window ``frame-n+1 .. frame`` is all-violating) or
    where the cover witness holds.  ``nets`` records the four-value
    model values of the property's nets at that frame.
    """

    kind: str  # "violation" | "witness"
    frame: int
    frames: tuple[dict[str, Logic], ...]
    nets: tuple[tuple[str, str], ...]
    clock_port: str | None

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form (Logic as 0/1/x/z chars)."""
        return {
            "clock_port": self.clock_port,
            "frame": self.frame,
            "frames": [
                {port: str(value) for port, value in sorted(f.items())}
                for f in self.frames
            ],
            "kind": self.kind,
            "nets": {net: value for net, value in self.nets},
        }


@dataclass(frozen=True)
class PropertyCheck:
    """Outcome of one property under one BMC run."""

    name: str
    kind: str
    fingerprint: str
    expr: str
    within: int
    status: str  # proven|falsified|covered|unreachable|unknown
    depth: int
    engine: str
    used_assumptions: tuple[str, ...] = ()
    vacuous: bool = False
    counterexample: Counterexample | None = None
    solver_stats: tuple[tuple[str, int], ...] = ()
    message: str = ""

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "counterexample": (
                self.counterexample.to_dict()
                if self.counterexample is not None else None
            ),
            "depth": self.depth,
            "engine": self.engine,
            "expr": self.expr,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "message": self.message,
            "name": self.name,
            "solver_stats": dict(self.solver_stats),
            "status": self.status,
            "used_assumptions": list(self.used_assumptions),
            "vacuous": self.vacuous,
            "within": self.within,
        }


@dataclass(frozen=True)
class BmcReport:
    """All property checks of one module at one depth."""

    module: str
    depth: int
    engine: str
    seed: int
    config: str
    checks: tuple[PropertyCheck, ...] = field(default_factory=tuple)

    def counts(self) -> dict[str, int]:
        """Status histogram plus the vacuous-pass count."""
        out = {
            "covered": 0, "falsified": 0, "proven": 0,
            "unknown": 0, "unreachable": 0, "vacuous": 0,
        }
        for check in self.checks:
            out[check.status] += 1
            if check.vacuous:
                out["vacuous"] += 1
        return out

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form (no wall time anywhere)."""
        return {
            "checks": [c.to_dict() for c in self.checks],
            "config": self.config,
            "counts": self.counts(),
            "depth": self.depth,
            "engine": self.engine,
            "module": self.module,
            "seed": self.seed,
        }

    def to_json(self) -> str:
        """Byte-stable JSON: sorted keys, no whitespace drift."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def format_report(self) -> str:
        """Human-readable summary table."""
        counts = self.counts()
        lines = [
            f"BMC {self.module} depth={self.depth} "
            f"engine={self.engine}: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())
                        if v)
        ]
        for check in self.checks:
            marker = {
                "falsified": "FAIL", "unreachable": "FAIL",
                "proven": "ok", "covered": "ok", "unknown": "?",
            }[check.status]
            extra = ""
            if check.counterexample is not None:
                extra = f" @frame {check.counterexample.frame}"
            if check.vacuous:
                extra += " (vacuous)"
            if check.used_assumptions:
                extra += f" [assumes: "\
                         f"{', '.join(check.used_assumptions)}]"
            lines.append(
                f"  [{marker}] {check.kind} {check.name}: "
                f"{check.status}{extra}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# CDCL engine
# ---------------------------------------------------------------------------


def _encode_assumes(
    builder: CnfBuilder,
    unroller: Unroller,
    assumes: Sequence[Property],
    depth: int,
) -> list[tuple[int, str]]:
    """Selector-guarded assume constraints: one selector per assume.

    With selector ``s`` asserted, the assume expression is forced to
    ``ONE`` at every frame.  Solving under selector assumptions makes
    the CDCL failed-assumption core name exactly the assumes a proof
    used (unsat-core-lite).
    """
    selectors: list[tuple[int, str]] = []
    for prop in assumes:
        selector = builder.new_var()
        for t in range(depth):
            pair = prop.expr.encode(
                builder, lambda net, _t=t: unroller.pair_of(_t, net)
            )
            builder.add_clause([-selector, pair[0]])
        selectors.append((selector, prop.name))
    return selectors


def _check_one_cdcl(
    task: tuple[
        Module, SimulatorConfig, Property, tuple[Property, ...], int,
        int, str, int, tuple[tuple[str, Logic], ...],
        tuple[tuple[str, Logic], ...] | None,
    ],
) -> PropertyCheck:
    """Worker: solve one property with a fresh seeded solver."""
    (module, config, prop, assumes, depth, seed, clock_port,
     reset_frames, ties, initial_state) = task
    solver = Solver(seed=seed)
    builder = CnfBuilder(solver)
    unroller = Unroller(
        module, config, builder,
        clock_port=clock_port, reset_frames=reset_frames,
        ties=dict(ties), initial_state=(
            dict(initial_state) if initial_state is not None else None
        ),
    )
    unroller.extend(depth)
    selectors = _encode_assumes(builder, unroller, assumes, depth)

    def frame_pair(t: int) -> Pair:
        return prop.expr.encode(
            builder, lambda net, _t=t: unroller.pair_of(_t, net)
        )

    if prop.kind == "assert":
        if depth < prop.within:
            raise BmcError(
                f"property {prop.name!r} needs depth >= {prop.within}"
            )
        frame_pairs = [frame_pair(t) for t in range(depth)]
        windows = [
            (start + prop.within - 1, builder.lit_and(
                frame_pairs[t][1]
                for t in range(start, start + prop.within)
            ))
            for start in range(depth - prop.within + 1)
        ]
        target = builder.lit_or(lit for _, lit in windows)
        sat = solver.solve([s for s, _ in selectors] + [target])
        if sat:
            frame = next(
                end for end, lit in windows if solver.value(lit)
            )
            cex = Counterexample(
                kind="violation",
                frame=frame,
                frames=unroller.stimulus_from_model(solver),
                nets=tuple(
                    (net, str(unroller.net_value_from_model(
                        solver, frame, net)))
                    for net in prop.expr.nets()
                ),
                clock_port=unroller.plan.clock_port,
            )
            status, used = "falsified", ()
        else:
            cex = None
            status = "proven"
            core = set(solver.core)
            used = tuple(
                name for s, name in selectors if s in core
            )
    elif prop.kind == "cover":
        bound = depth if prop.within == 1 else min(prop.within, depth)
        frame_pairs = [frame_pair(t) for t in range(bound)]
        target = builder.lit_or(p[0] for p in frame_pairs)
        sat = solver.solve([s for s, _ in selectors] + [target])
        if sat:
            frame = next(
                t for t, p in enumerate(frame_pairs)
                if solver.value(p[0])
            )
            cex = Counterexample(
                kind="witness",
                frame=frame,
                frames=unroller.stimulus_from_model(solver)[:frame + 1],
                nets=tuple(
                    (net, str(unroller.net_value_from_model(
                        solver, frame, net)))
                    for net in prop.expr.nets()
                ),
                clock_port=unroller.plan.clock_port,
            )
            status, used = "covered", ()
        else:
            cex = None
            status = "unreachable"
            core = set(solver.core)
            used = tuple(
                name for s, name in selectors if s in core
            )
    else:  # pragma: no cover - filtered by check_properties
        raise BmcError(f"cannot check a {prop.kind!r} property")

    return PropertyCheck(
        name=prop.name,
        kind=prop.kind,
        fingerprint=prop.fingerprint,
        expr=prop.expr.describe(),
        within=prop.within,
        status=status,
        depth=depth,
        engine="cdcl",
        used_assumptions=used,
        counterexample=cex,
        solver_stats=tuple(sorted(solver.stats.to_dict().items())),
        message=prop.message,
    )


def _assumes_satisfiable(
    module: Module,
    config: SimulatorConfig,
    assumes: tuple[Property, ...],
    depth: int,
    seed: int,
    clock_port: str,
    reset_frames: int,
    ties: tuple[tuple[str, Logic], ...],
    initial_state: tuple[tuple[str, Logic], ...] | None,
) -> bool:
    """Does any execution satisfy every assume at every frame?"""
    solver = Solver(seed=seed)
    builder = CnfBuilder(solver)
    unroller = Unroller(
        module, config, builder,
        clock_port=clock_port, reset_frames=reset_frames,
        ties=dict(ties), initial_state=(
            dict(initial_state) if initial_state is not None else None
        ),
    )
    unroller.extend(depth)
    selectors = _encode_assumes(builder, unroller, assumes, depth)
    return solver.solve([s for s, _ in selectors])


# ---------------------------------------------------------------------------
# Lanes engine (simulation cross-check)
# ---------------------------------------------------------------------------


def _lane_stimuli(
    plan: _InputPlan,
    depth: int,
    reset_frames: int,
    seed: int,
) -> tuple[list[list[dict[str, Logic]]], bool]:
    """Per-lane stimulus sequences and whether they are exhaustive."""
    free_bits = len(plan.free_ports) * depth
    protocol: list[dict[str, Logic]] = []
    for t in range(depth):
        vector: dict[str, Logic] = {}
        if plan.clock_port is not None:
            vector[plan.clock_port] = Logic.ZERO
        for port, value in plan.tied:
            vector[port] = value
        for port in plan.reset_ports:
            vector[port] = (
                Logic.ZERO if t < reset_frames else Logic.ONE
            )
        protocol.append(vector)

    if free_bits <= LANES_EXHAUSTIVE_BITS:
        lanes = []
        for pattern in range(1 << free_bits):
            sequence = []
            bit = 0
            for t in range(depth):
                vector = dict(protocol[t])
                for port in plan.free_ports:
                    vector[port] = Logic.from_bool(
                        bool((pattern >> bit) & 1)
                    )
                    bit += 1
                sequence.append(vector)
            lanes.append(sequence)
        return lanes, True

    import numpy as np

    rng = np.random.default_rng(seed)
    bits = rng.integers(
        0, 2, size=(LANES_RANDOM, depth, len(plan.free_ports))
    )
    lanes = []
    for lane in range(LANES_RANDOM):
        sequence = []
        for t in range(depth):
            vector = dict(protocol[t])
            for k, port in enumerate(plan.free_ports):
                vector[port] = Logic.from_bool(bool(bits[lane, t, k]))
            sequence.append(vector)
        lanes.append(sequence)
    return lanes, False


def _check_one_lanes(
    task: tuple[
        Module, SimulatorConfig, Property, tuple[Property, ...], int,
        int, str, int, tuple[tuple[str, Logic], ...],
        tuple[tuple[str, Logic], ...] | None,
    ],
) -> PropertyCheck:
    """Worker: decide one property by compiled-lane simulation."""
    (module, config, prop, assumes, depth, seed, clock_port,
     reset_frames, ties, initial_state) = task
    if initial_state is not None:
        raise BmcError(
            "the lanes engine replays from power-on only; use the "
            "cdcl engine for explicit initial states"
        )
    program = compile_module(module, config)
    plan = _plan_inputs(program, clock_port, dict(ties))
    stimuli, exhaustive = _lane_stimuli(
        plan, depth, reset_frames, seed
    )
    sim = BatchSimulator(module, config, lanes=len(stimuli))

    # valid_until[lane]: first frame where an assume fails (or depth).
    valid_until = [depth] * len(stimuli)
    values: list[list[Logic]] = []  # [frame][lane]
    for t in range(depth):
        sim.set_lane_inputs([seq[t] for seq in stimuli])
        sim.evaluate()
        row: list[Logic] = []
        for lane in range(len(stimuli)):
            read = lambda net, _lane=lane: sim.read(net, _lane)
            for assume in assumes:
                if (valid_until[lane] >= t
                        and assume.expr.evaluate(read)
                        is not Logic.ONE):
                    valid_until[lane] = t
            row.append(prop.expr.evaluate(read))
        values.append(row)
        if t < depth - 1 and plan.clock_port is not None:
            sim.clock_edge(plan.clock_port)

    def build_cex(lane: int, frame: int, kind: str) -> Counterexample:
        read = lambda net: sim.read(net, lane)  # final-frame values
        frames = tuple(
            {p: v for p, v in sorted(vec.items())
             if p != plan.clock_port}
            for vec in stimuli[lane]
        )
        bound = frame + 1 if kind == "witness" else depth
        return Counterexample(
            kind=kind,
            frame=frame,
            frames=frames[:bound],
            nets=(),
            clock_port=plan.clock_port,
        )

    hit: tuple[int, int] | None = None
    if prop.kind == "assert":
        if depth < prop.within:
            raise BmcError(
                f"property {prop.name!r} needs depth >= {prop.within}"
            )
        for end in range(prop.within - 1, depth):
            for lane in range(len(stimuli)):
                if valid_until[lane] <= end:
                    continue
                if all(
                    values[t][lane] is Logic.ZERO
                    for t in range(end - prop.within + 1, end + 1)
                ):
                    hit = (lane, end)
                    break
            if hit:
                break
        if hit:
            status = "falsified"
            cex = build_cex(hit[0], hit[1], "violation")
        else:
            status = "proven" if exhaustive else "unknown"
            cex = None
    elif prop.kind == "cover":
        bound = depth if prop.within == 1 else min(prop.within, depth)
        for t in range(bound):
            for lane in range(len(stimuli)):
                if valid_until[lane] > t and \
                        values[t][lane] is Logic.ONE:
                    hit = (lane, t)
                    break
            if hit:
                break
        if hit:
            status = "covered"
            cex = build_cex(hit[0], hit[1], "witness")
        else:
            status = "unreachable" if exhaustive else "unknown"
            cex = None
    else:  # pragma: no cover - filtered by check_properties
        raise BmcError(f"cannot check a {prop.kind!r} property")

    return PropertyCheck(
        name=prop.name,
        kind=prop.kind,
        fingerprint=prop.fingerprint,
        expr=prop.expr.describe(),
        within=prop.within,
        status=status,
        depth=depth,
        engine="lanes",
        counterexample=cex,
        message=prop.message,
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def check_properties(
    module: Module,
    properties: PropertySet | Sequence[Property],
    *,
    depth: int,
    config: SimulatorConfig | None = None,
    engine: str = "cdcl",
    workers: int | None = None,
    seed: int = 0,
    clock_port: str = "clk",
    reset_frames: int = 1,
    ties: Mapping[str, Logic] | None = None,
    initial_state: Mapping[str, Logic] | None = None,
) -> BmcReport:
    """Bounded-model-check a property set against ``module``.

    Assume properties constrain every engine run; assert and cover
    properties are checked one fresh solver each, fanned out over
    ``workers`` processes with task-order merging -- the report (and
    its :meth:`BmcReport.to_json`) is byte-identical for any worker
    count.  ``engine="cdcl"`` is the SAT path; ``engine="lanes"``
    cross-checks with compiled-simulator stimulus enumeration
    (exhaustive below :data:`LANES_EXHAUSTIVE_BITS` free input bits,
    seeded random otherwise, in which case unresolved properties
    report ``unknown``).

    A counterexample's stimulus replays on both simulator dialects via
    :func:`replay_counterexample`.  When every assume together is
    unsatisfiable, proven asserts are flagged *vacuous*.
    """
    if depth < 1:
        raise BmcError("depth must be >= 1")
    if engine not in ("cdcl", "lanes"):
        raise BmcError(f"unknown engine {engine!r}")
    config = config or VENDOR_A_SIM
    if isinstance(properties, PropertySet):
        if properties.module != module.name:
            raise BmcError(
                f"property set targets {properties.module!r}, "
                f"module is {module.name!r}"
            )
        props = tuple(properties)
    else:
        props = tuple(properties)
    assumes = tuple(p for p in props if p.kind == "assume")
    targets = tuple(p for p in props if p.kind != "assume")

    ties_t = tuple(sorted((ties or {}).items()))
    init_t = (
        tuple(sorted(initial_state.items()))
        if initial_state is not None else None
    )
    tasks = [
        (module, config, prop, assumes, depth, seed, clock_port,
         reset_frames, ties_t, init_t)
        for prop in targets
    ]
    worker = _check_one_cdcl if engine == "cdcl" else _check_one_lanes
    checks = list(fanout(
        worker, tasks, workers=workers, stage="formal.bmc"
    ))

    if engine == "cdcl" and assumes and any(
        c.status in ("proven", "unreachable") for c in checks
    ):
        if not _assumes_satisfiable(
            module, config, assumes, depth, seed, clock_port,
            reset_frames, ties_t, init_t,
        ):
            checks = [
                (
                    replace(check, vacuous=True)
                    if check.status in ("proven", "unreachable")
                    else check
                )
                for check in checks
            ]

    return BmcReport(
        module=module.name,
        depth=depth,
        engine=engine,
        seed=seed,
        config=config.name,
        checks=tuple(checks),
    )


# ---------------------------------------------------------------------------
# Counterexample replay (crossval discipline)
# ---------------------------------------------------------------------------


def counterexample_stimulus(
    cex: Counterexample,
) -> list[dict[str, Logic]]:
    """The counterexample as a per-frame stimulus vector list.

    Ready for ``BatchSimulator.set_lane_inputs`` /
    ``LogicSimulator.set_inputs`` -- the exact vectors the BMC model
    realized, clock excluded (the replay loop toggles it).
    """
    return [dict(frame) for frame in cex.frames]


@dataclass(frozen=True)
class ReplayResult:
    """Cross-dialect replay outcome of one counterexample."""

    property_name: str
    kind: str
    frame: int
    outcomes: tuple[tuple[str, bool], ...]  # (dialect name, reproduced)

    @property
    def reproduced_everywhere(self) -> bool:
        """True when every dialect reproduced the result."""
        return all(ok for _, ok in self.outcomes)

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "frame": self.frame,
            "kind": self.kind,
            "outcomes": dict(self.outcomes),
            "property": self.property_name,
            "reproduced_everywhere": self.reproduced_everywhere,
        }


def replay_counterexample(
    module: Module,
    prop: Property,
    cex: Counterexample,
    *,
    configs: Sequence[SimulatorConfig] = (VENDOR_A_SIM, VENDOR_B_SIM),
) -> ReplayResult:
    """Replay a counterexample on the event simulator per dialect.

    The stimulus is applied frame by frame (inputs, settle, judge,
    clock) exactly as the unroller modeled it; the violation (or
    cover witness) must reappear at the recorded frame.  This is the
    formal-engine version of PR 4's crossval contract: a BMC result
    that does not reproduce on *both* dialects is a modeling bug, and
    the tests treat it as such.
    """
    outcomes: list[tuple[str, bool]] = []
    for config in configs:
        sim = LogicSimulator(module, config)
        seen: list[Logic] = []
        for t, frame in enumerate(cex.frames):
            vector: dict[str, Logic] = dict(frame)
            if cex.clock_port is not None:
                vector[cex.clock_port] = Logic.ZERO
            sim.set_inputs(vector)
            sim.evaluate()
            seen.append(prop.expr.evaluate(sim.read))
            if t < len(cex.frames) - 1 and cex.clock_port is not None:
                sim.clock_edge(cex.clock_port)
        if cex.kind == "violation":
            window = range(
                cex.frame - prop.within + 1, cex.frame + 1
            )
            reproduced = all(
                0 <= t < len(seen) and seen[t] is Logic.ZERO
                for t in window
            )
        else:
            reproduced = (
                cex.frame < len(seen)
                and seen[cex.frame] is Logic.ONE
            )
        outcomes.append((config.name, reproduced))
    return ReplayResult(
        property_name=prop.name,
        kind=cex.kind,
        frame=cex.frame,
        outcomes=tuple(outcomes),
    )


# ---------------------------------------------------------------------------
# Bus-window exclusivity (pure CNF)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BusExclusivityResult:
    """Verdict of the decode-window overlap check."""

    windows: tuple[str, ...]
    address_bits: int
    exclusive: bool
    witness_address: int | None = None
    overlapping: tuple[str, str] | None = None

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "address_bits": self.address_bits,
            "exclusive": self.exclusive,
            "overlapping": (
                list(self.overlapping)
                if self.overlapping is not None else None
            ),
            "windows": list(self.windows),
            "witness_address": self.witness_address,
        }


def check_bus_exclusivity(
    windows: Iterable[tuple[str, int, int]] | object,
    *,
    address_bits: int = 32,
    seed: int = 0,
) -> BusExclusivityResult:
    """Prove decode windows disjoint, or find a doubly-decoded address.

    ``windows`` is ``(name, base, size)`` rows or a
    :class:`repro.soc.SystemBus` (its ``iter_windows`` rows are
    used).  Each window becomes a pure-CNF comparator circuit
    ``base <= addr < base+size`` over a shared symbolic address; the
    solver then searches for an address inside two windows at once --
    the formal twin of the MAP-001 structural overlap rule, but
    through the same decode arithmetic a bus fabric would implement.
    """
    if hasattr(windows, "iter_windows"):
        rows = [
            (name, window.base, window.size)
            for name, window, _ in windows.iter_windows()  # type: ignore[attr-defined]
        ]
    else:
        rows = [(name, base, size) for name, base, size in windows]  # type: ignore[misc]
    names = tuple(name for name, _, _ in rows)
    if len(set(names)) != len(names):
        raise BmcError("window names must be unique")

    solver = Solver(seed=seed)
    builder = CnfBuilder(solver)
    bits = [solver.new_var() for _ in range(address_bits)]
    inside: list[int] = []
    for name, base, size in rows:
        if base < 0 or size <= 0:
            raise BmcError(f"window {name!r} must have positive size")
        inside.append(builder.lit_and((
            builder.ge_const(bits, base),
            builder.lt_const(bits, base + size),
        )))
    pair_hits = [
        (i, j, builder.lit_and((inside[i], inside[j])))
        for i in range(len(rows)) for j in range(i + 1, len(rows))
    ]
    overlap = builder.lit_or(lit for _, _, lit in pair_hits)
    if not solver.solve([overlap]):
        return BusExclusivityResult(
            windows=names, address_bits=address_bits, exclusive=True
        )
    address = sum(
        1 << k for k, bit in enumerate(bits) if solver.value(bit)
    )
    i, j = next(
        (i, j) for i, j, lit in pair_hits if solver.value(lit)
    )
    return BusExclusivityResult(
        windows=names,
        address_bits=address_bits,
        exclusive=False,
        witness_address=address,
        overlapping=(names[i], names[j]),
    )
