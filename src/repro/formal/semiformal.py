"""Semiformal verification: random drive + bounded exhaustion.

Pure BMC from reset only sees the first ``depth`` cycles; pure
constrained-random simulation reaches deep states but samples their
neighborhoods thinly.  The semiformal loop composes the two:

1. **Drive** -- seeded constrained-random stimulus lanes on a
   :class:`~repro.sim.compiled.BatchSimulator` run the design deep,
   recording the exact stimulus prefix that produced each reached
   flop state;
2. **Exhaust** -- bounded model checking restarts from each frontier
   state (``initial_state``) and *exhaustively* covers its
   ``depth``-cycle neighborhood with the CDCL engine;
3. **Replay** -- every counterexample is spliced onto its lane's
   stimulus prefix, giving a full power-on stimulus that is replayed
   on **both** simulator dialects (the crossval contract) and can be
   banked into the coverage database as a directed test.

The whole loop is a pure function of its seeds: lane stimulus comes
from ``numpy`` generators, frontier states are deduplicated in lane
order, and each BMC call inherits the deterministic per-property
solver discipline of :mod:`repro.formal.bmc`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..coverage import CoverageDatabase, StructuralObserver, TestCoverage
from ..netlist import Logic, Module
from ..sim import VENDOR_A_SIM, LogicSimulator
from ..sim.compiled import BatchSimulator, compile_module
from ..sim.simulator import SimulatorConfig
from .bmc import (
    BmcReport,
    Counterexample,
    ReplayResult,
    _plan_inputs,
    check_properties,
    replay_counterexample,
)
from .properties import Property, PropertySet

__all__ = [
    "SemiformalResult",
    "SemiformalTrace",
    "counterexample_to_test",
    "semiformal_verify",
]


@dataclass(frozen=True)
class SemiformalTrace:
    """One counterexample lifted to a full power-on stimulus."""

    property_name: str
    kind: str
    prefix_cycles: int
    frame: int
    counterexample: Counterexample
    replay: ReplayResult

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "counterexample": self.counterexample.to_dict(),
            "frame": self.frame,
            "kind": self.kind,
            "prefix_cycles": self.prefix_cycles,
            "property": self.property_name,
            "replay": self.replay.to_dict(),
        }


@dataclass(frozen=True)
class SemiformalResult:
    """Outcome of one semiformal run over a property set."""

    module: str
    depth: int
    seed: int
    lanes: int
    drive_cycles: int
    frontier_states: int
    reports: tuple[BmcReport, ...]
    traces: tuple[SemiformalTrace, ...]
    directed_tests: tuple[str, ...] = ()
    wall_s: float = 0.0

    def status_of(self, name: str) -> str:
        """Aggregate verdict for one property across all frontiers.

        ``falsified`` dominates; otherwise a property that proved at
        every explored frontier state reports ``bounded`` -- proven in
        the ``depth``-neighborhood of everything reached, which is a
        semiformal claim, not an unbounded proof.
        """
        statuses = [
            check.status
            for report in self.reports
            for check in report.checks
            if check.name == name
        ]
        if not statuses:
            raise KeyError(f"no property {name!r} in this run")
        if "falsified" in statuses:
            return "falsified"
        if "covered" in statuses:
            return "covered"
        if all(s == "proven" for s in statuses):
            return "bounded"
        if all(s in ("proven", "unreachable") for s in statuses):
            return "bounded"
        return "unknown"

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form (wall time excluded)."""
        names = sorted({
            check.name
            for report in self.reports
            for check in report.checks
        })
        return {
            "depth": self.depth,
            "directed_tests": list(self.directed_tests),
            "drive_cycles": self.drive_cycles,
            "frontier_states": self.frontier_states,
            "lanes": self.lanes,
            "module": self.module,
            "seed": self.seed,
            "statuses": {name: self.status_of(name) for name in names},
            "traces": [trace.to_dict() for trace in self.traces],
        }


def counterexample_to_test(
    module: Module,
    cex: Counterexample,
    *,
    name: str,
    config: SimulatorConfig | None = None,
) -> TestCoverage:
    """Run a counterexample stimulus as an instrumented directed test.

    A structural observer rides the event simulator over the exact
    counterexample frames, so the returned
    :class:`~repro.coverage.TestCoverage` attributes whatever nets,
    flops and resets the formal trace exercises -- formal results
    feeding the same closure machinery as constrained-random tests.
    """
    started = time.perf_counter()
    sim = LogicSimulator(module, config or VENDOR_A_SIM)
    observer = StructuralObserver(module)
    sim.attach_observer(observer)
    for t, frame in enumerate(cex.frames):
        vector: dict[str, Logic] = dict(frame)
        if cex.clock_port is not None:
            vector[cex.clock_port] = Logic.ZERO
        sim.set_inputs(vector)
        sim.evaluate()
        if t < len(cex.frames) - 1 and cex.clock_port is not None:
            sim.clock_edge(cex.clock_port)
    return TestCoverage(
        name=name,
        cycles=len(cex.frames),
        duration_s=time.perf_counter() - started,
        toggled=observer.toggled_nets,
        half_toggled=observer.half_toggled_nets,
        active_flops=observer.active_flops,
        reset_flops=observer.reset_exercised_flops,
    )


def _drive_frontier(
    module: Module,
    config: SimulatorConfig,
    *,
    lanes: int,
    cycles: int,
    seed: int,
    clock_port: str,
    reset_frames: int,
) -> tuple[
    list[tuple[dict[str, Logic], ...]],
    list[dict[str, Logic]],
]:
    """Random-drive ``lanes`` lanes ``cycles`` deep; return frontiers.

    Returns ``(prefixes, states)``: every *distinct, fully binary*
    flop state observed after any clock edge of any lane
    (deduplicated in (cycle, lane) order, shallow states first),
    together with the exact stimulus prefix that reached it (clock
    excluded, one clock edge after every prefix frame) -- the flop
    state is a ``{flop name: Logic}`` map ready for BMC's
    ``initial_state``.
    """
    program = compile_module(module, config)
    plan = _plan_inputs(program, clock_port, None)
    rng = np.random.default_rng(seed)
    free = plan.free_ports
    bits = rng.integers(0, 2, size=(lanes, cycles, len(free)))

    stimuli: list[list[dict[str, Logic]]] = []
    for lane in range(lanes):
        sequence: list[dict[str, Logic]] = []
        for t in range(cycles):
            vector: dict[str, Logic] = {}
            for port, value in plan.tied:
                vector[port] = value
            for port in plan.reset_ports:
                vector[port] = (
                    Logic.ZERO if t < reset_frames else Logic.ONE
                )
            for k, port in enumerate(free):
                vector[port] = Logic.from_bool(bool(bits[lane, t, k]))
            sequence.append(vector)
        stimuli.append(sequence)

    q_nets = [
        program.net_names[int(slot)] for slot in program.q_slots
    ]
    sim = BatchSimulator(module, config, lanes=lanes)
    prefixes: list[tuple[dict[str, Logic], ...]] = []
    states: list[dict[str, Logic]] = []
    seen: set[tuple[Logic, ...]] = set()
    for t in range(cycles):
        vectors = []
        for lane in range(lanes):
            vector = dict(stimuli[lane][t])
            if plan.clock_port is not None:
                vector[plan.clock_port] = Logic.ZERO
            vectors.append(vector)
        sim.set_lane_inputs(vectors)
        sim.evaluate()
        if plan.clock_port is not None:
            sim.clock_edge(plan.clock_port)
        for lane in range(lanes):
            values = tuple(sim.read(net, lane) for net in q_nets)
            if any(v not in (Logic.ZERO, Logic.ONE) for v in values):
                continue  # an X frontier would not replay dialect-clean
            if values in seen:
                continue
            seen.add(values)
            prefixes.append(tuple(
                dict(sorted(vec.items()))
                for vec in stimuli[lane][: t + 1]
            ))
            states.append(dict(zip(program.flop_names, values)))
    return prefixes, states


def semiformal_verify(
    module: Module,
    properties: PropertySet | Sequence[Property],
    *,
    depth: int,
    config: SimulatorConfig | None = None,
    lanes: int = 32,
    drive_cycles: int = 16,
    max_states: int = 8,
    seed: int = 0,
    workers: int | None = None,
    clock_port: str = "clk",
    reset_frames: int = 1,
    coverage_db: CoverageDatabase | None = None,
) -> SemiformalResult:
    """Random-drive to deep states, then BMC their k-neighborhoods.

    Runs :func:`check_properties` once from reset and once per
    frontier state (up to ``max_states`` distinct binary states from
    ``lanes`` constrained-random lanes run ``drive_cycles`` deep).
    Every counterexample found beyond reset is spliced onto its
    lane's stimulus prefix and replayed on both simulator dialects;
    with ``coverage_db`` given, each replayed trace is banked as a
    directed test named ``bmc_<property>_<fingerprint>``.
    """
    started = time.perf_counter()
    config = config or VENDOR_A_SIM
    props = tuple(properties)
    reports: list[BmcReport] = []
    traces: list[SemiformalTrace] = []
    directed: list[str] = []

    def harvest(
        report: BmcReport, prefix: tuple[dict[str, Logic], ...]
    ) -> None:
        for check in report.checks:
            if check.counterexample is None:
                continue
            if check.status not in ("falsified", "covered"):
                continue
            cex = check.counterexample
            full = Counterexample(
                kind=cex.kind,
                frame=len(prefix) + cex.frame,
                frames=tuple(prefix) + cex.frames,
                nets=cex.nets,
                clock_port=cex.clock_port,
            )
            prop = next(p for p in props if p.name == check.name)
            replay = replay_counterexample(module, prop, full)
            traces.append(SemiformalTrace(
                property_name=check.name,
                kind=cex.kind,
                prefix_cycles=len(prefix),
                frame=full.frame,
                counterexample=full,
                replay=replay,
            ))
            if (coverage_db is not None
                    and check.status == "falsified"):
                test_name = f"bmc_{check.name}_{check.fingerprint}"
                if test_name not in coverage_db.tests:
                    coverage_db.add_test(counterexample_to_test(
                        module, full, name=test_name, config=config
                    ))
                    directed.append(test_name)

    # Round 0: plain BMC from reset.
    base = check_properties(
        module, props, depth=depth, config=config, engine="cdcl",
        workers=workers, seed=seed, clock_port=clock_port,
        reset_frames=reset_frames,
    )
    reports.append(base)
    harvest(base, ())

    # Rounds 1..n: exhaust the neighborhood of each frontier state.
    prefixes, states = _drive_frontier(
        module, config,
        lanes=lanes, cycles=drive_cycles, seed=seed,
        clock_port=clock_port, reset_frames=reset_frames,
    )
    falsified = {
        c.name for r in reports for c in r.checks
        if c.status == "falsified"
    }
    for prefix, state in zip(
        prefixes[:max_states], states[:max_states]
    ):
        remaining = tuple(
            p for p in props
            if p.kind == "assume" or p.name not in falsified
        )
        if all(p.kind == "assume" for p in remaining):
            break
        report = check_properties(
            module, remaining, depth=depth, config=config,
            engine="cdcl", workers=workers, seed=seed,
            clock_port=clock_port, reset_frames=0,
            initial_state=state,
        )
        reports.append(report)
        harvest(report, prefix)
        falsified.update(
            c.name for c in report.checks if c.status == "falsified"
        )

    return SemiformalResult(
        module=module.name,
        depth=depth,
        seed=seed,
        lanes=lanes,
        drive_cycles=drive_cycles,
        frontier_states=len(states[:max_states]),
        reports=tuple(reports),
        traces=tuple(traces),
        directed_tests=tuple(directed),
        wall_s=time.perf_counter() - started,
    )
