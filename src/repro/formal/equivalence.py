"""Equivalence checking between two netlists.

The paper's physical flow runs "formal verification" after every
netlist transformation (ECO patches, scan insertion, physical
synthesis).  This module provides a practical checker in that spirit:

* **Combinational equivalence** -- both designs are flattened to their
  full-scan combinational views; corresponding pseudo inputs are driven
  with the same stimulus and every pseudo output is compared.  For
  small input counts the check is exhaustive (a proof); otherwise a
  configurable number of packed random vectors is used (a refutation
  engine with very high practical coverage, like the simulation mode
  of early commercial EC tools).

* **Sequential burn-in compare** -- both designs are reset and driven
  with the same cycle stimulus on a four-value simulator; traces of
  all common outputs must match.  Catches reset/X-handling bugs that
  a combinational check misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Module
from ..dft.faultsim import CombinationalView
from ..sim import LogicSimulator, SimulatorConfig, diff_traces


@dataclass(frozen=True)
class Divergence:
    """The first differing vector of a failed equivalence check.

    ``inputs`` is the complete stimulus vector (net name to four-value
    character) that separates the designs; ``outputs`` maps every
    differing output to its ``(golden, revised)`` value pair.  For
    sequential checks ``cycle`` locates the divergence in the
    burn-in trace; combinational checks leave it ``None``.
    """

    inputs: dict[str, str]
    outputs: dict[str, tuple[str, str]]
    cycle: int | None = None

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "cycle": self.cycle,
            "inputs": dict(sorted(self.inputs.items())),
            "outputs": {
                net: list(pair)
                for net, pair in sorted(self.outputs.items())
            },
        }

    def format_lines(self) -> list[str]:
        """Human-readable description, inputs first."""
        where = f" at cycle {self.cycle}" if self.cycle is not None \
            else ""
        lines = [f"  first differing vector{where}:"]
        lines.append("    inputs:  " + " ".join(
            f"{net}={value}"
            for net, value in sorted(self.inputs.items())
        ))
        for net, (golden, revised) in sorted(self.outputs.items()):
            lines.append(
                f"    output {net}: golden={golden} revised={revised}"
            )
        return lines


@dataclass
class EquivalenceResult:
    """Outcome of one equivalence check."""

    equivalent: bool
    mode: str  # "exhaustive" | "random" | "sequential"
    vectors_run: int = 0
    counterexample: dict[str, int] | None = None
    mismatched_outputs: list[str] = field(default_factory=list)
    notes: str = ""
    divergence: Divergence | None = None

    def format_report(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        lines = [
            f"Equivalence check: {verdict} ({self.mode}, "
            f"{self.vectors_run} vectors)"
        ]
        if self.divergence is not None:
            lines.extend(self.divergence.format_lines())
        elif self.counterexample is not None:
            lines.append(f"  counterexample: {self.counterexample}")
        if self.mismatched_outputs:
            lines.append(f"  mismatched outputs: {self.mismatched_outputs[:8]}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


class InterfaceMismatch(Exception):
    """The two designs do not expose comparable interfaces."""


def _common_interface(a: CombinationalView, b: CombinationalView):
    in_a, in_b = set(a.pseudo_inputs), set(b.pseudo_inputs)
    out_a, out_b = set(a.pseudo_outputs), set(b.pseudo_outputs)
    inputs = sorted(in_a & in_b)
    outputs = sorted(out_a & out_b)
    if not inputs or not outputs:
        raise InterfaceMismatch(
            "designs share no comparable pseudo inputs/outputs"
        )
    return inputs, outputs


def check_combinational_equivalence(
    golden: Module,
    revised: Module,
    *,
    seed: int = 0,
    max_random_vectors: int = 4096,
    exhaustive_limit: int = 16,
) -> EquivalenceResult:
    """Compare two designs on their shared scan-view interface.

    Nets private to one design (new ECO logic, renamed internals) are
    ignored; only the shared pseudo inputs/outputs are compared, which
    is exactly what matters after an ECO.
    """
    view_g = CombinationalView(golden)
    view_r = CombinationalView(revised)
    inputs, outputs = _common_interface(view_g, view_r)

    def compare(
        packed: dict[str, int], width: int
    ) -> tuple[list[str], int | None, Divergence | None]:
        values_g = view_g.evaluate(packed, width)
        values_r = view_r.evaluate(packed, width)
        bad: list[str] = []
        bad_bit: int | None = None
        for net in outputs:
            diff = values_g.get(net, 0) ^ values_r.get(net, 0)
            if diff:
                bad.append(net)
                if bad_bit is None:
                    bad_bit = (diff & -diff).bit_length() - 1
        if bad_bit is None:
            return bad, None, None
        # Pin the divergence to the first differing lane: the full
        # input vector plus every output where the designs disagree.
        divergence = Divergence(
            inputs={
                net: str((packed[net] >> bad_bit) & 1)
                for net in inputs
            },
            outputs={
                net: (
                    str((values_g.get(net, 0) >> bad_bit) & 1),
                    str((values_r.get(net, 0) >> bad_bit) & 1),
                )
                for net in outputs
                if ((values_g.get(net, 0) ^ values_r.get(net, 0))
                    >> bad_bit) & 1
            },
        )
        return bad, bad_bit, divergence

    n_inputs = len(inputs)
    if n_inputs <= exhaustive_limit:
        total = 1 << n_inputs
        vectors_done = 0
        for base in range(0, total, 64):
            width = min(64, total - base)
            packed = {net: 0 for net in inputs}
            for offset in range(width):
                row = base + offset
                for k, net in enumerate(inputs):
                    if (row >> k) & 1:
                        packed[net] |= 1 << offset
            bad, bad_bit, divergence = compare(packed, width)
            vectors_done += width
            if bad:
                assert bad_bit is not None
                row = base + bad_bit
                cex = {net: (row >> k) & 1 for k, net in enumerate(inputs)}
                return EquivalenceResult(
                    equivalent=False,
                    mode="exhaustive",
                    vectors_run=vectors_done,
                    counterexample=cex,
                    mismatched_outputs=bad,
                    divergence=divergence,
                )
        return EquivalenceResult(
            equivalent=True,
            mode="exhaustive",
            vectors_run=total,
            notes="proven over the full input space",
        )

    rng = np.random.default_rng(seed)
    vectors_done = 0
    while vectors_done < max_random_vectors:
        width = min(64, max_random_vectors - vectors_done)
        packed = {}
        stash = {}
        bits = rng.integers(0, 2, size=(len(inputs), width), dtype=np.uint8)
        for k, net in enumerate(inputs):
            value = int.from_bytes(
                np.packbits(bits[k], bitorder="little").tobytes(), "little"
            )
            packed[net] = value
            stash[net] = bits[k]
        bad, bad_bit, divergence = compare(packed, width)
        vectors_done += width
        if bad:
            assert bad_bit is not None
            cex = {net: int(stash[net][bad_bit]) for net in inputs}
            return EquivalenceResult(
                equivalent=False,
                mode="random",
                vectors_run=vectors_done,
                counterexample=cex,
                mismatched_outputs=bad,
                divergence=divergence,
            )
    return EquivalenceResult(
        equivalent=True,
        mode="random",
        vectors_run=vectors_done,
        notes="no mismatch found (random refutation, not a proof)",
    )


def check_sequential_burn_in(
    golden: Module,
    revised: Module,
    *,
    cycles: int = 64,
    seed: int = 0,
    clock_port: str = "clk",
    reset_port: str | None = "rst_n",
    config: SimulatorConfig | None = None,
    extra_low_inputs: tuple[str, ...] = ("scan_en",),
) -> EquivalenceResult:
    """Cycle-by-cycle output compare under identical random stimulus.

    Both designs are reset (if ``reset_port`` exists), then driven for
    ``cycles`` clock cycles with shared random data inputs.  Inputs
    named in ``extra_low_inputs`` (test controls) are tied low when
    present so a scanned design can be compared against its
    pre-scan original.
    """
    rng = np.random.default_rng(seed)
    common_outputs = sorted(
        name
        for name, port in golden.ports.items()
        if port.direction == "output" and name in revised.ports
        and revised.ports[name].direction == "output"
    )
    if not common_outputs:
        raise InterfaceMismatch("no common output ports to compare")

    def data_inputs(module: Module) -> list[str]:
        skip = {clock_port, reset_port} | set(extra_low_inputs)
        return [
            name
            for name, port in module.ports.items()
            if port.direction == "input" and name not in skip
            and not name.startswith("scan_in")
        ]

    shared_inputs = sorted(set(data_inputs(golden)) & set(data_inputs(revised)))
    stimulus = []
    for _ in range(cycles):
        vector = {name: int(rng.integers(0, 2)) for name in shared_inputs}
        stimulus.append(vector)

    def run(module: Module):
        sim = LogicSimulator(module, config)
        ties: dict[str, int] = {clock_port: 0}
        for name in extra_low_inputs:
            if name in module.ports and module.ports[name].direction == "input":
                ties[name] = 0
        for name in module.ports:
            if name.startswith("scan_in") \
                    and module.ports[name].direction == "input":
                ties[name] = 0
        if reset_port and reset_port in module.ports:
            sim.set_inputs({**ties, reset_port: 0})
            sim.evaluate()
            sim.set_input(reset_port, 1)
        else:
            sim.set_inputs(ties)
        full_stim = [dict(v, **ties) for v in stimulus]
        return sim.run(full_stim, clock_port=clock_port, watch=common_outputs)

    trace_g = run(golden)
    trace_r = run(revised)
    mismatches = diff_traces(trace_g, trace_r)
    if mismatches:
        cycle, signal, va, vb = mismatches[0]
        divergence = Divergence(
            inputs={
                net: str(value)
                for net, value in sorted(stimulus[cycle].items())
            },
            outputs={
                m_signal: (str(m_va), str(m_vb))
                for m_cycle, m_signal, m_va, m_vb in mismatches
                if m_cycle == cycle
            },
            cycle=cycle,
        )
        return EquivalenceResult(
            equivalent=False,
            mode="sequential",
            vectors_run=cycles,
            counterexample={"cycle": cycle},
            mismatched_outputs=sorted({m[1] for m in mismatches}),
            notes=f"first divergence at cycle {cycle} on {signal}: "
                  f"{va!s} vs {vb!s}",
            divergence=divergence,
        )
    return EquivalenceResult(
        equivalent=True, mode="sequential", vectors_run=cycles,
        notes="burn-in compare clean",
    )
