"""Formal verification: combinational and sequential equivalence."""

from .equivalence import (
    EquivalenceResult,
    InterfaceMismatch,
    check_combinational_equivalence,
    check_sequential_burn_in,
)

__all__ = [
    "EquivalenceResult",
    "InterfaceMismatch",
    "check_combinational_equivalence",
    "check_sequential_burn_in",
]
