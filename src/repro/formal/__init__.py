"""Formal verification: equivalence, properties and model checking.

The paper's flow runs formal equivalence after every netlist
transformation and leans on multi-simulator regression for everything
else.  This package closes the gap with a self-contained formal stack:

* **equivalence** -- combinational and sequential compare between two
  netlists, reporting the first differing input/output vector;
* **properties** -- assert/assume/cover properties over nets, with
  automatic derivation from analysis facts (constant nets, one-hot
  rings, synchronizer settling);
* **cdcl / cnf** -- a deterministic CDCL SAT solver and a
  structural-hashing dual-rail Tseitin builder;
* **bmc** -- the bounded model checker: the levelized compiled-sim
  program unrolled frame by frame into CNF, per-property seeded
  solvers fanned out deterministically, counterexamples replayed on
  both simulator dialects, plus the pure-CNF bus-window exclusivity
  proof;
* **semiformal** -- constrained-random lanes drive deep states and
  BMC exhausts each state's k-neighborhood, banking replayed
  counterexamples into the coverage database as directed tests.
"""

from .bmc import (
    BmcError,
    BmcReport,
    BusExclusivityResult,
    Counterexample,
    PropertyCheck,
    ReplayResult,
    Unroller,
    check_bus_exclusivity,
    check_properties,
    counterexample_stimulus,
    replay_counterexample,
)
from .cdcl import SatError, Solver, SolverStats
from .cnf import CnfBuilder, Pair
from .equivalence import (
    Divergence,
    EquivalenceResult,
    InterfaceMismatch,
    check_combinational_equivalence,
    check_sequential_burn_in,
)
from .properties import (
    And,
    AtMostOne,
    Known,
    NetIs,
    Not,
    Or,
    PropertyError,
    PropExpr,
    Property,
    PropertySet,
    derive_properties,
    exactly_one,
    implies,
)
from .semiformal import (
    SemiformalResult,
    SemiformalTrace,
    counterexample_to_test,
    semiformal_verify,
)

__all__ = [
    "And",
    "AtMostOne",
    "BmcError",
    "BmcReport",
    "BusExclusivityResult",
    "CnfBuilder",
    "Counterexample",
    "Divergence",
    "EquivalenceResult",
    "InterfaceMismatch",
    "Known",
    "NetIs",
    "Not",
    "Or",
    "Pair",
    "PropExpr",
    "Property",
    "PropertyCheck",
    "PropertyError",
    "PropertySet",
    "ReplayResult",
    "SatError",
    "SemiformalResult",
    "SemiformalTrace",
    "Solver",
    "SolverStats",
    "Unroller",
    "check_bus_exclusivity",
    "check_combinational_equivalence",
    "check_properties",
    "check_sequential_burn_in",
    "counterexample_stimulus",
    "counterexample_to_test",
    "derive_properties",
    "exactly_one",
    "implies",
    "replay_counterexample",
    "semiformal_verify",
]
