"""A small deterministic CDCL SAT solver.

The bounded-model-checking engine of :mod:`repro.formal.bmc` needs a
complete SAT decision procedure that the repository can ship without
external dependencies, and -- like every other engine here -- one whose
answers are a *pure function of the input*.  This is a classic
conflict-driven clause-learning solver in the MiniSat mould:

* **two-watched-literal** unit propagation;
* **1UIP conflict analysis** with clause learning and non-chronological
  backjumping;
* **VSIDS** variable activities (exponential bump/decay) driving the
  decision heuristic, with *fixed seeded tie-breaking*: equal
  activities resolve through a per-variable jitter derived from
  ``crc32(seed, var)``, so two solves of the same formula -- in any
  process, on any worker of a fan-out -- take byte-identical paths;
* **Luby restarts** keyed on conflict counts (never wall time);
* **assumption literals** with failed-assumption core extraction, the
  hook the unsat-core-lite of BMC builds on.

Literals use the DIMACS convention: variable ``v`` is the positive
literal ``v`` and its negation ``-v``; variables are 1-based and
allocated through :meth:`Solver.new_var`.

Determinism contract: :meth:`Solver.solve` never consults the clock,
the process id, or any global randomness.  Statistics (decisions,
conflicts, propagations) are therefore themselves reproducible and may
be embedded in canonical JSON reports.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["SatError", "Solver", "SolverStats", "luby"]


class SatError(Exception):
    """Malformed clause or literal handed to the solver."""


def luby(index: int) -> int:
    """The ``index``-th term (1-based) of the Luby restart sequence.

    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... -- the optimal universal restart
    schedule; the solver multiplies it by a base conflict budget.
    """
    if index < 1:
        raise SatError("luby index is 1-based")
    x = index - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


@dataclass
class SolverStats:
    """Deterministic search statistics of one :meth:`Solver.solve`."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned: int = 0
    restarts: int = 0
    max_learned_length: int = 0

    def to_dict(self) -> dict[str, int]:
        """Sorted JSON-ready form."""
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "learned": self.learned,
            "max_learned_length": self.max_learned_length,
            "propagations": self.propagations,
            "restarts": self.restarts,
        }


@dataclass
class _VarOrder:
    """VSIDS order: activity-sorted heap with seeded tie-breaking."""

    seed: int
    activity: list[float] = field(default_factory=lambda: [0.0])
    jitter: list[float] = field(default_factory=lambda: [0.0])
    heap: list[tuple[float, int]] = field(default_factory=list)

    def new_var(self, var: int) -> None:
        # Tiny per-(seed, var) jitter so exact activity ties still have
        # a fixed, seed-controlled resolution order.
        noise = zlib.crc32(f"{self.seed}:{var}".encode()) / 2**32
        self.activity.append(0.0)
        self.jitter.append(noise * 1e-12)
        self.push(var)

    def push(self, var: int) -> None:
        import heapq

        heapq.heappush(
            self.heap, (-(self.activity[var] + self.jitter[var]), var)
        )

    def pop_unassigned(self, assign: list[int]) -> int:
        """Highest-activity unassigned variable (0 when none left)."""
        import heapq

        while self.heap:
            key, var = heapq.heappop(self.heap)
            if assign[var] == 0 and \
                    key == -(self.activity[var] + self.jitter[var]):
                return var
        return 0


class Solver:
    """Deterministic CDCL solver over DIMACS-style integer literals.

    Typical use::

        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve()
        assert solver.value(b)

    After an UNSAT :meth:`solve` under assumptions, :attr:`core` holds
    the subset of assumption literals the refutation actually used.
    """

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        self.n_vars = 0
        self.stats = SolverStats()
        #: After UNSAT-under-assumptions: the failed assumption subset.
        self.core: tuple[int, ...] = ()
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._assign: list[int] = [0]  # 1 true, -1 false, 0 free
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._polarity: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._order = _VarOrder(seed)
        self._var_inc = 1.0
        self._unsat = False  # empty clause / level-0 conflict seen

    # -- problem construction -----------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable (positive literal)."""
        self.n_vars += 1
        var = self.n_vars
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._polarity.append(False)
        self._watches[var] = []
        self._watches[-var] = []
        self._order.new_var(var)
        return var

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add one clause; duplicates collapse, tautologies vanish.

        Must be called at decision level 0 (before or between solves).
        """
        if self._trail_lim:
            raise SatError("clauses must be added at decision level 0")
        seen: dict[int, bool] = {}
        clause: list[int] = []
        for lit in lits:
            var = abs(lit)
            if not 0 < var <= self.n_vars:
                raise SatError(f"unknown literal {lit}")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen[lit] = True
                clause.append(lit)
        # Drop literals already false at level 0; satisfied clauses
        # vanish entirely.
        filtered: list[int] = []
        for lit in clause:
            value = self._lit_value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return
            if value == -1 and self._level[abs(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._unsat = True
            return
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._attach(filtered)

    # -- observation ---------------------------------------------------

    def value(self, lit: int) -> bool:
        """Model value of ``lit`` after a satisfiable solve."""
        value = self._lit_value(lit)
        if value == 0:
            raise SatError(f"literal {lit} unassigned (no model?)")
        return value == 1

    def model(self) -> dict[int, bool]:
        """The full model as ``{var: bool}`` after a SAT solve."""
        return {
            var: self._assign[var] == 1
            for var in range(1, self.n_vars + 1)
        }

    # -- internals -----------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _attach(self, clause: list[int]) -> None:
        self._clauses.append(clause)
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(lit)
        if value == -1:
            return False
        if value == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._polarity[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; returns a conflicting clause."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watch_list = self._watches[-lit]
            kept: list[list[int]] = []
            conflict: list[int] | None = None
            for index, clause in enumerate(watch_list):
                # Normalise: the falsified watch sits at position 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._lit_value(clause[0]) == 1:
                    kept.append(clause)  # already satisfied
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if not self._enqueue(clause[0], clause):
                    conflict = clause
                    kept.extend(watch_list[index + 1:])
                    break
            self._watches[-lit] = kept
            if conflict is not None:
                return conflict
        return None

    def _bump(self, var: int) -> None:
        self._order.activity[var] += self._var_inc
        if self._order.activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._order.activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Heap keys are stale after a rescale; rebuild.
            self._order.heap = []
            for v in range(1, self.n_vars + 1):
                if self._assign[v] == 0:
                    self._order.push(v)
            return
        self._order.push(var)

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """1UIP learned clause + backjump level for ``conflict``."""
        learned: list[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        reason: list[int] | None = conflict
        current_level = len(self._trail_lim)
        while True:
            assert reason is not None
            for q in reason:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            seen[abs(lit)] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
        learned[0] = -lit
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause; move that
        # literal into watch position 1.
        max_pos = 1
        for k in range(2, len(learned)):
            if self._level[abs(learned[k])] > \
                    self._level[abs(learned[max_pos])]:
                max_pos = k
        learned[1], learned[max_pos] = learned[max_pos], learned[1]
        return learned, self._level[abs(learned[1])]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = None
            self._order.push(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    def _analyze_final(self, lit: int) -> tuple[int, ...]:
        """Assumptions implicated in the failure of assumption ``lit``.

        ``lit`` was about to be assumed but is already false: walk the
        implication graph of ``-lit`` back to the decisions (which are
        all assumptions in the prefix) and return the used assumption
        literals, ``lit`` included, sorted by variable.
        """
        core: set[int] = {lit}
        seen = [False] * (self.n_vars + 1)
        seen[abs(lit)] = True
        for trail_lit in reversed(self._trail):
            var = abs(trail_lit)
            if not seen[var] or self._level[var] == 0:
                continue
            reason = self._reason[var]
            if reason is None:
                core.add(trail_lit)
            else:
                for q in reason:
                    if self._level[abs(q)] > 0:
                        seen[abs(q)] = True
        return tuple(sorted(core, key=abs))

    # -- search --------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under optional assumption literals.

        Returns True with a complete model (:meth:`value`), or False.
        When assumptions were given and the formula is satisfiable
        without them, :attr:`core` names the assumption subset the
        refutation actually used (unsat-core-lite); an unconditionally
        unsatisfiable formula yields an empty core.
        """
        self.core = ()
        if self._unsat:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        for lit in assumptions:
            if not 0 < abs(lit) <= self.n_vars:
                raise SatError(f"unknown assumption literal {lit}")

        conflict_budget = 0
        restart_index = 0
        restart_base = 64
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflict_budget -= 1
                if not self._trail_lim:
                    self._unsat = True
                    return False
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self.stats.learned += 1
                self.stats.max_learned_length = max(
                    self.stats.max_learned_length, len(learned)
                )
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None) or \
                            self._propagate() is not None:
                        self._unsat = True
                        return False
                else:
                    self._attach(learned)
                    self._enqueue(learned[0], learned)
                self._var_inc /= 0.95
                continue
            if conflict_budget <= 0 and \
                    len(self._trail_lim) > len(assumptions):
                restart_index += 1
                self.stats.restarts += 1
                conflict_budget = restart_base * luby(restart_index)
                self._backtrack(0)
                continue
            if len(self._trail_lim) < len(assumptions):
                # Assumptions occupy the first decision levels, in
                # order; a false one refutes the assumption set.
                lit = assumptions[len(self._trail_lim)]
                value = self._lit_value(lit)
                if value == -1:
                    self.core = self._analyze_final(lit)
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                if value == 0:
                    self._enqueue(lit, None)
                continue
            var = self._order.pop_unassigned(self._assign)
            if var == 0:
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            lit = var if self._polarity[var] else -var
            self._enqueue(lit, None)
