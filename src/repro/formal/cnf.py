"""Tseitin CNF construction with dual-rail four-value pairs.

The bounded model checker lowers netlist frames into CNF through this
builder.  Two layers live here:

* a **boolean gate layer** -- :meth:`CnfBuilder.lit_and` /
  :meth:`CnfBuilder.lit_or` Tseitin-encode AND/OR nodes over DIMACS
  literals with constant folding and structural hashing (the same
  ``AND(a, b)`` requested twice yields one variable, so the unrolled
  formula stays near the size of the levelized program);

* a **dual-rail layer** -- a net's four-value state at one frame is a
  :data:`Pair` ``(is_one, is_zero)`` of literals: ``(1, 0)`` encodes
  logic ``1``, ``(0, 1)`` encodes ``0``, and ``(0, 0)`` encodes ``X``
  (``Z`` collapses to ``X`` exactly as the compiled simulator's
  bit-plane kernel does; binary stimulus never produces it).  Both
  rails true is unrepresentable by construction for pairs built
  through this module.  Kleene connectives over pairs
  (:meth:`pair_and`, :meth:`pair_or`, :meth:`pair_not`) mirror the
  ``is1``/``is0`` plane equations of :mod:`repro.sim.compiled`.

Word-level comparators (:meth:`ge_const` / :meth:`lt_const`) encode
``address >= base`` style predicates for the bus-window exclusivity
check, LSB-first over binary pair rails.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..netlist import Logic
from .cdcl import SatError, Solver

__all__ = ["CnfBuilder", "Pair"]

#: A net value at one frame: ``(is_one, is_zero)`` literals.
Pair = tuple[int, int]


class CnfBuilder:
    """Structural-hashing Tseitin encoder over a :class:`Solver`.

    One builder owns one solver: variables allocated here and clauses
    added here go straight into the solver's database, so a BMC run is
    "build frames, then :meth:`Solver.solve`" with no intermediate
    clause list.
    """

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        #: Literal that is true in every model (backed by a unit
        #: clause); its negation is the constant-false literal.
        self.true_lit = solver.new_var()
        solver.add_clause([self.true_lit])
        self.false_lit = -self.true_lit
        self.pair_one: Pair = (self.true_lit, self.false_lit)
        self.pair_zero: Pair = (self.false_lit, self.true_lit)
        self.pair_x: Pair = (self.false_lit, self.false_lit)
        self._cache: dict[tuple[int, ...], int] = {}

    # -- boolean layer -------------------------------------------------

    def new_var(self) -> int:
        """A fresh unconstrained variable (positive literal)."""
        return self.solver.new_var()

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a raw clause over existing literals."""
        self.solver.add_clause(lits)

    def lit_and(self, lits: Iterable[int]) -> int:
        """A literal equivalent to the conjunction of ``lits``.

        Constants fold away, ``x AND -x`` collapses to false, and the
        result is structurally hashed: the same literal multiset maps
        to the same output variable.
        """
        folded: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            if lit == self.false_lit:
                return self.false_lit
            if lit == self.true_lit or lit in seen:
                continue
            if -lit in seen:
                return self.false_lit
            seen.add(lit)
            folded.append(lit)
        if not folded:
            return self.true_lit
        if len(folded) == 1:
            return folded[0]
        key = tuple(sorted(folded))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        gate = self.solver.new_var()
        for lit in key:
            self.solver.add_clause([-gate, lit])
        self.solver.add_clause([gate] + [-lit for lit in key])
        self._cache[key] = gate
        return gate

    def lit_or(self, lits: Iterable[int]) -> int:
        """A literal equivalent to the disjunction of ``lits``.

        Encoded as ``NOT(AND(NOT ...))`` so ``OR(a, b)`` and
        ``AND(-a, -b)`` share one structural-hash entry.
        """
        return -self.lit_and(-lit for lit in lits)

    # -- dual-rail layer ----------------------------------------------

    def pair_const(self, value: Logic) -> Pair:
        """The constant pair for a four-value literal (``Z`` -> ``X``)."""
        if value is Logic.ONE:
            return self.pair_one
        if value is Logic.ZERO:
            return self.pair_zero
        return self.pair_x

    def pair_free(self) -> Pair:
        """A fresh *binary* pair: one decision variable, never ``X``."""
        var = self.solver.new_var()
        return (var, -var)

    def pair_not(self, pair: Pair) -> Pair:
        """Kleene negation: swap the rails (``X`` stays ``X``)."""
        return (pair[1], pair[0])

    def pair_and(self, pairs: Sequence[Pair]) -> Pair:
        """Kleene conjunction: one iff all one, zero iff any zero."""
        return (
            self.lit_and(p[0] for p in pairs),
            self.lit_or(p[1] for p in pairs),
        )

    def pair_or(self, pairs: Sequence[Pair]) -> Pair:
        """Kleene disjunction: one iff any one, zero iff all zero."""
        return (
            self.lit_or(p[0] for p in pairs),
            self.lit_and(p[1] for p in pairs),
        )

    def pair_known(self, pair: Pair) -> int:
        """Literal: this pair carries a binary (non-``X``) value."""
        return self.lit_or(pair)

    def pair_is_x(self, pair: Pair) -> int:
        """Literal: this pair is ``X`` (neither rail set)."""
        return self.lit_and((-pair[0], -pair[1]))

    def pair_is(self, pair: Pair, value: Logic) -> int:
        """Literal: this pair equals the given four-value constant."""
        if value is Logic.ONE:
            return pair[0]
        if value is Logic.ZERO:
            return pair[1]
        return self.pair_is_x(pair)

    # -- word comparators ---------------------------------------------

    def ge_const(self, bits: Sequence[int], value: int) -> int:
        """Literal: unsigned word ``bits`` (LSB-first) >= ``value``."""
        if value < 0:
            raise SatError("comparator bound must be non-negative")
        if value >> len(bits):
            return self.false_lit
        result = self.true_lit
        for position, bit in enumerate(bits):
            if (value >> position) & 1:
                result = self.lit_and((bit, result))
            else:
                result = self.lit_or((bit, result))
        return result

    def lt_const(self, bits: Sequence[int], value: int) -> int:
        """Literal: unsigned word ``bits`` (LSB-first) < ``value``."""
        return -self.ge_const(bits, value)
