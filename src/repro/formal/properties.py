"""Net-level properties: assert / assume / cover with bounded liveness.

The paper's S6 formal box checks *properties* against blocks, not just
equivalence.  This module gives the repository that vocabulary: a tiny
three-valued expression AST over named nets, wrapped into
:class:`Property` declarations (``assert``: must never be violated;
``assume``: environment constraint; ``cover``: must be reachable), and
grouped per module into a :class:`PropertySet`.

Expressions evaluate in Kleene three-valued logic so the *same* object
serves both engines: :meth:`PropExpr.evaluate` reads a simulator (for
counterexample replay, where an ``X`` net yields an ``X`` verdict) and
:meth:`PropExpr.encode` lowers onto dual-rail CNF pairs (for the
bounded model checker, where the identical semantics hold literal for
literal).  Bounded liveness rides the ``within`` field: ``assert p
within n`` demands ``p`` hold at least once in every ``n`` consecutive
frames, the standard sugar for "eventually, soon".

Property sets are **auto-derivable** from facts the static layers
already compute -- see :func:`derive_properties`: provably-constant
nets (:func:`repro.analysis.stuck_nets`) become safety asserts,
one-hot ring registers detected structurally become at-most-one
asserts plus reachability covers, and reset-assured state becomes a
bounded-liveness "settles to known" assert.  Hand-written properties
use the same constructors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..netlist import Logic, Module
from .cnf import CnfBuilder, Pair

__all__ = [
    "AtMostOne",
    "And",
    "Known",
    "NetIs",
    "Not",
    "Or",
    "PropExpr",
    "Property",
    "PropertyError",
    "PropertySet",
    "derive_properties",
    "exactly_one",
    "implies",
]


class PropertyError(ValueError):
    """Malformed property (unknown net, bad operand, bad kind)."""


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


class PropExpr:
    """Base class of the three-valued property expression AST.

    Subclasses are frozen dataclasses; equality and hashing are
    structural, and :meth:`describe` is the canonical text form used
    in fingerprints.
    """

    def nets(self) -> tuple[str, ...]:
        """Sorted unique nets this expression reads."""
        raise NotImplementedError

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        """Kleene value of the expression under a net reader."""
        raise NotImplementedError

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        """Dual-rail pair of the expression over frame pairs."""
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical text form (stable across processes)."""
        raise NotImplementedError


def _as_kleene(value: Logic) -> Logic:
    """Collapse ``Z`` to ``X`` -- properties see floating as unknown."""
    return Logic.X if value is Logic.Z else value


@dataclass(frozen=True)
class NetIs(PropExpr):
    """``net == value`` for a binary constant; ``X`` nets yield ``X``."""

    net: str
    value: Logic

    def __post_init__(self) -> None:
        if self.value not in (Logic.ZERO, Logic.ONE):
            raise PropertyError(
                f"NetIs needs a binary constant, got {self.value!r}"
            )

    def nets(self) -> tuple[str, ...]:
        return (self.net,)

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        value = _as_kleene(read(self.net))
        if not value.is_known:
            return Logic.X
        return Logic.from_bool(value is self.value)

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        pair = pair_of(self.net)
        return pair if self.value is Logic.ONE else builder.pair_not(pair)

    def describe(self) -> str:
        return f"(is {self.net} {int(self.value)})"


@dataclass(frozen=True)
class Known(PropExpr):
    """``net`` carries a binary value (two-valued verdict)."""

    net: str

    def nets(self) -> tuple[str, ...]:
        return (self.net,)

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        return Logic.from_bool(_as_kleene(read(self.net)).is_known)

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        known = builder.pair_known(pair_of(self.net))
        return (known, -known)

    def describe(self) -> str:
        return f"(known {self.net})"


@dataclass(frozen=True)
class Not(PropExpr):
    """Kleene negation."""

    arg: PropExpr

    def nets(self) -> tuple[str, ...]:
        return self.arg.nets()

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        value = self.arg.evaluate(read)
        if not value.is_known:
            return Logic.X
        return Logic.from_bool(value is Logic.ZERO)

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        return builder.pair_not(self.arg.encode(builder, pair_of))

    def describe(self) -> str:
        return f"(not {self.arg.describe()})"


@dataclass(frozen=True)
class And(PropExpr):
    """Kleene conjunction of one or more operands."""

    args: tuple[PropExpr, ...]

    def __init__(self, *args: PropExpr) -> None:
        if not args:
            raise PropertyError("And needs at least one operand")
        object.__setattr__(self, "args", tuple(args))

    def nets(self) -> tuple[str, ...]:
        return tuple(sorted({n for a in self.args for n in a.nets()}))

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        values = [a.evaluate(read) for a in self.args]
        if any(v is Logic.ZERO for v in values):
            return Logic.ZERO
        if all(v is Logic.ONE for v in values):
            return Logic.ONE
        return Logic.X

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        return builder.pair_and(
            [a.encode(builder, pair_of) for a in self.args]
        )

    def describe(self) -> str:
        inner = " ".join(a.describe() for a in self.args)
        return f"(and {inner})"


@dataclass(frozen=True)
class Or(PropExpr):
    """Kleene disjunction of one or more operands."""

    args: tuple[PropExpr, ...]

    def __init__(self, *args: PropExpr) -> None:
        if not args:
            raise PropertyError("Or needs at least one operand")
        object.__setattr__(self, "args", tuple(args))

    def nets(self) -> tuple[str, ...]:
        return tuple(sorted({n for a in self.args for n in a.nets()}))

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        values = [a.evaluate(read) for a in self.args]
        if any(v is Logic.ONE for v in values):
            return Logic.ONE
        if all(v is Logic.ZERO for v in values):
            return Logic.ZERO
        return Logic.X

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        return builder.pair_or(
            [a.encode(builder, pair_of) for a in self.args]
        )

    def describe(self) -> str:
        inner = " ".join(a.describe() for a in self.args)
        return f"(or {inner})"


@dataclass(frozen=True)
class AtMostOne(PropExpr):
    """At most one of the named nets is ``1`` (one-hot-or-zero).

    Three-valued: definitely violated when two nets are definitely
    ``1``; definitely satisfied when at most one net *could* be ``1``
    (counting ``X`` as maybe); ``X`` otherwise.
    """

    members: tuple[str, ...]

    def __init__(self, members: Iterable[str]) -> None:
        nets = tuple(members)
        if len(set(nets)) != len(nets) or not nets:
            raise PropertyError(
                "AtMostOne needs a non-empty list of distinct nets"
            )
        object.__setattr__(self, "members", nets)

    def nets(self) -> tuple[str, ...]:
        return tuple(sorted(self.members))

    def evaluate(self, read: Callable[[str], Logic]) -> Logic:
        values = [_as_kleene(read(net)) for net in self.members]
        ones = sum(1 for v in values if v is Logic.ONE)
        maybe = sum(1 for v in values if not v.is_known)
        if ones >= 2:
            return Logic.ZERO
        if ones + maybe <= 1:
            return Logic.ONE
        return Logic.X

    def encode(
        self, builder: CnfBuilder, pair_of: Callable[[str], Pair]
    ) -> Pair:
        pairs = [pair_of(net) for net in self.members]
        if len(pairs) == 1:
            return builder.pair_one
        definite: list[int] = []
        possible: list[int] = []
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                definite.append(
                    builder.lit_and((pairs[i][0], pairs[j][0]))
                )
                possible.append(
                    builder.lit_and((-pairs[i][1], -pairs[j][1]))
                )
        return (
            builder.lit_and(-lit for lit in possible),
            builder.lit_or(definite),
        )

    def describe(self) -> str:
        return f"(at-most-one {' '.join(self.members)})"


def implies(antecedent: PropExpr, consequent: PropExpr) -> PropExpr:
    """Kleene implication sugar: ``NOT a OR b``."""
    return Or(Not(antecedent), consequent)


def exactly_one(members: Iterable[str]) -> PropExpr:
    """Exactly one of the nets is ``1``: at-most-one and at-least-one."""
    nets = tuple(members)
    return And(
        AtMostOne(nets),
        Or(*[NetIs(net, Logic.ONE) for net in nets]),
    )


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

_KINDS = ("assert", "assume", "cover")


@dataclass(frozen=True)
class Property:
    """One named property over a module's nets.

    ``kind`` is ``assert`` (must hold -- with ``within=n``, must hold
    at least once in every ``n`` consecutive frames), ``assume``
    (constrains every frame of the environment during BMC) or
    ``cover`` (some reachable frame -- within ``within`` frames when
    set -- must satisfy the expression).
    """

    name: str
    kind: str
    expr: PropExpr
    within: int = 1
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise PropertyError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.within < 1:
            raise PropertyError("within must be >= 1")
        if self.kind == "assume" and self.within != 1:
            raise PropertyError("assume properties cannot use within")

    @property
    def fingerprint(self) -> str:
        """Stable 12-hex id over kind, name, expression and window."""
        text = f"{self.kind}|{self.name}|{self.expr.describe()}" \
               f"|{self.within}"
        return hashlib.sha1(text.encode()).hexdigest()[:12]

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form."""
        return {
            "expr": self.expr.describe(),
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "message": self.message,
            "name": self.name,
            "within": self.within,
        }


@dataclass(frozen=True)
class PropertySet:
    """The properties declared against one module."""

    module: str
    properties: tuple[Property, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PropertyError(f"duplicate property names: {dupes}")

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.properties)

    def __len__(self) -> int:
        return len(self.properties)

    def of_kind(self, kind: str) -> tuple[Property, ...]:
        """The subset with the given kind, declaration order."""
        return tuple(p for p in self.properties if p.kind == kind)

    def merged(self, *others: "PropertySet") -> "PropertySet":
        """Union of several sets over the same module."""
        props = list(self.properties)
        for other in others:
            if other.module != self.module:
                raise PropertyError(
                    f"cannot merge sets for {self.module!r} and "
                    f"{other.module!r}"
                )
            props.extend(other.properties)
        return PropertySet(self.module, tuple(props))


# ---------------------------------------------------------------------------
# Derivation from static facts
# ---------------------------------------------------------------------------


def _trace_to_flop(module: Module, net: str) -> str | None:
    """Flop instance whose Q reaches ``net`` through buffers only."""
    current = net
    for _ in range(len(module.instances) + 1):
        driver_pin = module.nets[current].driver
        if driver_pin is None:
            return None
        driver = module.instances[driver_pin.instance]
        if driver.cell.is_sequential:
            return driver.name
        pins = driver.cell.input_pins
        if len(pins) != 1 or driver.cell.footprint != "BUF":
            return None
        current = driver.net_of(pins[0])
    return None


def _shift_rings(module: Module) -> list[list[str]]:
    """One-hot ring candidates as flop-name cycles.

    A ring is a maximal chain of flops each of whose data input is a
    buffer-only path from the previous flop's Q, closed back into the
    head flop's data *cone* through arbitrary re-injection logic (the
    self-healing idiom of :func:`repro.netlist.generators.one_hot_ring`
    and of synthesized one-hot FSMs).
    """
    flops = [
        inst for inst in module.sequential_instances
        if inst.cell.data_pin is not None
    ]
    by_name = {inst.name: inst for inst in flops}
    # pure[f] = g: flop f's D is a buffer-only path from flop g's Q.
    pure: dict[str, str] = {}
    for inst in flops:
        source = _trace_to_flop(
            module, inst.net_of(inst.cell.data_pin)
        )
        if source is not None and source in by_name:
            pure[inst.name] = source
    successors: dict[str, list[str]] = {}
    for name, source in pure.items():
        successors.setdefault(source, []).append(name)

    rings: list[list[str]] = []
    used: set[str] = set()
    for head in sorted(by_name):
        if head in used or head in pure:
            continue  # chains start at a flop with gate-driven D
        chain = [head]
        current = head
        while True:
            nexts = sorted(successors.get(current, []))
            if len(nexts) != 1 or nexts[0] in used or nexts[0] == head:
                break
            current = nexts[0]
            chain.append(current)
        if len(chain) < 3:
            continue
        # Closed ring: the tail's Q must feed the head's data cone.
        tail_q = by_name[chain[-1]].net_of("Q")
        head_inst = by_name[head]
        cone: set[str] = set()
        stack = [head_inst.net_of(head_inst.cell.data_pin)]
        while stack:
            net = stack.pop()
            if net in cone:
                continue
            cone.add(net)
            driver_pin = module.nets[net].driver
            if driver_pin is None:
                continue
            driver = module.instances[driver_pin.instance]
            if driver.cell.is_sequential:
                continue
            stack.extend(
                driver.net_of(pin) for pin in driver.cell.input_pins
            )
        if tail_q in cone:
            rings.append(chain)
            used.update(chain)
    return rings


def derive_properties(
    module: Module,
    *,
    include: Sequence[str] = ("const", "onehot", "sync"),
    max_const: int = 8,
) -> PropertySet:
    """Derive a property set from lint/analysis facts about ``module``.

    ``include`` selects the derivation families:

    * ``const`` -- every net :func:`repro.analysis.stuck_nets` proves
      constant becomes a safety assert (capped at ``max_const``, in
      net order);
    * ``onehot`` -- detected one-hot shift rings become an at-most-one
      assert over the ring's state nets plus a reachability cover of
      the head bit;
    * ``sync`` -- reset-assured state must settle to a known binary
      value within two frames (one aggregated bounded-liveness
      assert).
    """
    from ..analysis import analyze_module, stuck_nets

    props: list[Property] = []
    if "const" in include:
        analysis = analyze_module(module)
        for net, value in stuck_nets(analysis)[:max_const]:
            props.append(Property(
                name=f"const_{net}",
                kind="assert",
                expr=NetIs(net, Logic.ONE if value == "1"
                           else Logic.ZERO),
                message=f"net {net} is provably stuck at {value}",
            ))
    if "onehot" in include:
        for ring in _shift_rings(module):
            q_nets = [
                module.instances[name].net_of("Q") for name in ring
            ]
            head = ring[0]
            props.append(Property(
                name=f"onehot_{head}",
                kind="assert",
                expr=AtMostOne(q_nets),
                message=f"ring {head}..{ring[-1]} must stay one-hot",
            ))
            props.append(Property(
                name=f"onehot_{head}_reach",
                kind="cover",
                expr=NetIs(q_nets[0], Logic.ONE),
                message=f"ring head {head} must be reachable",
            ))
    if "sync" in include:
        analysis = analyze_module(module)
        assured = sorted(analysis.reset_assured)
        if assured:
            props.append(Property(
                name="sync_settle",
                kind="assert",
                expr=And(*[
                    Known(module.instances[name].net_of("Q"))
                    for name in assured
                ]),
                within=2,
                message="reset-assured state settles to binary "
                        "values within two frames",
            ))
    return PropertySet(module.name, tuple(props))
