"""Signal integrity: crosstalk, IR drop, electromigration, decaps.

These are the Section-4 "current complex SOC projects require" flow
capabilities, built on the placement/routing substrate.
"""

from .crosstalk import (
    COUPLING_CAP_FF_PER_EDGE,
    CouplingPair,
    CrosstalkAnalyzer,
    CrosstalkReport,
    MILLER_FACTOR,
    fix_crosstalk_by_resizing,
)
from .ir_drop import (
    IrDropReport,
    PowerGridAnalyzer,
    VDD,
    electromigration_check,
)

__all__ = [
    "COUPLING_CAP_FF_PER_EDGE",
    "CouplingPair",
    "CrosstalkAnalyzer",
    "CrosstalkReport",
    "MILLER_FACTOR",
    "fix_crosstalk_by_resizing",
    "IrDropReport",
    "PowerGridAnalyzer",
    "VDD",
    "electromigration_check",
]
