"""Crosstalk analysis on routed designs.

Section 4 of the paper lists "signal integrity check (crosstalk,
electron-migration, dynamic IR drop, de-coupling cell insertion)"
among the capabilities later flows required.  This module implements
the crosstalk piece on our global-routing substrate:

* routed nets that share grid edges are *coupled*; the coupling length
  is the number of shared edges;
* a coupled aggressor switching opposite to the victim adds Miller-
  factor delay (delta = k * Ccouple * Rdrive); switching with it
  subtracts;
* victims whose worst-case delta pushes a negative-slack endpoint are
  reported, and the standard fixes (spacing = re-route the victim with
  its edges made expensive, or buffering = resize the victim driver)
  are applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist import Module
from ..physical.placement import Placement
from ..physical.routing import GlobalRouter
from ..sta import TimingAnalyzer, TimingConstraints

#: Coupling capacitance per shared routing-grid edge (fF).
COUPLING_CAP_FF_PER_EDGE = 1.6
#: Miller factor for opposite-phase switching.
MILLER_FACTOR = 2.0


@dataclass(frozen=True)
class CouplingPair:
    """Two nets sharing routing edges."""

    victim: str
    aggressor: str
    shared_edges: int

    @property
    def coupling_cap_ff(self) -> float:
        return self.shared_edges * COUPLING_CAP_FF_PER_EDGE


@dataclass
class CrosstalkReport:
    """Outcome of one crosstalk analysis."""

    pairs: list[CouplingPair] = field(default_factory=list)
    victim_delta_ps: dict[str, float] = field(default_factory=dict)
    violating_victims: list[str] = field(default_factory=list)

    @property
    def worst_delta_ps(self) -> float:
        if not self.victim_delta_ps:
            return 0.0
        return max(self.victim_delta_ps.values())

    def format_report(self) -> str:
        lines = [
            "Crosstalk analysis",
            f"  coupled pairs      : {len(self.pairs)}",
            f"  worst delay delta  : {self.worst_delta_ps:.1f} ps",
            f"  violating victims  : {len(self.violating_victims)}",
        ]
        return "\n".join(lines)


class CrosstalkAnalyzer:
    """Couples routed nets and computes delay deltas."""

    def __init__(
        self,
        module: Module,
        placement: Placement,
        router: GlobalRouter,
    ) -> None:
        self.module = module
        self.placement = placement
        self.router = router
        self._net_edges: dict[str, set] = {}

    def route_and_trace(self) -> None:
        """Route all nets, remembering each net's edge set."""
        pitch = self.placement.site_pitch_um
        for net_name, net in self.module.nets.items():
            if net.driver is None:
                continue
            driver_loc = self.placement.locations.get(net.driver.instance)
            if driver_loc is None:
                continue
            edges: set = set()
            for load in net.loads:
                sink = self.placement.locations.get(load.instance)
                if sink is None or sink == driver_loc:
                    continue
                path = self.router.route_connection(driver_loc, sink)
                if path is None:
                    continue
                self.router._commit(path)
                for a, b in zip(path, path[1:]):
                    edges.add(self.router._edge(a, b))
            if edges:
                self._net_edges[net_name] = edges

    def coupling_pairs(self, *, min_shared_edges: int = 2
                       ) -> list[CouplingPair]:
        """All net pairs sharing at least ``min_shared_edges`` edges."""
        edge_to_nets: dict[tuple, list[str]] = {}
        for net, edges in self._net_edges.items():
            for edge in edges:
                edge_to_nets.setdefault(edge, []).append(net)
        pair_counts: dict[tuple[str, str], int] = {}
        for nets in edge_to_nets.values():
            for i in range(len(nets)):
                for j in range(i + 1, len(nets)):
                    key = (min(nets[i], nets[j]), max(nets[i], nets[j]))
                    pair_counts[key] = pair_counts.get(key, 0) + 1
        return [
            CouplingPair(victim=a, aggressor=b, shared_edges=count)
            for (a, b), count in sorted(pair_counts.items())
            if count >= min_shared_edges
        ]

    def analyze(
        self,
        constraints: TimingConstraints,
        *,
        min_shared_edges: int = 2,
    ) -> CrosstalkReport:
        """Full analysis: couple, compute deltas, flag violators."""
        if not self._net_edges:
            self.route_and_trace()
        report = CrosstalkReport(
            pairs=self.coupling_pairs(min_shared_edges=min_shared_edges)
        )
        analyzer = TimingAnalyzer(self.module, constraints)

        # Worst-case delta per victim: all aggressors opposite-phase.
        for pair in report.pairs:
            for victim, other in ((pair.victim, pair.aggressor),
                                  (pair.aggressor, pair.victim)):
                net = self.module.nets.get(victim)
                if net is None or net.driver is None:
                    continue
                driver = self.module.instances[net.driver.instance]
                delta = (
                    MILLER_FACTOR
                    * pair.coupling_cap_ff
                    * driver.cell.drive_resistance_kohm
                )
                report.victim_delta_ps[victim] = (
                    report.victim_delta_ps.get(victim, 0.0) + delta
                )

        # A victim violates when its delta exceeds the slack of the
        # worst endpoint fed by the victim's fanout cone (approximated
        # by global WNS margin for this block-level check).
        sta = analyzer.analyze(with_critical_path=False)
        margin = max(sta.wns_ps, 0.0)
        report.violating_victims = [
            victim for victim, delta in report.victim_delta_ps.items()
            if delta > margin
        ]
        return report


def fix_crosstalk_by_resizing(
    module: Module, report: CrosstalkReport, *, max_fixes: int = 32
) -> int:
    """Strengthen the drivers of the worst victims (lower Rdrive means
    proportionally smaller delta).  Returns fixes applied."""
    fixed = 0
    worst_first = sorted(
        report.violating_victims,
        key=lambda v: -report.victim_delta_ps.get(v, 0.0),
    )
    for victim in worst_first[:max_fixes]:
        net = module.nets.get(victim)
        if net is None or net.driver is None:
            continue
        inst = module.instances[net.driver.instance]
        variants = module.library.drive_variants(inst.cell.footprint)
        names = [v.name for v in variants]
        if inst.cell.name in names:
            index = names.index(inst.cell.name)
            if index + 1 < len(names):
                module.swap_cell(inst.name, names[index + 1])
                fixed += 1
    return fixed
