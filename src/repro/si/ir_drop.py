"""Static and dynamic IR-drop analysis with decap insertion.

The power grid is modelled as a resistive mesh over the placement
grid: VDD is fed from ring taps at the grid edge, each occupied site
draws its cell's switching current, and node voltages come from
solving the sparse conductance system G*v = i (scipy).  Dynamic
droop adds a local di/dt term that on-site decoupling capacitance
absorbs -- inserting decap cells into empty sites near hot spots is
the fix the paper's Section 4 names ("de-coupling cell insertion").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from ..netlist import Module
from ..physical.placement import Placement

#: Mesh segment resistance (ohm) between adjacent power-grid nodes.
SEGMENT_RESISTANCE_OHM = 0.35
#: Supply voltage at 0.25 um.
VDD = 2.5
#: Average switching current per cell (mA) at full activity.
CELL_CURRENT_MA = 0.035
#: Dynamic di/dt droop per cell without local decap (mV).
DYNAMIC_DROOP_MV_PER_CELL = 1.1
#: Droop absorbed per inserted decap cell (mV).
DECAP_RELIEF_MV = 6.0


@dataclass
class IrDropReport:
    """Voltage map summary."""

    worst_static_drop_mv: float
    mean_static_drop_mv: float
    worst_dynamic_droop_mv: float
    violating_nodes: int
    limit_mv: float
    decaps_inserted: int = 0

    @property
    def clean(self) -> bool:
        return self.violating_nodes == 0

    def format_report(self) -> str:
        return "\n".join(
            [
                "IR drop analysis",
                f"  worst static drop : {self.worst_static_drop_mv:.1f} mV",
                f"  mean static drop  : {self.mean_static_drop_mv:.1f} mV",
                f"  worst dynamic     : {self.worst_dynamic_droop_mv:.1f} mV",
                f"  violations (> {self.limit_mv:.0f} mV) : "
                f"{self.violating_nodes}",
                f"  decaps inserted   : {self.decaps_inserted}",
            ]
        )


class PowerGridAnalyzer:
    """Solves the placement-grid power mesh."""

    def __init__(self, module: Module, placement: Placement,
                 *, activity: float = 0.25) -> None:
        if not 0.0 < activity <= 1.0:
            raise ValueError("activity must be in (0, 1]")
        self.module = module
        self.placement = placement
        self.activity = activity
        self.width = placement.grid_width
        self.height = placement.grid_height
        self._decap_sites: set[tuple[int, int]] = set()

    def _node(self, col: int, row: int) -> int:
        return row * self.width + col

    def _occupancy(self) -> dict[tuple[int, int], int]:
        cells: dict[tuple[int, int], int] = {}
        for loc in self.placement.locations.values():
            cells[loc] = cells.get(loc, 0) + 1
        return cells

    def solve_static(self) -> np.ndarray:
        """Node voltages (V) under average switching current."""
        n = self.width * self.height
        conductance = 1.0 / SEGMENT_RESISTANCE_OHM
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        currents = np.zeros(n)

        def stamp(a: int, b: int) -> None:
            rows.extend([a, b, a, b])
            cols.extend([a, b, b, a])
            vals.extend([conductance, conductance,
                         -conductance, -conductance])

        for row in range(self.height):
            for col in range(self.width):
                node = self._node(col, row)
                if col + 1 < self.width:
                    stamp(node, self._node(col + 1, row))
                if row + 1 < self.height:
                    stamp(node, self._node(col, row + 1))

        occupancy = self._occupancy()
        for (col, row), count in occupancy.items():
            if 0 <= col < self.width and 0 <= row < self.height:
                currents[self._node(col, row)] -= (
                    count * CELL_CURRENT_MA * 1e-3 * self.activity
                )

        # Edge nodes are VDD taps: very strong tie to the supply.
        tap_conductance = 1e4
        for row in range(self.height):
            for col in range(self.width):
                if (row in (0, self.height - 1)
                        or col in (0, self.width - 1)):
                    node = self._node(col, row)
                    rows.append(node)
                    cols.append(node)
                    vals.append(tap_conductance)
                    currents[node] += tap_conductance * VDD

        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(n, n)
        ).tocsr()
        return spsolve(matrix, currents)

    def analyze(self, *, limit_mv: float = 50.0) -> IrDropReport:
        """Static solve + dynamic droop estimate per node."""
        voltages = self.solve_static()
        drops_mv = (VDD - voltages) * 1e3
        occupancy = self._occupancy()
        dynamic = np.zeros_like(drops_mv)
        for (col, row), count in occupancy.items():
            if 0 <= col < self.width and 0 <= row < self.height:
                node = self._node(col, row)
                droop = count * DYNAMIC_DROOP_MV_PER_CELL * self.activity
                if (col, row) in self._decap_sites:
                    droop = max(0.0, droop - DECAP_RELIEF_MV)
                dynamic[node] = droop
        total = drops_mv + dynamic
        return IrDropReport(
            worst_static_drop_mv=float(drops_mv.max()),
            mean_static_drop_mv=float(drops_mv.mean()),
            worst_dynamic_droop_mv=float(dynamic.max()),
            violating_nodes=int((total > limit_mv).sum()),
            limit_mv=limit_mv,
            decaps_inserted=len(self._decap_sites),
        )

    def insert_decaps(self, *, limit_mv: float = 50.0,
                      max_decaps: int = 200) -> int:
        """Place decap cells next to the worst droop sites.

        Decaps occupy empty placement sites adjacent to hot nodes;
        returns the number inserted.
        """
        voltages = self.solve_static()
        drops_mv = (VDD - voltages) * 1e3
        occupancy = self._occupancy()
        occupied = set(occupancy)
        hot = sorted(
            occupancy,
            key=lambda loc: -(
                drops_mv[self._node(*loc)]
                + occupancy[loc] * DYNAMIC_DROOP_MV_PER_CELL * self.activity
            ),
        )
        inserted = 0
        for col, row in hot:
            if inserted >= max_decaps:
                break
            node_total = (
                drops_mv[self._node(col, row)]
                + occupancy[(col, row)] * DYNAMIC_DROOP_MV_PER_CELL
                * self.activity
            )
            if node_total <= limit_mv:
                continue
            if (col, row) not in self._decap_sites:
                self._decap_sites.add((col, row))
                inserted += 1
            for neighbour in ((col + 1, row), (col - 1, row),
                              (col, row + 1), (col, row - 1)):
                if inserted >= max_decaps:
                    break
                if (0 <= neighbour[0] < self.width
                        and 0 <= neighbour[1] < self.height
                        and neighbour not in occupied
                        and neighbour not in self._decap_sites):
                    self._decap_sites.add(neighbour)
                    inserted += 1
        return inserted


def electromigration_check(
    module: Module, *, max_current_ma: float = 1.0,
    clock_mhz: float = 133.0,
) -> list[str]:
    """Nets whose average drive current exceeds the EM limit.

    Average current scales with load capacitance and frequency:
    I = C * V * f.  High-fanout nets driven hard are the offenders.
    """
    from ..sta import TimingAnalyzer, TimingConstraints

    analyzer = TimingAnalyzer(
        module, TimingConstraints(clock_period_ps=1e6 / clock_mhz)
    )
    offenders: list[str] = []
    for net_name, net in module.nets.items():
        if net.driver is None:
            continue
        cap_f = analyzer.load_cap_ff(net_name) * 1e-15
        current_ma = cap_f * VDD * clock_mhz * 1e6 * 1e3
        if current_ma > max_current_ma:
            offenders.append(net_name)
    return offenders
