"""The asyncio flow orchestrator: many tenants, one work pool.

:class:`DesignService` accepts a multi-tenant stream of
:class:`~repro.service.request.FlowRequest` objects, decomposes each
into the per-block stage DAG of :mod:`repro.service.stages`, and
schedules ready work units onto :mod:`repro.perf` process-pool
workers behind a bounded queue.  The scheduling policy is fairness
first, LPT second: among tenants the one with the least scheduled
cost goes next, and within a tenant the largest ready unit goes first
(longest-processing-time binning keeps the pool's bins level).

Cross-request deduplication is the throughput lever: a unit's content
key is ``(stage, input fingerprints, config)``, so identical work
from any tenant resolves to one computation.  Three outcomes exist
for a requested unit:

* **store hit** -- the configured :class:`~repro.store.ArtifactStore`
  already holds the payload (a warm rerun, or another request already
  finished it);
* **coalesced** -- the same key is in flight right now; the request
  awaits the shared future instead of scheduling a duplicate;
* **computed** -- the unit is scheduled, executed, round-tripped
  through canonical JSON and published to the store for everyone
  after.

Determinism contract (the repo-wide rule): every per-request
:class:`FlowReport` is canonical JSON and byte-identical for any
worker count, submission order and queue depth, because unit payloads
are pure functions of their content key and reports aggregate them in
sorted order.  Failures stay structured: a failing stage becomes a
per-request error record and skips that request's dependents; it is
never stored, never raised into unrelated requests.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Iterable

from ..perf import resolve_workers
from ..store import ArtifactStore, canonical_json, content_key, \
    get_default_store
from .request import BlockSpec, FlowRequest
from .stages import (
    STAGE_DEFS,
    STAGE_VERSION,
    estimated_cost,
    execute_unit_guarded,
    make_unit_spec,
    stage_closure,
    unit_config,
    unit_fingerprints,
)

try:  # concurrent.futures raises this once a pool has died mid-flight
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - always present on CPython 3.10+
    BrokenProcessPool = OSError  # type: ignore[misc,assignment]

Event = dict[str, Any]

_POOL_ERRORS = (pickle.PicklingError, AttributeError, TypeError, OSError,
                ImportError, BrokenProcessPool)


@dataclass
class ServiceStats:
    """Operational tallies; observability only, never in reports."""

    requests: int = 0
    units_total: int = 0
    units_executed: int = 0
    units_coalesced: int = 0
    units_store_hits: int = 0
    units_failed: int = 0
    units_skipped: int = 0

    @property
    def dedup_rate(self) -> float:
        """Fraction of requested units served without recomputation."""
        if not self.units_total:
            return 0.0
        return (self.units_coalesced + self.units_store_hits) \
            / self.units_total

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": float(self.requests),
            "units_total": float(self.units_total),
            "units_executed": float(self.units_executed),
            "units_coalesced": float(self.units_coalesced),
            "units_store_hits": float(self.units_store_hits),
            "units_failed": float(self.units_failed),
            "units_skipped": float(self.units_skipped),
            "dedup_rate": self.dedup_rate,
        }


@dataclass(frozen=True)
class FlowReport:
    """Canonical per-request outcome.

    ``body`` is a plain canonical-JSON-able dict; request identity,
    configuration, per-block stage payloads and structured errors all
    live inside it, so :meth:`canonical_json` is the *complete*
    deterministic record of the request.
    """

    request_id: str
    tenant: str
    design: str
    body: dict[str, Any]

    @property
    def ok(self) -> bool:
        return bool(self.body.get("ok", False))

    @property
    def errors(self) -> list[dict[str, Any]]:
        return list(self.body.get("errors", []))

    def to_dict(self) -> dict[str, Any]:
        return self.body

    def canonical_json(self) -> str:
        return canonical_json(self.body)

    def format_report(self) -> str:
        lines = [
            f"request {self.request_id} tenant={self.tenant} "
            f"design={self.design} "
            f"{'OK' if self.ok else 'FAILED'}",
        ]
        blocks: dict[str, Any] = self.body.get("blocks", {})
        for name in sorted(blocks):
            stages = blocks[name]
            parts = []
            for stage in self.body.get("stages", []):
                payload = stages.get(stage)
                if payload is None:
                    continue
                if stage == "sta" and isinstance(payload, dict) \
                        and "skipped" not in payload \
                        and "error" not in payload:
                    worst = min(
                        (corner.get("wns_ps", 0.0)
                         for corner in payload.values()
                         if isinstance(corner, dict)
                         and "wns_ps" in corner),
                        default=None,
                    )
                    parts.append(
                        "sta" if worst is None
                        else f"sta wns={worst:.0f}ps"
                    )
                elif isinstance(payload, dict) and "error" in payload:
                    parts.append(f"{stage}:ERROR")
                elif isinstance(payload, dict) and "skipped" in payload:
                    parts.append(f"{stage}:skipped")
                else:
                    parts.append(stage)
            lines.append(f"  {name:14s} {' '.join(parts)}")
        for error in self.errors:
            corner = error.get("corner")
            where = f"{error['stage']}/{error['block']}" + (
                f"/{corner}" if corner else ""
            )
            lines.append(
                f"  ERROR {where}: {error['type']}: {error['message']}"
            )
        return "\n".join(lines)


@dataclass
class _Unit:
    """One schedulable work unit awaiting dispatch."""

    key: str
    stage: str
    block: str
    corner: str | None
    tenant: str
    cost: float
    seq: int
    spec: dict[str, Any]
    domain: str
    fingerprints: tuple[str, ...]
    config: dict[str, Any]
    future: "asyncio.Future[tuple[bool, dict[str, Any]]]" = field(
        repr=False,
    )


class DesignService:
    """Sharded, deduplicating flow orchestrator.

    ``workers=1`` executes every unit inline in submission order --
    the serial reference the parallel paths must reproduce
    byte-for-byte.  ``workers>1`` dispatches onto a process pool; if
    the pool cannot be used (restricted environment) execution
    degrades to inline with identical results.  ``queue_depth``
    bounds how many units may be in flight at once (default
    ``2 * workers``).
    """

    def __init__(
        self,
        *,
        workers: int | None = 1,
        queue_depth: int | None = None,
        store: ArtifactStore | None = None,
        on_event: Callable[[Event], None] | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.queue_depth = max(1, int(queue_depth)) if queue_depth \
            else max(1, 2 * self.workers)
        self.store = store if store is not None else get_default_store()
        self.on_event = on_event
        self.stats = ServiceStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tick: asyncio.Event | None = None
        self._dispatcher: "asyncio.Task[None] | None" = None
        self._inflight: dict[
            str, "asyncio.Future[tuple[bool, dict[str, Any]]]"
        ] = {}
        self._ready: list[_Unit] = []
        self._running = 0
        self._active_requests = 0
        self._tenant_cost: dict[str, float] = {}
        self._seq = itertools.count()
        self._event_seq = itertools.count()
        self._subscribers: list["asyncio.Queue[Event | None]"] = []
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    # -- public API ----------------------------------------------------

    async def submit(
        self, request: FlowRequest,
    ) -> "asyncio.Task[FlowReport]":
        """Enqueue one request; returns the task resolving to its
        :class:`FlowReport` (it never raises for stage failures)."""
        self._bind_loop()
        return asyncio.get_running_loop().create_task(
            self._run_request(request)
        )

    async def gather(
        self, requests: Iterable[FlowRequest],
    ) -> list[FlowReport]:
        """Submit every request and await all reports, in order."""
        tasks = [await self.submit(request) for request in requests]
        return list(await asyncio.gather(*tasks))

    def run(self, requests: Iterable[FlowRequest]) -> list[FlowReport]:
        """Synchronous convenience wrapper around :meth:`gather`."""
        return asyncio.run(self.gather(list(requests)))

    async def stream_events(self) -> AsyncIterator[Event]:
        """Progress events until the service next goes idle.

        Yields ``request_submitted``, ``unit_start``, ``stage_done``,
        ``stage_skipped``, ``request_done`` and finally ``idle``
        events.  Event *content* mirrors deterministic state but event
        *order* follows real scheduling -- consume for progress, never
        for results.
        """
        queue: "asyncio.Queue[Event | None]" = asyncio.Queue()
        self._subscribers.append(queue)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    return
                yield event
                if event.get("type") == "idle":
                    return
        finally:
            self._subscribers.remove(queue)

    def close(self) -> None:
        """Shut down the worker pool and wake event subscribers."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for queue in list(self._subscribers):
            queue.put_nowait(None)

    def __enter__(self) -> "DesignService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request orchestration ----------------------------------------

    async def _run_request(self, request: FlowRequest) -> FlowReport:
        request_id = request.request_id
        self.stats.requests += 1
        self._active_requests += 1
        self._emit({"type": "request_submitted", "request": request_id,
                    "tenant": request.tenant, "design": request.design})
        try:
            stages = stage_closure(request.stages)
            blocks = sorted(request.blocks, key=lambda b: b.name)
            outcomes = await asyncio.gather(*[
                self._block_flow(request, stages, block)
                for block in blocks
            ])
            block_payloads: dict[str, Any] = {}
            errors: list[dict[str, Any]] = []
            for name, payload, block_errors in outcomes:
                block_payloads[name] = payload
                errors.extend(block_errors)
            errors.sort(key=canonical_json)
            body = dict(request.to_dict())
            body["request_id"] = request_id
            body["stages"] = list(stages)
            body["blocks"] = block_payloads
            body["errors"] = errors
            body["ok"] = not errors
            report = FlowReport(
                request_id=request_id, tenant=request.tenant,
                design=request.design,
                body=json.loads(canonical_json(body)),
            )
            self._emit({"type": "request_done", "request": request_id,
                        "tenant": request.tenant, "ok": report.ok,
                        "errors": len(errors)})
            return report
        finally:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._emit({"type": "idle"})

    async def _block_flow(
        self,
        request: FlowRequest,
        stages: tuple[str, ...],
        block: BlockSpec,
    ) -> tuple[str, dict[str, Any], list[dict[str, Any]]]:
        out: dict[str, Any] = {}
        errors: list[dict[str, Any]] = []
        request_id = request.request_id

        def record_error(stage: str, error: dict[str, Any],
                         corner: str | None = None) -> None:
            entry: dict[str, Any] = {
                "stage": stage, "block": block.name,
                "type": error["type"], "message": error["message"],
            }
            if corner is not None:
                entry["corner"] = corner
            errors.append(entry)

        def mark_skipped(stage: str, reason: str) -> None:
            out[stage] = {"skipped": reason}
            skipped = len(request.corners) if stage == "sta" else 1
            self.stats.units_skipped += skipped
            self._emit({"type": "stage_skipped", "request": request_id,
                        "tenant": request.tenant, "stage": stage,
                        "block": block.name, "reason": reason})

        ok, payload = await self._obtain(
            request, "assemble", block,
            unit_fingerprints("assemble", block, None),
            unit_config("assemble", request),
        )
        if not ok:
            out["assemble"] = {"error": payload}
            record_error("assemble", payload)
            for stage in stages:
                if stage != "assemble":
                    mark_skipped(stage, "dep_failed:assemble")
            return block.name, out, errors
        out["assemble"] = payload
        fingerprint = str(payload["fingerprint"])

        gate_tasks: dict[str, "asyncio.Task[bool]"] = {}

        async def run_stage(stage: str) -> bool:
            for dep in STAGE_DEFS[stage].deps:
                if dep == "assemble":
                    continue
                if not await gate_tasks[dep]:
                    mark_skipped(stage, f"dep_failed:{dep}")
                    return False
            config = unit_config(stage, request)
            stage_ok, stage_payload = await self._obtain(
                request, stage, block,
                unit_fingerprints(stage, block, fingerprint), config,
            )
            if stage_ok:
                out[stage] = stage_payload
            else:
                out[stage] = {"error": stage_payload}
                record_error(stage, stage_payload)
            return stage_ok

        sta_out: dict[str, Any] = {}

        async def run_sta(corner: str) -> None:
            config = unit_config("sta", request, corner)
            sta_ok, sta_payload = await self._obtain(
                request, "sta", block,
                unit_fingerprints("sta", block, fingerprint), config,
                corner=corner,
            )
            if sta_ok:
                sta_out[corner] = sta_payload
            else:
                sta_out[corner] = {"error": sta_payload}
                record_error("sta", sta_payload, corner)

        loop = asyncio.get_running_loop()
        for stage in stages:
            if stage in ("assemble", "sta"):
                continue
            gate_tasks[stage] = loop.create_task(run_stage(stage))
        sta_tasks = [
            loop.create_task(run_sta(corner))
            for corner in request.corners
        ] if "sta" in stages else []
        await asyncio.gather(*gate_tasks.values(), *sta_tasks)
        if "sta" in stages:
            out["sta"] = {corner: sta_out[corner]
                          for corner in sorted(sta_out)}
        return block.name, out, errors

    # -- unit resolution: store hit / coalesce / compute ---------------

    async def _obtain(
        self,
        request: FlowRequest,
        stage: str,
        block: BlockSpec,
        fingerprints: tuple[str, ...],
        config: dict[str, Any],
        corner: str | None = None,
    ) -> tuple[bool, dict[str, Any]]:
        self.stats.units_total += 1
        domain = f"service.{stage}"
        cached = self.store.get(domain, STAGE_VERSION, fingerprints,
                                config)
        if cached is not None:
            self.stats.units_store_hits += 1
            self._emit_done(request, stage, block.name, corner,
                            source="store", ok=True)
            return True, cached
        key = content_key(domain, STAGE_VERSION, fingerprints, config)
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.units_coalesced += 1
            ok, payload = await existing
            self._emit_done(request, stage, block.name, corner,
                            source="coalesced", ok=ok)
            return ok, payload
        future: "asyncio.Future[tuple[bool, dict[str, Any]]]" = \
            asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        unit = _Unit(
            key=key, stage=stage, block=block.name, corner=corner,
            tenant=request.tenant, cost=estimated_cost(stage, block),
            seq=next(self._seq),
            spec=make_unit_spec(stage, block, config),
            domain=domain, fingerprints=fingerprints, config=config,
            future=future,
        )
        self._ready.append(unit)
        self._kick()
        ok, payload = await future
        self._emit_done(request, stage, block.name, corner,
                        source="computed", ok=ok)
        return ok, payload

    # -- the dispatcher: bounded queue, fairness, LPT ------------------

    def _pick_next(self) -> _Unit:
        """Fairness first (least-served tenant), LPT second.

        Deterministic: ties break on tenant name then arrival
        sequence, so the schedule is a pure function of the submitted
        work -- results never depend on it, but reproducible
        schedules make performance triage sane.
        """
        best = min(
            self._ready,
            key=lambda unit: (
                self._tenant_cost.get(unit.tenant, 0.0),
                unit.tenant, -unit.cost, unit.seq,
            ),
        )
        self._ready.remove(best)
        self._tenant_cost[best.tenant] = \
            self._tenant_cost.get(best.tenant, 0.0) + best.cost
        return best

    def _kick(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        assert self._tick is not None
        self._tick.set()

    async def _dispatch_loop(self) -> None:
        tick = self._tick
        assert tick is not None
        while True:
            while self._ready and self._running < self.queue_depth:
                unit = self._pick_next()
                self._running += 1
                asyncio.get_running_loop().create_task(
                    self._run_unit(unit)
                )
            tick.clear()
            if self._ready and self._running < self.queue_depth:
                continue
            if not self._ready and self._running == 0:
                return
            await tick.wait()

    async def _run_unit(self, unit: _Unit) -> None:
        self._emit({"type": "unit_start", "stage": unit.stage,
                    "block": unit.block, "corner": unit.corner,
                    "tenant": unit.tenant})
        ok, payload = await self._execute(unit.spec)
        self.stats.units_executed += 1
        if ok:
            # Round-trip through canonical JSON so computed and
            # store-hit consumers see identical value types.
            payload = json.loads(canonical_json(payload))
            self.store.put(unit.domain, STAGE_VERSION,
                           unit.fingerprints, payload, unit.config)
        else:
            self.stats.units_failed += 1
        self._inflight.pop(unit.key, None)
        self._running -= 1
        unit.future.set_result((ok, payload))
        assert self._tick is not None
        self._tick.set()

    async def _execute(
        self, spec: dict[str, Any],
    ) -> tuple[bool, dict[str, Any]]:
        if self.workers > 1 and not self._pool_broken:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    return await asyncio.get_running_loop() \
                        .run_in_executor(pool, execute_unit_guarded,
                                         spec)
                except _POOL_ERRORS:
                    # Restricted environment or unpicklable work: the
                    # units are pure functions of their spec, so
                    # inline execution yields identical results.
                    self._pool_broken = True
        return execute_unit_guarded(spec)

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers
                )
            except _POOL_ERRORS:
                self._pool_broken = True
        return self._pool

    # -- events --------------------------------------------------------

    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        if self._active_requests or self._running or self._ready \
                or self._inflight:
            raise RuntimeError(
                "DesignService cannot move to a new event loop while "
                "requests are in flight"
            )
        self._loop = loop
        self._tick = asyncio.Event()
        self._dispatcher = None

    def _emit_done(
        self, request: FlowRequest, stage: str, block: str,
        corner: str | None, *, source: str, ok: bool,
    ) -> None:
        self._emit({"type": "stage_done",
                    "request": request.request_id,
                    "tenant": request.tenant, "stage": stage,
                    "block": block, "corner": corner,
                    "source": source, "ok": ok})

    def _emit(self, event: Event) -> None:
        if self.on_event is None and not self._subscribers:
            return
        event = dict(event)
        event["seq"] = next(self._event_seq)
        if self.on_event is not None:
            self.on_event(event)
        for queue in self._subscribers:
            queue.put_nowait(event)
