"""Flow requests: what a design-service tenant asks the shop to run.

A :class:`FlowRequest` is the service's unit of customer work: one
design variant (a set of :class:`BlockSpec` netlist recipes), the
stages to run on it, and the configuration knobs that change stage
results (corners, seeds, BMC depth, pattern budgets).  Requests are
frozen value objects whose :attr:`~FlowRequest.request_id` is a
content hash of exactly those fields, so identical asks -- from the
same tenant or different ones -- name the same work, and per-request
reports can be compared byte-for-byte across submission orders.

:func:`synthetic_tenant_mix` generates the benchmark workload: a
deterministic multi-tenant mix of DSC variants x corners x seeds x
stage subsets in which variants deliberately *share* block recipes,
the property the service's cross-request deduplication converts into
throughput.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from ..store import canonical_json

#: The service stages a request may ask for, in flow order.
DEFAULT_STAGES: tuple[str, ...] = (
    "assemble", "lint_gate", "analyze", "verify_props", "sta", "dft",
)


@dataclass(frozen=True)
class BlockSpec:
    """Recipe for one materialised block netlist.

    The recipe *is* the content: ``block_from_budget`` is
    deterministic, so ``(name, gate_budget, seed, node_um)`` pins the
    generated module exactly.  Two variants listing the same spec
    share every per-block stage result in the service.
    """

    name: str
    gate_budget: int
    seed: int = 0
    node_um: float = 0.25

    def __post_init__(self) -> None:
        if self.gate_budget < 1:
            raise ValueError(f"gate_budget must be >= 1 for {self.name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "gate_budget": int(self.gate_budget),
            "seed": int(self.seed),
            "node_um": float(self.node_um),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BlockSpec":
        return cls(
            name=str(data["name"]),
            gate_budget=int(data["gate_budget"]),
            seed=int(data["seed"]),
            node_um=float(data["node_um"]),
        )

    @property
    def recipe_fingerprint(self) -> str:
        """Content digest of the recipe -- the assemble-stage input."""
        body = canonical_json(["block-recipe", self.to_dict()])
        return hashlib.sha256(body.encode()).hexdigest()


@dataclass(frozen=True)
class FlowRequest:
    """One tenant's ask: a variant, its stages and its configuration."""

    tenant: str
    design: str
    blocks: tuple[BlockSpec, ...]
    stages: tuple[str, ...] = DEFAULT_STAGES
    corners: tuple[str, ...] = ("tt",)
    seed: int = 0
    bmc_depth: int = 3
    dft_patterns: int = 256
    scan_chains: int = 1
    clock_period_ps: float = 7500.0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a flow request needs at least one block")
        names = [block.name for block in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate block names in request: {names}")
        unknown = [s for s in self.stages if s not in DEFAULT_STAGES]
        if unknown:
            raise ValueError(
                f"unknown stages {unknown}; known: {list(DEFAULT_STAGES)}"
            )
        if not self.stages:
            raise ValueError("a flow request needs at least one stage")
        if "sta" in self.stages and not self.corners:
            raise ValueError("sta stage requested with no corners")

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "design": self.design,
            "blocks": [block.to_dict() for block in self.blocks],
            "stages": list(self.stages),
            "corners": list(self.corners),
            "seed": int(self.seed),
            "bmc_depth": int(self.bmc_depth),
            "dft_patterns": int(self.dft_patterns),
            "scan_chains": int(self.scan_chains),
            "clock_period_ps": float(self.clock_period_ps),
        }

    @property
    def request_id(self) -> str:
        """Content hash of the request -- stable across submission
        order, worker count and process, so reports key on it."""
        body = canonical_json(["flow-request", self.to_dict()])
        return hashlib.sha256(body.encode()).hexdigest()[:16]


#: DSC variant menu: block subsets of the paper's IP catalogue that
#: overlap on purpose (lcd_if / sd_mmc / sdram_ctrl recur), the way a
#: design-service shop reuses hardened blocks across customer SKUs.
DSC_VARIANTS: dict[str, tuple[str, ...]] = {
    "dsc_base": ("lcd_if", "sd_mmc", "sdram_ctrl"),
    "dsc_av": ("image_pipe", "tv_encoder", "lcd_if"),
    "dsc_connect": ("usb11", "sd_mmc", "system_fabric"),
    "dsc_full": ("lcd_if", "sd_mmc", "sdram_ctrl", "usb11", "tv_encoder"),
}

#: Corner menus the mix draws from (weighted towards signoff sets).
_CORNER_MENUS: tuple[tuple[str, ...], ...] = (
    ("tt",), ("ss", "ff"), ("ss", "tt", "ff"),
)

#: Stage subsets: most tenants want the full static flow, some only
#: the front half or a timing-only query.
_STAGE_MENUS: tuple[tuple[str, ...], ...] = (
    DEFAULT_STAGES,
    DEFAULT_STAGES,
    ("assemble", "lint_gate", "analyze"),
    ("assemble", "sta"),
)


def _catalog_budgets() -> dict[str, int]:
    from ..ip import dsc_ip_catalog

    return {
        ip.name: int(ip.gate_budget)
        for ip in dsc_ip_catalog()
        if not ip.is_analog and ip.gate_budget > 0
    }


def variant_blocks(
    variant: str, *, scale: float = 0.01, seed: int = 0,
) -> tuple[BlockSpec, ...]:
    """The block recipes of one named DSC variant.

    Block seeds derive from the block *name* (not the request), so
    every variant and every tenant materialises byte-identical modules
    for a shared block -- the invariant cross-request dedup keys on.
    """
    if variant not in DSC_VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; known: {sorted(DSC_VARIANTS)}"
        )
    budgets = _catalog_budgets()
    blocks = []
    for name in DSC_VARIANTS[variant]:
        gates = max(60, int(budgets[name] * scale))
        block_seed = seed + sum(name.encode()) % 97
        blocks.append(BlockSpec(name=name, gate_budget=gates,
                                seed=block_seed))
    return tuple(blocks)


def synthetic_tenant_mix(
    *,
    tenants: int = 4,
    requests_per_tenant: int = 3,
    scale: float = 0.01,
    seed: int = 0,
    stages: Sequence[str] | None = None,
    bmc_depth: int = 3,
    dft_patterns: int = 256,
) -> list[FlowRequest]:
    """Deterministic multi-tenant benchmark mix.

    ``tenants x requests_per_tenant`` requests over the
    :data:`DSC_VARIANTS` menu, with corners, request seeds and stage
    subsets drawn from a seeded stream.  Request seeds come from a
    two-value pool so verify_props/dft work recurs across tenants --
    the mixed-dedup case the service bench measures.
    """
    rng = random.Random(seed)
    variants = sorted(DSC_VARIANTS)
    mix: list[FlowRequest] = []
    for t_index in range(tenants):
        tenant = f"tenant{t_index:02d}"
        for _ in range(requests_per_tenant):
            variant = variants[rng.randrange(len(variants))]
            corners = _CORNER_MENUS[rng.randrange(len(_CORNER_MENUS))]
            req_stages = (tuple(stages) if stages is not None
                          else _STAGE_MENUS[rng.randrange(len(_STAGE_MENUS))])
            mix.append(FlowRequest(
                tenant=tenant,
                design=variant,
                blocks=variant_blocks(variant, scale=scale, seed=seed),
                stages=req_stages,
                corners=corners,
                seed=seed + rng.randrange(2),
                bmc_depth=bmc_depth,
                dft_patterns=dft_patterns,
            ))
    return mix


def iter_unique_blocks(
    requests: Sequence[FlowRequest],
) -> Iterator[BlockSpec]:
    """Every distinct block recipe across a request mix, sorted."""
    seen: set[BlockSpec] = set()
    for request in requests:
        for block in request.blocks:
            if block not in seen:
                seen.add(block)
    yield from sorted(seen, key=lambda b: (b.name, b.gate_budget,
                                           b.seed, b.node_um))
