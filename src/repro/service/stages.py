"""Stage work units: the schedulable atoms of a flow request.

A request decomposes into per-block (and, for STA, per-corner) *work
units*.  Each unit is a pure function of its spec -- a block recipe
plus a stage configuration -- executed by :func:`execute_unit` either
inline or inside a :mod:`repro.perf` pool worker.  Unit identity is
content-addressed: :func:`unit_fingerprints` + :func:`unit_config`
feed :func:`repro.store.content_key`, so two requests that need the
same ``(stage, module fingerprint, config)`` resolve to the same key
and the service computes it once.

The stage DAG here is the front half of
:data:`repro.core.flow.FLOW_STAGES` at per-block granularity::

    assemble --+--> lint_gate --> dft
               +--> analyze ---> verify_props
               +--> sta[corner...]

Worker processes keep a module memo keyed by recipe, so a pool worker
regenerates each block at most once per process lifetime -- the same
amortisation the compiled-sim program cache relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from .request import BlockSpec, FlowRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist import Module, StdCellLibrary

#: Bump to invalidate every cached stage payload (schema change).
STAGE_VERSION = "1"


@dataclass(frozen=True)
class StageDef:
    """One service stage: its gating deps and an LPT cost weight."""

    name: str
    deps: tuple[str, ...]
    #: Estimated cost per gate, used for LPT binning.  Calibrated from
    #: the bench block sweep (lint/analyze ~ linear in gates, fault
    #: sim the heaviest, STA the lightest per corner).
    weight: float


SERVICE_STAGES: tuple[StageDef, ...] = (
    StageDef("assemble", (), 0.3),
    StageDef("lint_gate", ("assemble",), 1.2),
    StageDef("analyze", ("assemble",), 1.1),
    StageDef("verify_props", ("analyze",), 0.8),
    StageDef("sta", ("assemble",), 0.4),
    StageDef("dft", ("lint_gate",), 2.2),
)

STAGE_DEFS: dict[str, StageDef] = {s.name: s for s in SERVICE_STAGES}

_STAGE_ORDER: dict[str, int] = {
    s.name: index for index, s in enumerate(SERVICE_STAGES)
}


def stage_closure(stages: Iterable[str]) -> tuple[str, ...]:
    """Dependency-closed stage set, in declared (flow) order."""
    wanted: set[str] = set()
    frontier = list(stages)
    while frontier:
        name = frontier.pop()
        if name in wanted:
            continue
        if name not in STAGE_DEFS:
            raise ValueError(
                f"unknown stage {name!r}; known: {sorted(STAGE_DEFS)}"
            )
        wanted.add(name)
        frontier.extend(STAGE_DEFS[name].deps)
    return tuple(sorted(wanted, key=_STAGE_ORDER.__getitem__))


def unit_config(
    stage: str, request: FlowRequest, corner: str | None = None,
) -> dict[str, Any]:
    """The configuration slice of ``request`` that ``stage`` sees.

    Only knobs that change the stage *result* appear here -- the
    config is half of the unit's content address, so anything
    irrelevant (tenant name, other stages' knobs) must stay out or
    dedup silently degrades.
    """
    if stage == "verify_props":
        return {"depth": int(request.bmc_depth), "seed": int(request.seed)}
    if stage == "sta":
        if corner is None:
            raise ValueError("sta units are per corner")
        return {"corner": corner,
                "clock_period_ps": float(request.clock_period_ps)}
    if stage == "dft":
        return {"patterns": int(request.dft_patterns),
                "seed": int(request.seed),
                "chains": int(request.scan_chains)}
    # assemble / lint_gate / analyze are pure functions of the module.
    return {}


def unit_fingerprints(
    stage: str, block: BlockSpec, module_fingerprint: str | None,
) -> tuple[str, ...]:
    """Input fingerprints of one unit.

    ``assemble`` is keyed by the block *recipe* (there is no module
    yet); every downstream stage is keyed by the module content
    fingerprint the assemble payload reported, so an ECO that leaves a
    block's content unchanged still hits.
    """
    if stage == "assemble":
        return (block.recipe_fingerprint,)
    if module_fingerprint is None:
        raise ValueError(f"stage {stage!r} needs the module fingerprint")
    return (module_fingerprint,)


def estimated_cost(stage: str, block: BlockSpec) -> float:
    """LPT cost estimate of one unit (arbitrary but stable units)."""
    return STAGE_DEFS[stage].weight * float(block.gate_budget)


def make_unit_spec(
    stage: str, block: BlockSpec, config: Mapping[str, Any],
) -> dict[str, Any]:
    """Picklable, JSON-able description of one unit of work."""
    return {"stage": stage, "block": block.to_dict(),
            "config": dict(config)}


# -- execution ------------------------------------------------------------

#: Per-process memo: block recipe -> materialised module.  Pool
#: workers live across units, so each worker pays netlist generation
#: once per distinct recipe.
_MODULE_CACHE: dict[tuple[str, int, int, float], "Module"] = {}
_LIBRARY_CACHE: dict[float, "StdCellLibrary"] = {}


def materialize_block(block: BlockSpec) -> "Module":
    """Deterministically (re)generate the block's netlist, memoised."""
    from ..netlist import make_default_library
    from ..netlist.generators import block_from_budget

    key = (block.name, block.gate_budget, block.seed, block.node_um)
    module = _MODULE_CACHE.get(key)
    if module is None:
        library = _LIBRARY_CACHE.get(block.node_um)
        if library is None:
            library = make_default_library(block.node_um)
            _LIBRARY_CACHE[block.node_um] = library
        module = block_from_budget(
            block.name, library, gate_budget=block.gate_budget,
            seed=block.seed,
        )
        _MODULE_CACHE[key] = module
    return module


def clear_module_cache() -> None:
    """Drop the per-process module memo (tests)."""
    _MODULE_CACHE.clear()


def _payload_assemble(block: BlockSpec,
                      config: Mapping[str, Any]) -> dict[str, Any]:
    from ..netlist import collect_stats

    module = materialize_block(block)
    stats = collect_stats(module)
    return {
        "fingerprint": module.fingerprint(),
        "gates": int(module.gate_count),
        "instances": int(stats.instance_count),
        "sequential": int(stats.sequential_count),
        "nets": int(stats.net_count),
        "ports": int(stats.port_count),
        "area_um2": float(stats.total_area_um2),
    }


def _payload_lint_gate(block: BlockSpec,
                       config: Mapping[str, Any]) -> dict[str, Any]:
    from ..lint import Severity, run_lint

    module = materialize_block(block)
    report = run_lint([module], design=block.name, workers=1)
    return {
        "errors": len(report.errors),
        "warnings": report.count(Severity.WARNING),
        "waived": len(report.waived),
        "findings": sorted(f.fingerprint for f in report.findings),
    }


def _payload_analyze(block: BlockSpec,
                     config: Mapping[str, Any]) -> dict[str, Any]:
    from ..lint import run_lint

    module = materialize_block(block)
    report = run_lint(
        [module], design=block.name,
        rules=["const", "dead", "divergence", "race"], workers=1,
    )
    by_category: dict[str, int] = {}
    for finding in report.findings:
        by_category[finding.category] = (
            by_category.get(finding.category, 0) + 1
        )
    return {
        "findings": len(report.findings),
        "by_category": dict(sorted(by_category.items())),
        "divergent_outputs": sum(
            1 for f in report.findings if f.rule_id == "DIV-001"
        ),
    }


def _payload_verify_props(block: BlockSpec,
                          config: Mapping[str, Any]) -> dict[str, Any]:
    from ..formal import check_properties, derive_properties

    module = materialize_block(block)
    props = derive_properties(module)
    if not any(p.kind != "assume" for p in props):
        return {"checked": 0, "counts": {}, "status": {}}
    report = check_properties(
        module, props, depth=int(config["depth"]), workers=1,
        seed=int(config["seed"]),
    )
    return {
        "checked": len(report.checks),
        "counts": {key: int(value)
                   for key, value in sorted(report.counts().items())},
        "status": {check.name: check.status
                   for check in sorted(report.checks,
                                       key=lambda c: c.name)},
    }


def _payload_sta(block: BlockSpec,
                 config: Mapping[str, Any]) -> dict[str, Any]:
    from ..sta import TimingConstraints, analyze_timing

    module = materialize_block(block)
    constraints = TimingConstraints(
        clock_period_ps=float(config["clock_period_ps"])
    )
    report = analyze_timing(
        module, constraints, corners=[str(config["corner"])],
        engine="vectorized", workers=1,
    )
    return {
        "corner": str(config["corner"]),
        "wns_ps": float(report.wns_ps),
        "hold_wns_ps": float(report.hold_wns_ps),
        "setup_clean": bool(report.setup_clean),
        "hold_clean": bool(report.hold_clean),
    }


def _payload_dft(block: BlockSpec,
                 config: Mapping[str, Any]) -> dict[str, Any]:
    import numpy as np

    from ..dft import (
        CombinationalView,
        collapse_faults,
        enumerate_faults,
        insert_scan,
        random_pattern_fault_sim,
    )

    module = materialize_block(block)
    scanned, scan_report = insert_scan(
        module, n_chains=int(config["chains"])
    )
    view = CombinationalView(scanned)
    faults = collapse_faults(scanned, enumerate_faults(scanned))
    patterns = int(config["patterns"])
    result = random_pattern_fault_sim(
        view, faults, rng=np.random.default_rng(int(config["seed"])),
        max_patterns=patterns, engine="compiled",
        batch_size=min(patterns, 4096),
    )
    return {
        "faults": len(faults),
        "detected": len(result.detected),
        "coverage": float(len(result.detected) / max(len(faults), 1)),
        "patterns": int(result.patterns_applied),
        "scan_flops": int(scan_report.total_scan_flops),
        "chains": len(scan_report.chains),
    }


_STAGE_FUNCS = {
    "assemble": _payload_assemble,
    "lint_gate": _payload_lint_gate,
    "analyze": _payload_analyze,
    "verify_props": _payload_verify_props,
    "sta": _payload_sta,
    "dft": _payload_dft,
}


def execute_unit(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Run one work unit; pure function of its spec."""
    stage = str(spec["stage"])
    func = _STAGE_FUNCS.get(stage)
    if func is None:
        raise ValueError(f"unknown stage {stage!r}")
    block = BlockSpec.from_dict(dict(spec["block"]))
    return func(block, dict(spec["config"]))


def execute_unit_guarded(
    spec: Mapping[str, Any],
) -> tuple[bool, dict[str, Any]]:
    """Like :func:`execute_unit` but failures come back structured.

    Returns ``(True, payload)`` or ``(False, error)`` where ``error``
    carries the exception type and message -- the per-request error
    record the service surfaces, instead of a pool traceback that
    poisons the whole batch.
    """
    try:
        return True, execute_unit(spec)
    except Exception as exc:  # noqa: BLE001 - surfaced structured
        return False, {
            "type": type(exc).__name__,
            "message": str(exc),
        }
