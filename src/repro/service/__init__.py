"""repro.service: the multi-tenant flow-as-a-service front end.

An asyncio :class:`DesignService` accepts a stream of
:class:`FlowRequest` objects (DSC variants x corners x seeds x stage
subsets), decomposes each into the per-block stage DAG, deduplicates
identical work units across requests, and schedules the rest onto
:mod:`repro.perf` pool workers behind a bounded queue.  Per-request
:class:`FlowReport` JSON is byte-identical for any worker count,
submission order and queue depth.
"""

from .request import (
    DEFAULT_STAGES,
    DSC_VARIANTS,
    BlockSpec,
    FlowRequest,
    iter_unique_blocks,
    synthetic_tenant_mix,
    variant_blocks,
)
from .service import DesignService, Event, FlowReport, ServiceStats
from .stages import (
    SERVICE_STAGES,
    STAGE_DEFS,
    STAGE_VERSION,
    StageDef,
    clear_module_cache,
    estimated_cost,
    execute_unit,
    execute_unit_guarded,
    make_unit_spec,
    materialize_block,
    stage_closure,
    unit_config,
    unit_fingerprints,
)

__all__ = [
    "DEFAULT_STAGES",
    "DSC_VARIANTS",
    "SERVICE_STAGES",
    "STAGE_DEFS",
    "STAGE_VERSION",
    "BlockSpec",
    "DesignService",
    "Event",
    "FlowReport",
    "FlowRequest",
    "ServiceStats",
    "StageDef",
    "clear_module_cache",
    "estimated_cost",
    "execute_unit",
    "execute_unit_guarded",
    "iter_unique_blocks",
    "make_unit_spec",
    "materialize_block",
    "stage_closure",
    "synthetic_tenant_mix",
    "unit_config",
    "unit_fingerprints",
    "variant_blocks",
]
