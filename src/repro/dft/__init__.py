"""Design-for-test: scan insertion, stuck-at fault simulation, ATPG."""

from .scan import (
    ScanChain,
    ScanDrcError,
    ScanReport,
    chain_integrity_test,
    chain_wirelength_um,
    insert_scan,
    placement_aware_chain_order,
    shift_in,
    shift_out,
)
from .faults import Fault, collapse_faults, enumerate_faults
from .faultsim import (
    CombinationalView,
    FaultSimResult,
    random_pattern_fault_sim,
    resolve_engine,
    simulate_single_pattern,
)
from .compiled import (
    FaultProgram,
    clear_fault_program_cache,
    compile_fault_program,
    grade_batch,
)
from .atpg import AtpgResult, run_atpg
from .diagnosis import (
    DiagnosisCandidate,
    DiagnosisResult,
    FailureSignature,
    FaultDictionary,
    build_dictionary,
)
from .hierarchical import (
    BlockTestSpec,
    ScheduledBlock,
    TestSchedule,
    dsc_block_test_specs,
    schedule_block_tests,
)

__all__ = [
    "ScanChain",
    "ScanDrcError",
    "ScanReport",
    "chain_integrity_test",
    "chain_wirelength_um",
    "insert_scan",
    "placement_aware_chain_order",
    "shift_in",
    "shift_out",
    "Fault",
    "collapse_faults",
    "enumerate_faults",
    "CombinationalView",
    "FaultSimResult",
    "random_pattern_fault_sim",
    "resolve_engine",
    "simulate_single_pattern",
    "FaultProgram",
    "clear_fault_program_cache",
    "compile_fault_program",
    "grade_batch",
    "AtpgResult",
    "run_atpg",
    "DiagnosisCandidate",
    "DiagnosisResult",
    "FailureSignature",
    "FaultDictionary",
    "build_dictionary",
    "BlockTestSpec",
    "ScheduledBlock",
    "TestSchedule",
    "dsc_block_test_specs",
    "schedule_block_tests",
]
