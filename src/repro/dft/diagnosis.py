"""Fault diagnosis: from failing test responses back to the defect.

Section 3: "manufacturing test uncovered that the yield killer (5%
loss) was in the insufficient driving strength of an output buffer in
the CPU."  Finding *which* circuit node is killing dies is diagnosis:
compare the tester's observed failing responses against the predicted
responses of every candidate fault (a fault dictionary) and rank
candidates by match quality.

This module implements dictionary-based diagnosis on the scan view:
build the dictionary with the bit-parallel fault simulator, observe a
'silicon' defect's signature, and rank.  The E8 story becomes fully
mechanical: inject the weak-driver fault, diagnose it from tester
data alone, and hand the located instance to the metal-ECO engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .faults import Fault
from .faultsim import CombinationalView


@dataclass(frozen=True)
class FailureSignature:
    """Per-pattern detection bits observed at the tester."""

    pattern_count: int
    #: For each applied pattern batch, the bitmask of failing patterns.
    failing_masks: tuple[int, ...]

    def matches(self, other: "FailureSignature") -> bool:
        return self.failing_masks == other.failing_masks

    def hamming_to(self, other: "FailureSignature") -> int:
        """Number of (pattern, fail/pass) disagreements."""
        distance = 0
        for mine, theirs in zip(self.failing_masks, other.failing_masks):
            distance += bin(mine ^ theirs).count("1")
        return distance


@dataclass
class DiagnosisCandidate:
    fault: Fault
    distance: int
    exact: bool


@dataclass
class DiagnosisResult:
    """Ranked candidates for one failing unit."""

    candidates: list[DiagnosisCandidate] = field(default_factory=list)

    @property
    def best(self) -> DiagnosisCandidate | None:
        return self.candidates[0] if self.candidates else None

    @property
    def exact_candidates(self) -> list[Fault]:
        return [c.fault for c in self.candidates if c.exact]

    def format_report(self, limit: int = 5) -> str:
        lines = ["Diagnosis candidates (best first):"]
        for candidate in self.candidates[:limit]:
            marker = "EXACT" if candidate.exact else f"d={candidate.distance}"
            lines.append(f"  {candidate.fault!s:32s} {marker}")
        return "\n".join(lines)


class FaultDictionary:
    """Predicted failure signatures for every candidate fault."""

    def __init__(
        self,
        view: CombinationalView,
        patterns: Sequence[Mapping[str, int]],
        faults: Sequence[Fault],
        *,
        batch_width: int = 64,
    ) -> None:
        """``patterns`` are packed pattern batches (as produced by
        :meth:`CombinationalView.random_patterns`), each covering
        ``batch_width`` patterns."""
        self.view = view
        self.patterns = list(patterns)
        self.faults = list(faults)
        self.batch_width = batch_width
        self._signatures: dict[Fault, FailureSignature] = {}
        self._good_values = [
            view.evaluate(packed, batch_width) for packed in self.patterns
        ]
        for fault in self.faults:
            masks = tuple(
                view.detect_mask(fault, good, batch_width)
                for good in self._good_values
            )
            self._signatures[fault] = FailureSignature(
                pattern_count=len(self.patterns) * batch_width,
                failing_masks=masks,
            )

    def signature_of(self, fault: Fault) -> FailureSignature:
        """The predicted tester signature of a candidate fault."""
        return self._signatures[fault]

    def observe(self, defect: Fault) -> FailureSignature:
        """Simulate 'silicon' with the defect and record what the
        tester sees (same computation, but conceptually this side is
        measurement)."""
        masks = tuple(
            self.view.detect_mask(defect, good, self.batch_width)
            for good in self._good_values
        )
        return FailureSignature(
            pattern_count=len(self.patterns) * self.batch_width,
            failing_masks=masks,
        )

    def diagnose(self, observed: FailureSignature, *, top: int = 10
                 ) -> DiagnosisResult:
        """Rank dictionary faults by signature distance.

        All exact (distance-0) matches are always returned -- they are
        indistinguishable equivalents of the defect and truncating
        them would hide the true site; ``top`` bounds only the
        inexact tail.
        """
        scored = []
        for fault, signature in self._signatures.items():
            distance = signature.hamming_to(observed)
            scored.append(
                DiagnosisCandidate(
                    fault=fault,
                    distance=distance,
                    exact=distance == 0,
                )
            )
        scored.sort(key=lambda c: (c.distance, str(c.fault)))
        exact_count = sum(1 for c in scored if c.exact)
        keep = max(top, exact_count)
        return DiagnosisResult(candidates=scored[:keep])


def build_dictionary(
    view: CombinationalView,
    faults: Sequence[Fault],
    *,
    n_batches: int = 4,
    batch_width: int = 64,
    seed: int = 0,
) -> FaultDictionary:
    """Convenience constructor with random patterns."""
    rng = np.random.default_rng(seed)
    patterns = [
        view.random_patterns(rng, batch_width) for _ in range(n_batches)
    ]
    return FaultDictionary(view, patterns, faults,
                           batch_width=batch_width)
