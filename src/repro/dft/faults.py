"""Stuck-at fault model and fault universe enumeration.

We use the single-stuck-at model on instance pins (the model behind
the paper's "fault coverage was 93%" figure).  Under full scan, every
flip-flop becomes a pseudo primary input (its Q) and pseudo primary
output (its D), so fault simulation and ATPG run purely on the
combinational network -- see :mod:`repro.dft.faultsim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..netlist import Module


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault at one instance pin.

    ``instance`` and ``pin`` name the site; ``stuck_at`` is 0 or 1.
    A fault on an output pin models the gate output stuck; a fault on
    an input pin models a defect on that pin's branch only (branch
    faults are distinct from the driving stem fault).
    """

    instance: str
    pin: str
    stuck_at: int

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError("stuck_at must be 0 or 1")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.instance}.{self.pin}/SA{self.stuck_at}"


def enumerate_faults(
    module: Module, *, include_sequential_pins: bool = False
) -> list[Fault]:
    """Build the full single-stuck-at universe for a module.

    By default only combinational-instance pins are enumerated: under
    full scan, flop D/Q faults are equivalent to faults on the
    combinational pins they connect to, and the scan path itself is
    covered by the chain integrity test.
    """
    faults: list[Fault] = []
    for inst in module.instances.values():
        if inst.cell.is_sequential and not include_sequential_pins:
            continue
        for pin in inst.cell.pins:
            for stuck in (0, 1):
                faults.append(Fault(inst.name, pin.name, stuck))
    return faults


def collapse_faults(module: Module, faults: Iterable[Fault]) -> list[Fault]:
    """Cheap structural fault collapsing.

    Applies the classic gate-level equivalences to shrink the fault
    list (reduces fault-simulation work without changing coverage
    semantics):

    * For an inverter/buffer, input faults are equivalent to output
      faults (with polarity flipped through an inverter) -- keep the
      output pair only.
    * For AND/NAND, input SA0s are equivalent to the output SA0 (SA1
      for NAND) -- keep one representative.
    * Dually for OR/NOR input SA1s.

    Collapsing is representative-based: coverage numbers computed on
    the collapsed list apply to the full list under equivalence.
    """
    drop: set[Fault] = set()
    for inst in module.instances.values():
        if inst.cell.is_sequential:
            continue
        family = inst.cell.footprint
        inputs = inst.cell.input_pins
        if family in ("INV", "BUF"):
            for stuck in (0, 1):
                drop.add(Fault(inst.name, inputs[0], stuck))
        elif family.startswith(("AND", "NAND")):
            for pin in inputs:
                drop.add(Fault(inst.name, pin, 0))
        elif family.startswith(("OR", "NOR")):
            for pin in inputs:
                drop.add(Fault(inst.name, pin, 1))
    return [f for f in faults if f not in drop]
