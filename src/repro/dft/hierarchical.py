"""Hierarchical DFT: chip-level test-access and scheduling.

Section 4 lists "hierarchical DFT and physical implementation" among
the capabilities the service provider built after this project.  At
chip level the problem is scheduling: every block has scan patterns
and MBIST runs; the tester offers a limited test-access-mechanism
(TAM) width and the die a power ceiling; blocks tested in parallel
must fit both.  This module allocates TAM width per block and packs
block tests into parallel sessions, reporting chip test time vs the
naive serial schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class BlockTestSpec:
    """Test requirements of one block."""

    name: str
    scan_flops: int
    patterns: int
    mbist_cycles: int = 0
    test_power_mw: float = 50.0

    def scan_cycles(self, chains: int) -> int:
        """Scan-test cycles with ``chains`` parallel chains: each
        pattern shifts chain_length bits plus one capture."""
        if chains < 1:
            raise ValueError("chains must be >= 1")
        chain_length = math.ceil(self.scan_flops / chains)
        return self.patterns * (chain_length + 1) + chain_length

    def total_cycles(self, chains: int) -> int:
        """Scan plus MBIST (MBIST runs from its own controller while
        the scan test of the same block is idle -- serial per block)."""
        return self.scan_cycles(chains) + self.mbist_cycles


@dataclass
class ScheduledBlock:
    spec: BlockTestSpec
    session: int
    chains: int
    cycles: int


@dataclass
class TestSchedule:
    """A complete chip test schedule."""

    __test__ = False  # not a pytest collection target

    tam_width: int
    power_limit_mw: float
    blocks: list[ScheduledBlock] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        if not self.blocks:
            return 0
        return max(b.session for b in self.blocks) + 1

    @property
    def total_cycles(self) -> int:
        """Chip test time: sum over sessions of the longest member."""
        per_session: dict[int, int] = {}
        for block in self.blocks:
            per_session[block.session] = max(
                per_session.get(block.session, 0), block.cycles
            )
        return sum(per_session.values())

    def serial_cycles(self) -> int:
        """The serial baseline: full TAM to one block at a time (the
        session gain comes from overlapping small blocks and MBIST)."""
        return sum(
            b.spec.total_cycles(min(self.tam_width, max(b.spec.scan_flops, 1)))
            for b in self.blocks
        )

    def flat_cycles(self) -> int:
        """The legacy non-hierarchical flow: one set of chip-level
        chains through *all* flops, every pattern shifting the full
        chain, plus all MBIST serially."""
        total_flops = sum(b.spec.scan_flops for b in self.blocks)
        total_patterns = max(
            (b.spec.patterns for b in self.blocks), default=0
        )
        # Flat ATPG needs the union of block patterns; overlap is
        # partial, so budget half the sum (but never fewer than the
        # largest block's own set).
        pattern_sum = sum(b.spec.patterns for b in self.blocks)
        patterns = max(total_patterns, pattern_sum // 2)
        chain_length = math.ceil(total_flops / max(self.tam_width, 1))
        mbist = sum(b.spec.mbist_cycles for b in self.blocks)
        return patterns * (chain_length + 1) + chain_length + mbist

    @property
    def speedup_vs_serial(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 1.0
        return self.serial_cycles() / total

    @property
    def speedup_vs_flat(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 1.0
        return self.flat_cycles() / total

    def format_report(self) -> str:
        lines = [
            f"Hierarchical test schedule (TAM {self.tam_width},"
            f" {self.power_limit_mw:.0f} mW limit)",
            f"  sessions   : {self.sessions}",
            f"  test time  : {self.total_cycles} cycles"
            f" (serial: {self.serial_cycles()},"
            f" flat: {self.flat_cycles()})",
            f"  speedup    : {self.speedup_vs_serial:.2f}x vs serial,"
            f" {self.speedup_vs_flat:.2f}x vs flat",
        ]
        for block in sorted(self.blocks, key=lambda b: (b.session,
                                                        -b.cycles)):
            lines.append(
                f"    s{block.session}: {block.spec.name:14s}"
                f" chains={block.chains:2d}  {block.cycles} cycles"
            )
        return "\n".join(lines)


def schedule_block_tests(
    specs: Sequence[BlockTestSpec],
    *,
    tam_width: int = 8,
    power_limit_mw: float = 400.0,
) -> TestSchedule:
    """Greedy rectangle packing of block tests into sessions.

    Longest block first; each session hands out TAM width
    proportionally to remaining demand and respects the power cap.
    Within a session every block gets at least one chain.
    """
    if tam_width < 1:
        raise ValueError("tam_width must be >= 1")
    schedule = TestSchedule(tam_width=tam_width,
                            power_limit_mw=power_limit_mw)
    remaining = sorted(specs, key=lambda s: -s.total_cycles(1))
    session = 0
    while remaining:
        members: list[BlockTestSpec] = []
        power = 0.0

        def volume(spec: BlockTestSpec) -> float:
            return max(spec.scan_flops * spec.patterns, 1)

        for spec in list(remaining):
            if len(members) >= tam_width:
                break
            if power + spec.test_power_mw > power_limit_mw:
                continue
            # Do not starve existing members: after adding, every
            # member's proportional TAM share must stay >= 1 chain,
            # or big blocks end up single-chained and the session
            # takes longer than testing them serially at full width.
            candidate = members + [spec]
            weights = [math.sqrt(volume(s)) for s in candidate]
            if len(candidate) > 1 and (
                tam_width * min(weights) / sum(weights) < 1.0
            ):
                continue
            members.append(spec)
            power += spec.test_power_mw
        if not members:
            raise ValueError(
                "power limit too low for any single block test"
            )
        for spec in members:
            remaining.remove(spec)
        # TAM split: weight by sqrt of scan volume (balances the
        # session completion times better than linear weighting).
        weights = [math.sqrt(max(s.scan_flops * s.patterns, 1))
                   for s in members]
        total_weight = sum(weights)
        chains_left = tam_width
        allocations: list[int] = []
        for index, spec in enumerate(members):
            if index == len(members) - 1:
                chains = max(1, chains_left)
            else:
                chains = max(1, int(round(
                    tam_width * weights[index] / total_weight
                )))
                chains = min(chains, chains_left - (len(members)
                                                    - index - 1))
            chains_left -= chains
            allocations.append(chains)
        for spec, chains in zip(members, allocations):
            schedule.blocks.append(
                ScheduledBlock(
                    spec=spec,
                    session=session,
                    chains=chains,
                    cycles=spec.total_cycles(chains),
                )
            )
        session += 1
    return schedule


def dsc_block_test_specs() -> list[BlockTestSpec]:
    """Test specs for the DSC controller's digital blocks.

    Scan flops ~18% of each block's gate budget; pattern counts sized
    for ~93% coverage of control-dominated logic; MBIST cycles from
    the March C- runs of the block's memories.
    """
    from ..ip import dsc_ip_catalog
    from ..mbist import MARCH_C_MINUS, dsc_memory_set

    memories = {m.name: m for m in dsc_memory_set()}
    memory_owner = {
        "line_buffer": "image_pipe", "jpeg_block": "jpeg_codec",
        "jpeg_qtable": "jpeg_codec", "jpeg_huff": "jpeg_codec",
        "cpu_icache": "risc_dsp", "cpu_dcache": "risc_dsp",
        "cpu_tcm": "risc_dsp", "usb_fifo": "usb11", "sd_fifo": "sd_mmc",
        "lcd_buffer": "lcd_if", "tv_line": "tv_encoder",
        "misc_reg": "system_fabric",
    }
    mbist_by_block: dict[str, int] = {}
    for name, macro in memories.items():
        prefix = name.rstrip("0123456789")
        owner = memory_owner.get(prefix, "system_fabric")
        mbist_by_block[owner] = (
            mbist_by_block.get(owner, 0)
            + MARCH_C_MINUS.test_cycles(macro.words)
        )

    specs = []
    for ip in dsc_ip_catalog():
        if ip.is_analog or ip.gate_budget == 0:
            continue
        scan_flops = max(8, int(ip.gate_budget * 0.18))
        patterns = max(64, ip.gate_budget // 400)
        specs.append(
            BlockTestSpec(
                name=ip.name,
                scan_flops=scan_flops,
                patterns=patterns,
                mbist_cycles=mbist_by_block.get(ip.name, 0),
                test_power_mw=20.0 + ip.gate_budget / 1000.0,
            )
        )
    return specs
