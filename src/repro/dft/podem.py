"""PODEM deterministic test-pattern generation.

A faithful, generic implementation of Goel's PODEM algorithm on the
full-scan combinational view: decisions are made only on (pseudo)
primary inputs, objectives are derived from fault activation and the
D-frontier, and a bounded backtrack search either produces a test
pattern, proves the fault untestable (decision tree exhausted), or
aborts at the backtrack limit.

Gate evaluation is truth-table based, so the algorithm works for every
cell in the library (AOI/OAI/MUX included) without per-family code.
Values are three-valued (0, 1, unknown) tracked separately for the
good and the faulty circuit -- the classic D notation, where a net
with good=1/faulty=0 carries ``D`` and good=0/faulty=1 carries ``D'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist.netlist import Instance
from .faults import Fault
from .faultsim import CombinationalView

_UNKNOWN = None

#: Three-valued net map: 0, 1 or unknown (None).
_Values = dict[str, Optional[int]]


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    fault: Fault
    status: str  # "detected" | "untestable" | "aborted"
    pattern: dict[str, int] | None = None
    decisions: int = 0
    backtracks: int = 0


class Podem:
    """PODEM engine bound to one combinational view."""

    def __init__(
        self, view: CombinationalView, *, backtrack_limit: int = 256
    ) -> None:
        self.view = view
        self.backtrack_limit = backtrack_limit
        module = view.module
        self._order = module.topological_combinational_order()
        self._pi_set = set(view.pseudo_inputs)
        self._po_set = set(view.pseudo_outputs)

    # -- three-valued gate evaluation ----------------------------------

    def _eval_gate(
        self, inst: Instance, in_values: list[Optional[int]]
    ) -> Optional[int]:
        """Evaluate one gate with possibly-unknown inputs.

        Returns 0/1 when every completion of the unknown inputs agrees,
        else ``None``.
        """
        minterms = self.view._minterms[inst.cell.name]
        n = len(in_values)
        unknown = [k for k, v in enumerate(in_values) if v is _UNKNOWN]
        if not unknown:
            key = tuple(in_values)
            return 1 if key in minterms else 0
        if len(unknown) > 8:
            return _UNKNOWN  # give up early; never happens with <=5-input cells
        seen0 = seen1 = False
        for fill in range(1 << len(unknown)):
            candidate = list(in_values)
            for bit_index, pos in enumerate(unknown):
                candidate[pos] = (fill >> bit_index) & 1
            if tuple(candidate) in minterms:
                seen1 = True
            else:
                seen0 = True
            if seen0 and seen1:
                return _UNKNOWN
        return 1 if seen1 else 0

    # -- full-circuit implication ---------------------------------------

    def _simulate(
        self, fault: Fault, assignment: dict[str, int]
    ) -> tuple[dict[str, Optional[int]], dict[str, Optional[int]]]:
        """Three-valued simulation of the good and faulty circuits."""
        good: dict[str, Optional[int]] = {}
        faulty: dict[str, Optional[int]] = {}
        for net in self.view.pseudo_inputs:
            value = assignment.get(net, _UNKNOWN)
            good[net] = value
            faulty[net] = value
        site = self.view.module.instances[fault.instance]
        for inst in self._order:
            out_net = inst.net_of(inst.cell.output_pins[0])
            g_in = [good.get(inst.net_of(p), _UNKNOWN)
                    for p in inst.cell.input_pins]
            f_in = [faulty.get(inst.net_of(p), _UNKNOWN)
                    for p in inst.cell.input_pins]
            if inst is site and inst.cell.pin(fault.pin).direction == "input":
                pin_index = inst.cell.input_pins.index(fault.pin)
                f_in[pin_index] = fault.stuck_at
            good[out_net] = self._eval_gate(inst, g_in)
            if inst is site and inst.cell.pin(fault.pin).direction == "output":
                faulty[out_net] = fault.stuck_at
            else:
                faulty[out_net] = self._eval_gate(inst, f_in)
        return good, faulty

    def _site_stem_net(self, fault: Fault) -> str:
        """The net whose good value must differ from the stuck value."""
        inst = self.view.module.instances[fault.instance]
        return inst.net_of(fault.pin)

    def _detected(self, good: _Values, faulty: _Values) -> bool:
        for net in self._po_set:
            g, f = good.get(net), faulty.get(net)
            if g is not _UNKNOWN and f is not _UNKNOWN and g != f:
                return True
        return False

    def _d_frontier(
        self, fault: Fault, good: _Values, faulty: _Values
    ) -> list[Instance]:
        """Gates with a fault effect on an input and an unknown output.

        For a branch (input-pin) fault the difference first exists
        *inside* the site gate, not on any net, so the site gate joins
        the frontier explicitly while its output is still unknown.
        """
        frontier: list[Instance] = []
        site = self.view.module.instances[fault.instance]
        site_is_branch = site.cell.pin(fault.pin).direction == "input"
        for inst in self._order:
            out_net = inst.net_of(inst.cell.output_pins[0])
            if good.get(out_net) is not _UNKNOWN \
                    and faulty.get(out_net) is not _UNKNOWN:
                continue
            if inst is site and site_is_branch:
                stem = good.get(self._site_stem_net(fault))
                if stem is not _UNKNOWN and stem != fault.stuck_at:
                    frontier.append(inst)
                    continue
            for pin in inst.cell.input_pins:
                net = inst.net_of(pin)
                g, f = faulty.get(net), good.get(net)
                if g is not _UNKNOWN and f is not _UNKNOWN and g != f:
                    frontier.append(inst)
                    break
        return frontier

    # -- objective and backtrace -----------------------------------------

    def _objective(
        self, fault: Fault, good: _Values, faulty: _Values
    ) -> Optional[tuple[str, int]]:
        """Next (net, value) objective, or None when stuck."""
        stem = self._site_stem_net(fault)
        stem_good = good.get(stem)
        if stem_good is _UNKNOWN:
            return stem, 1 - fault.stuck_at
        if stem_good == fault.stuck_at:
            return None  # activation impossible under current assignment
        frontier = self._d_frontier(fault, good, faulty)
        if not frontier:
            return None
        gate = frontier[0]
        for pin in gate.cell.input_pins:
            net = gate.net_of(pin)
            if good.get(net) is _UNKNOWN:
                # Aim for the value most likely to propagate: the
                # non-controlling value.  Generically: try 1 first for
                # AND-like cells, 0 for OR-like; approximate via the
                # fraction of minterms (cells rich in 1s want 0s...).
                minterms = self.view._minterms[gate.cell.name]
                rows = 1 << len(gate.cell.input_pins)
                want = 1 if len(minterms) <= rows // 2 else 0
                return net, want
        return None

    def _backtrace(
        self, net: str, value: int, good: _Values
    ) -> tuple[str, int]:
        """Walk an objective back to an unassigned primary input."""
        module = self.view.module
        current_net, current_value = net, value
        for _ in range(len(self._order) + 8):
            if current_net in self._pi_set:
                return current_net, current_value
            driver = module.nets[current_net].driver
            if driver is None:
                return current_net, current_value  # dangling: treat as PI
            inst = module.instances[driver.instance]
            if inst.cell.is_sequential:
                return current_net, current_value
            unknown_pins = [
                p for p in inst.cell.input_pins
                if good.get(inst.net_of(p)) is _UNKNOWN
            ]
            if not unknown_pins:
                # Everything below is assigned; can't influence further.
                return current_net, current_value
            pin = unknown_pins[0]
            pin_index = inst.cell.input_pins.index(pin)
            # Choose the input value that can still yield the desired
            # output given the currently-known inputs.
            desired = self._choose_input_value(
                inst, pin_index, current_value, good
            )
            current_net = inst.net_of(pin)
            current_value = desired
        return current_net, current_value

    def _choose_input_value(
        self,
        inst: Instance,
        pin_index: int,
        desired_output: int,
        good: _Values,
    ) -> int:
        minterms = set(self.view._minterms[inst.cell.name])
        pins = inst.cell.input_pins
        known = {
            k: good.get(inst.net_of(p))
            for k, p in enumerate(pins)
            if good.get(inst.net_of(p)) is not _UNKNOWN
        }
        for candidate in (1, 0):
            trial = dict(known)
            trial[pin_index] = candidate
            free = [k for k in range(len(pins)) if k not in trial]
            for fill in range(1 << len(free)):
                row = dict(trial)
                for bit_index, pos in enumerate(free):
                    row[pos] = (fill >> bit_index) & 1
                key = tuple(row[k] for k in range(len(pins)))
                output = 1 if key in minterms else 0
                if output == desired_output:
                    return candidate
        return 1  # arbitrary; backtracking will recover

    # -- main loop --------------------------------------------------------

    def generate(self, fault: Fault) -> PodemResult:
        """Run PODEM for one fault."""
        assignment: dict[str, int] = {}
        decision_stack: list[tuple[str, int, bool]] = []  # (pi, value, flipped)
        decisions = backtracks = 0

        while True:
            good, faulty = self._simulate(fault, assignment)
            if self._detected(good, faulty):
                return PodemResult(fault, "detected", dict(assignment),
                                   decisions, backtracks)
            objective = self._objective(fault, good, faulty)
            if objective is not None:
                net, value = objective
                pi, pi_value = self._backtrace(net, value, good)
                if pi not in self._pi_set or pi in assignment:
                    objective = None  # backtrace failed; treat as conflict
                else:
                    assignment[pi] = pi_value
                    decision_stack.append((pi, pi_value, False))
                    decisions += 1
                    continue
            # Conflict: flip the most recent unflipped decision.
            while decision_stack:
                pi, value, flipped = decision_stack.pop()
                del assignment[pi]
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(fault, "aborted", None,
                                           decisions, backtracks)
                    assignment[pi] = 1 - value
                    decision_stack.append((pi, 1 - value, True))
                    break
            else:
                return PodemResult(fault, "untestable", None,
                                   decisions, backtracks)
