"""Compiled word-parallel fault simulation: fused fault-cone programs.

The PR 1 word kernel (:mod:`repro.dft.faultsim`) already packs 64
patterns per ``uint64`` word, but it still walks fault sites in
Python: one :meth:`~repro.dft.faultsim.CombinationalView.detect_words_site`
call per site per batch, each a fresh chain of numpy dispatches over
that site's fanout cone.  This module takes the same route the PR 5
functional backend took -- compile once, sweep flat -- and applies it
to the *fault universe*:

* **Good program.**  The combinational network is levelized once
  (:func:`repro.sim.compiled.levelize_combinational` -- the same
  levelization the functional bit-plane engine uses, so level
  boundaries agree across engines by construction) and flattened into
  per-level literal matrices.  Patterns ride the 64 bit-lanes of each
  ``uint64`` word; one fancy-index + ``bitwise_and.reduce`` +
  ``bitwise_or.reduceat`` per level evaluates every gate across the
  whole batch.

* **Fault program.**  Every active fault gets a private *overlay
  slot* per gate in its fanout cone.  Stem (output-pin) faults are
  constant forces written onto the overlay before the sweep; branch
  (input-pin) faults are realized by folding the forced literal out
  of the site gate's minterm rows.  All cones are concatenated into
  one flat program sorted by level, so a single level sweep -- the
  same three numpy calls -- advances *every* faulty machine at once,
  and forces are injected at the level boundaries of the shared
  levelized program.  Detection is ``good ^ faulty`` at the
  observation points (pseudo outputs reached by each cone), OR-folded
  per fault with one ``reduceat``.

* **Fault dropping.**  A batch is graded in word *chunks* (64, 64,
  128, 256, ... patterns): after each chunk, newly detected faults
  leave the active universe and the program rows are re-selected once
  enough faults have dropped.  First-detecting-pattern attribution is
  exact -- dropping only ever skips work *after* a fault's first
  detection -- so results are bit-identical to grading the whole
  batch flat, and therefore to the reference kernels.

Programs are cached per view in a :class:`~weakref.WeakKeyDictionary`
(never pickled; pool workers rebuild their own), and the kernel
registers as ``engine="compiled"`` on
:func:`repro.dft.faultsim.random_pattern_fault_sim` /
:func:`repro.dft.atpg.run_atpg`.  Throughput counters report under
the ``dft.fault_sim.compiled`` perf stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from ..netlist.netlist import Instance
from ..perf import stage_timer
from ..sim.compiled import levelize_combinational
from .faults import Fault
from .faultsim import CombinationalView, _n_words, _WORD_BITS

__all__ = [
    "FaultProgram",
    "clear_fault_program_cache",
    "compile_fault_program",
    "compiled_batch_hits",
    "grade_batch",
]

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Once the active universe shrinks below this fraction of the
#: current row selection, the selection is rebuilt.  Rebuilding every
#: chunk would cost more than the stale rows it trims.
_RESELECT_RATIO = 0.5


def _first_set_bits(det: np.ndarray) -> np.ndarray:
    """Per row of a ``(faults, words)`` array: index of the lowest set
    bit, or -1 when the row is all zero.  Vectorized counterpart of
    :func:`repro.dft.faultsim._first_set_bit`."""
    nonzero = det != 0
    has_hit = nonzero.any(axis=1)
    word_index = np.argmax(nonzero, axis=1)
    word = det[np.arange(det.shape[0]), word_index]
    low = word & (~word + np.uint64(1))
    bit = np.zeros(det.shape[0], dtype=np.int64)
    hits = low != 0
    # low is a power of two; float64 represents 2**k exactly for
    # k < 64, so log2 recovers the bit index without a Python loop.
    bit[hits] = np.log2(low[hits].astype(np.float64)).astype(np.int64)
    return np.where(has_hit, word_index * _WORD_BITS + bit, -1)


class _GoodProgram:
    """Flat levelized program for the fault-free machine.

    Value layout: slot ``s`` of the value array owns rows ``2*s``
    (value) and ``2*s + 1`` (complement), so a literal is the single
    index ``2*slot + invert`` and no XOR pass is needed in the sweep.
    """

    def __init__(self, view: CombinationalView) -> None:
        self.view = view
        module = view.module
        self.net_slot: dict[str, int] = {
            net: index for index, net in enumerate(module.nets)
        }
        n_nets = len(self.net_slot)
        self.const0 = n_nets
        self.const1 = n_nets + 1
        self.n_slots = n_nets + 2
        self.pi_nets: list[str] = list(view.pseudo_inputs)
        self.pi_slots = np.array(
            [self.net_slot[net] for net in self.pi_nets], dtype=np.intp
        )

        #: reusable value/complement workspace (grow-only, see
        #: :meth:`evaluate`).
        self._values_buf: np.ndarray | None = None

        net_level, by_level = levelize_combinational(module)
        self.inst_level: dict[str, int] = {}
        self.levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for level_index, insts in enumerate(by_level):
            rows: list[list[int]] = []
            seg: list[int] = []
            out: list[int] = []
            for inst in insts:
                self.inst_level[inst.name] = level_index + 1
                seg.append(len(rows))
                rows.extend(self._instance_rows(inst))
                out.append(
                    self.net_slot[inst.net_of(inst.cell.output_pins[0])]
                )
            n_max = max(len(row) for row in rows)
            pad = self.const1 * 2  # constant-1 literal: AND identity
            lit = np.array(
                [row + [pad] * (n_max - len(row)) for row in rows],
                dtype=np.intp,
            )
            self.levels.append((
                lit,
                np.array(seg, dtype=np.intp),
                np.array(out, dtype=np.intp),
            ))

    def _instance_rows(self, inst: Instance) -> list[list[int]]:
        """Minterm literal rows (``2*slot + invert`` indices) for one
        instance; constant cells become a single const literal."""
        minterms = self.view._minterms[inst.cell.name]
        if not minterms:
            return [[self.const0 * 2]]
        if not minterms[0]:
            return [[self.const1 * 2]]
        in_slots = [
            self.net_slot[inst.net_of(pin)]
            for pin in inst.cell.input_pins
        ]
        return [
            [in_slots[j] * 2 + (0 if bit else 1)
             for j, bit in enumerate(minterm)]
            for minterm in minterms
        ]

    def pack_stimulus(
        self, bits: Mapping[str, np.ndarray], width: int
    ) -> np.ndarray:
        """Pack per-net 0/1 vectors into a ``(pseudo-inputs, words)``
        uint64 matrix with one :func:`numpy.packbits` call."""
        words = _n_words(width)
        stacked = np.zeros((len(self.pi_nets), words * _WORD_BITS),
                           dtype=np.uint8)
        for row, net in enumerate(self.pi_nets):
            vec = bits.get(net)
            if vec is not None:
                stacked[row, :width] = vec[:width]
        return np.packbits(stacked, axis=1, bitorder="little").view(
            np.uint64
        )

    def evaluate(self, bits: Mapping[str, np.ndarray],
                 width: int) -> np.ndarray:
        """Good-machine values for a batch: a ``(2 * n_slots, words)``
        value/complement array, every net evaluated.

        The workspace is reused across batches: undriven-net defaults
        (value 0, complement all-ones) and the constant slots are
        written once at (re)allocation and never touched again, while
        pseudo-input and gate-output rows are rewritten every call.
        The returned view is only valid until the next call.
        """
        words = _n_words(width)
        buf = self._values_buf
        if buf is None or buf.shape[1] < words:
            buf = np.zeros((self.n_slots * 2, words), dtype=np.uint64)
            buf[1::2] = _FULL  # complements of the all-zero default
            buf[self.const1 * 2] = _FULL
            buf[self.const1 * 2 + 1] = np.uint64(0)
            self._values_buf = buf
        values = buf[:, :words]
        packed = self.pack_stimulus(bits, width)
        values[self.pi_slots * 2] = packed
        values[self.pi_slots * 2 + 1] = ~packed
        for lit, seg, out in self.levels:
            acc = np.bitwise_or.reduceat(
                np.bitwise_and.reduce(values[lit], axis=1), seg, axis=0
            )
            values[out * 2] = acc
            values[out * 2 + 1] = ~acc
        return values


class _SiteTemplate:
    """Shared cone structure for every fault on one site.

    Rows cover the cone *downstream* of the site gate with overlay
    references encoded as negative slot codes; per-fault assembly only
    offsets them by the fault's overlay base, so the Python cost of
    building a universe is paid once per site, not once per fault.
    """

    def __init__(self, good: _GoodProgram, instance: str) -> None:
        view = good.view
        cone = view.fanout_cone(instance)
        overlay: dict[str, int] = {}
        for member in cone:
            overlay[member.net_of(member.cell.output_pins[0])] = len(overlay)
        self.overlay = overlay
        self.n_overlay = len(overlay)
        site = view.module.instances[instance]
        self.site_out_local = overlay[
            site.net_of(site.cell.output_pins[0])
        ]

        slot_rows: list[list[int]] = []
        inv_rows: list[list[int]] = []
        level_of_row: list[int] = []
        group_of_row: list[int] = []
        out_of_group: list[int] = []
        group = 0
        for member in cone:
            if member.name == instance:
                continue
            rows = self._member_rows(good, member)
            out_local = overlay[
                member.net_of(member.cell.output_pins[0])
            ]
            for slots, invs in rows:
                slot_rows.append(slots)
                inv_rows.append(invs)
                level_of_row.append(good.inst_level[member.name])
                group_of_row.append(group)
            out_of_group.append(out_local)
            group += 1
        self.n_groups = group
        n_max = max((len(row) for row in slot_rows), default=1)
        self.n_max = n_max
        n_rows = len(slot_rows)
        self.slot = np.array(
            [row + [good.const1] * (n_max - len(row)) for row in slot_rows],
            dtype=np.int64,
        ).reshape(n_rows, n_max)
        self.inv = np.array(
            [row + [0] * (n_max - len(row)) for row in inv_rows],
            dtype=np.int64,
        ).reshape(n_rows, n_max)
        self.level = np.array(level_of_row, dtype=np.int64)
        self.group = np.array(group_of_row, dtype=np.int64)
        self.out_local = np.array(out_of_group, dtype=np.int64)
        # Observation points this cone can reach.
        self.det_local = np.array(
            [overlay[net] for net in view.pseudo_outputs if net in overlay],
            dtype=np.int64,
        )
        self.det_good = np.array(
            [good.net_slot[net] for net in view.pseudo_outputs
             if net in overlay],
            dtype=np.int64,
        )

    def _member_rows(
        self, good: _GoodProgram, member: Instance
    ) -> list[tuple[list[int], list[int]]]:
        """(slot-codes, inverts) rows for a downstream cone member;
        cone-internal nets use negative overlay codes."""
        view = good.view
        minterms = view._minterms[member.cell.name]
        if not minterms:
            return [([good.const0], [0])]
        if not minterms[0]:
            return [([good.const1], [0])]
        pins = member.cell.input_pins
        rows: list[tuple[list[int], list[int]]] = []
        for minterm in minterms:
            slots: list[int] = []
            invs: list[int] = []
            for j, bit in enumerate(minterm):
                net = member.net_of(pins[j])
                local = self.overlay.get(net)
                slots.append(
                    good.net_slot[net] if local is None else -(local + 1)
                )
                invs.append(0 if bit else 1)
            rows.append((slots, invs))
        return rows


def _site_rows_for_fault(
    good: _GoodProgram, template: _SiteTemplate, fault: Fault
) -> list[tuple[list[int], list[int]]] | None:
    """Site-gate rows with the faulted input literal folded out, or
    ``None`` for a stem (output-pin) fault, which is a pure force."""
    view = good.view
    site = view.module.instances[fault.instance]
    if site.cell.pin(fault.pin).direction == "output":
        return None
    minterms = view._minterms[site.cell.name]
    pins = site.cell.input_pins
    rows: list[tuple[list[int], list[int]]] = []
    for minterm in minterms:
        slots: list[int] = []
        invs: list[int] = []
        contradicted = False
        for j, bit in enumerate(minterm):
            if pins[j] == fault.pin:
                if bit == fault.stuck_at:
                    continue  # forced literal is always true: drop it
                contradicted = True
                break
            net = site.net_of(pins[j])
            local = template.overlay.get(net)
            slots.append(
                good.net_slot[net] if local is None else -(local + 1)
            )
            invs.append(0 if bit else 1)
        if contradicted:
            continue
        if not slots:
            slots, invs = [good.const1], [0]
        rows.append((slots, invs))
    if not rows:
        rows.append(([good.const0], [0]))
    return rows


@dataclass
class _Selection:
    """Program rows restricted to the currently active faults."""

    #: per non-empty level: (literal matrix, reduceat segments,
    #: output slots) already sliced to active rows.
    levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    stem0: np.ndarray
    stem1: np.ndarray
    det_overlay: np.ndarray
    det_good: np.ndarray
    det_seg: np.ndarray
    det_faults: np.ndarray
    n_active: int
    n_rows: int


class FaultProgram:
    """A fused flat program covering one fault universe on one view."""

    def __init__(
        self, good: _GoodProgram, faults: Sequence[Fault],
        templates: dict[str, _SiteTemplate],
    ) -> None:
        self.good = good
        self.faults: list[Fault] = list(faults)
        self.fault_index: dict[Fault, int] = {
            fault: index for index, fault in enumerate(self.faults)
        }
        by_site: dict[str, list[Fault]] = {}
        for fault in self.faults:
            by_site.setdefault(fault.instance, []).append(fault)

        slot_parts: list[np.ndarray] = []
        inv_parts: list[np.ndarray] = []
        level_parts: list[np.ndarray] = []
        group_parts: list[np.ndarray] = []
        out_parts: list[np.ndarray] = []
        fid_parts: list[np.ndarray] = []
        det_overlay_parts: list[np.ndarray] = []
        det_good_parts: list[np.ndarray] = []
        det_fid_parts: list[np.ndarray] = []
        stem0: list[int] = []
        stem1: list[int] = []
        stem0_fid: list[int] = []
        stem1_fid: list[int] = []
        overlay_base = good.n_slots
        group_base = 0
        n_max = 1
        for site, site_faults in by_site.items():
            template = templates.get(site)
            if template is None:
                template = templates[site] = _SiteTemplate(good, site)
            n_max = max(n_max, template.n_max)
            site_level = good.inst_level[site]
            for fault in site_faults:
                fid = self.fault_index[fault]
                site_rows = _site_rows_for_fault(good, template, fault)
                site_out = overlay_base + template.site_out_local
                if site_rows is None:
                    (stem1 if fault.stuck_at else stem0).append(site_out)
                    (stem1_fid if fault.stuck_at else stem0_fid).append(fid)
                else:
                    count = len(site_rows)
                    width = max(
                        template.n_max,
                        max(len(slots) for slots, _ in site_rows),
                    )
                    n_max = max(n_max, width)
                    slots_arr = np.full((count, width), good.const1,
                                        dtype=np.int64)
                    inv_arr = np.zeros((count, width), dtype=np.int64)
                    for k, (slots, invs) in enumerate(site_rows):
                        slots_arr[k, : len(slots)] = slots
                        inv_arr[k, : len(invs)] = invs
                    slots_arr = np.where(
                        slots_arr < 0, overlay_base + (-slots_arr - 1),
                        slots_arr,
                    )
                    slot_parts.append(slots_arr)
                    inv_parts.append(inv_arr)
                    level_parts.append(
                        np.full(count, site_level, dtype=np.int64)
                    )
                    group_parts.append(
                        np.full(count, group_base, dtype=np.int64)
                    )
                    out_parts.append(
                        np.full(count, site_out, dtype=np.int64)
                    )
                    fid_parts.append(np.full(count, fid, dtype=np.int64))
                if template.slot.shape[0]:
                    slots_arr = np.where(
                        template.slot < 0,
                        overlay_base + (-template.slot - 1),
                        template.slot,
                    )
                    slot_parts.append(slots_arr)
                    inv_parts.append(template.inv)
                    level_parts.append(template.level)
                    group_parts.append(template.group + (group_base + 1))
                    out_parts.append(
                        template.out_local[template.group] + overlay_base
                    )
                    fid_parts.append(
                        np.full(template.slot.shape[0], fid, dtype=np.int64)
                    )
                group_base += template.n_groups + 1
                det_overlay_parts.append(template.det_local + overlay_base)
                det_good_parts.append(template.det_good)
                det_fid_parts.append(
                    np.full(template.det_local.size, fid, dtype=np.int64)
                )
                overlay_base += template.n_overlay
        self.n_slots = overlay_base
        self.stem0 = np.array(stem0, dtype=np.intp)
        self.stem1 = np.array(stem1, dtype=np.intp)
        self.stem0_fault = np.array(stem0_fid, dtype=np.int64)
        self.stem1_fault = np.array(stem1_fid, dtype=np.int64)

        def concat(parts: list[np.ndarray]) -> np.ndarray:
            if not parts:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate(parts)

        def concat_padded(
            parts: list[np.ndarray], fill: int
        ) -> np.ndarray:
            padded = []
            for part in parts:
                if part.shape[1] < n_max:
                    extra = np.full(
                        (part.shape[0], n_max - part.shape[1]), fill,
                        dtype=part.dtype,
                    )
                    part = np.concatenate([part, extra], axis=1)
                padded.append(part)
            if not padded:
                return np.zeros((0, n_max), dtype=np.int64)
            return np.concatenate(padded)

        slot = concat_padded(slot_parts, good.const1)
        inv = concat_padded(inv_parts, 0)
        level = concat(level_parts)
        order = np.argsort(level, kind="stable")
        level = level[order]
        #: literal matrix over the doubled value array: 2*slot + inv.
        self.lit = (slot[order] * 2 + inv[order]).astype(np.intp)
        self.group = concat(group_parts)[order]
        self.out_of_row = concat(out_parts)[order]
        self.fault_of_row = concat(fid_parts)[order]
        boundaries = np.flatnonzero(np.diff(level)) + 1
        self.level_bounds: list[tuple[int, int]] = [
            (int(a), int(b))
            for a, b in zip(
                np.concatenate([[0], boundaries]),
                np.concatenate([boundaries, [level.size]]),
            )
            if a != b
        ]
        self.det_overlay = concat(det_overlay_parts).astype(np.intp)
        self.det_good = concat(det_good_parts).astype(np.intp)
        self.det_fault = concat(det_fid_parts)
        #: precomputed full-universe selection: the first (and biggest)
        #: chunk of the first batch selects everything.
        self.full_selection = self.select(None)
        #: reusable sweep workspace and last (active-set, selection)
        #: pair; both grow-only caches owned by :func:`grade_batch`.
        self._chunk_buf: np.ndarray | None = None
        self._sel_cache: tuple[np.ndarray, _Selection] | None = None

    def select(self, active: np.ndarray | None) -> _Selection:
        """Restrict program rows to ``active`` faults (``None`` = all)."""
        if active is None:
            row_index = np.arange(self.fault_of_row.size)
            lit = self.lit
            group = self.group
            n_active = len(self.faults)
            det_index = np.arange(self.det_fault.size)
            stem0 = self.stem0
            stem1 = self.stem1
        else:
            row_index = np.flatnonzero(active[self.fault_of_row])
            lit = self.lit[row_index]
            group = self.group[row_index]
            n_active = int(np.count_nonzero(active))
            det_index = np.flatnonzero(active[self.det_fault])
            stem0 = self.stem0[active[self.stem0_fault]]
            stem1 = self.stem1[active[self.stem1_fault]]
        seg = np.flatnonzero(np.diff(group, prepend=-1))
        out = self.out_of_row[row_index][seg]
        levels: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for a, b in self.level_bounds:
            c = int(np.searchsorted(row_index, a))
            d = int(np.searchsorted(row_index, b))
            if c == d:
                continue
            in_level = (seg >= c) & (seg < d)
            levels.append((lit[c:d], seg[in_level] - c, out[in_level]))
        det_fault = self.det_fault[det_index]
        det_seg = np.flatnonzero(np.diff(det_fault, prepend=-1))
        return _Selection(
            levels=levels,
            stem0=stem0,
            stem1=stem1,
            det_overlay=self.det_overlay[det_index] * 2,
            det_good=self.det_good[det_index] * 2,
            det_seg=det_seg,
            det_faults=det_fault[det_seg],
            n_active=n_active,
            n_rows=int(row_index.size),
        )


def _chunk_bounds(words: int) -> list[tuple[int, int]]:
    """Doubling word-chunk schedule: 1, 1, 2, 4, ... words.  Early
    chunks are cheap and drop the bulk of the universe before the wide
    tail chunks run."""
    bounds: list[tuple[int, int]] = []
    start, size = 0, 1
    while start < words:
        end = min(words, start + size)
        bounds.append((start, end))
        start = end
        size *= 2
    return bounds


def grade_batch(
    program: FaultProgram,
    bits: Mapping[str, np.ndarray],
    width: int,
    remaining: Iterable[Fault],
    counters: dict[str, float] | None = None,
) -> dict[Fault, int]:
    """Grade one pattern batch: fault -> first detecting pattern index.

    Bit-identical to the reference kernels for the same stimulus; the
    chunked sweep only reorders *work*, never detection outcomes.
    When ``counters`` is given, fill-efficiency inputs (active vs
    capacity row-words) are accumulated into it.
    """
    good = program.good
    words = _n_words(width)
    tail = width % _WORD_BITS
    tail_mask = _FULL if tail == 0 else np.uint64((1 << tail) - 1)

    good_values = good.evaluate(bits, width)

    active = np.zeros(len(program.faults), dtype=bool)
    for fault in remaining:
        active[program.fault_index[fault]] = True
    n_active = int(np.count_nonzero(active))
    hits: dict[Fault, int] = {}
    if n_active == 0:
        return hits
    if n_active == len(program.faults):
        selection = program.full_selection
    else:
        # Reuse the previous batch's selection while the active set is
        # still a (not-too-much-smaller) subset of it; stale rows only
        # waste sweep work, never change outcomes -- dropped faults are
        # masked out of detection recording below.
        cached = program._sel_cache
        if (
            cached is not None
            and n_active >= cached[1].n_active * _RESELECT_RATIO
            and not np.any(active & ~cached[0])
        ):
            selection = cached[1]
        else:
            selection = program.select(active)
            program._sel_cache = (active.copy(), selection)
    # Chunking exists to shed dropped faults mid-batch; once the
    # universe is mostly dropped already, the per-chunk fixed costs
    # outweigh any further shedding -- sweep the batch in one go.
    # Either schedule grades identically (see docstring).
    if n_active * 16 <= len(program.faults):
        bounds = [(0, words)]
    else:
        bounds = _chunk_bounds(words)

    rows_capacity = 0
    rows_active = 0
    for start, end in bounds:
        if n_active == 0:
            break
        chunk_words = end - start
        if n_active < selection.n_active * _RESELECT_RATIO:
            selection = program.select(active)
            program._sel_cache = (active.copy(), selection)
        rows_capacity += program.lit.shape[0] * chunk_words
        rows_active += selection.n_rows * chunk_words

        buf = program._chunk_buf
        if buf is None or buf.shape[1] < chunk_words:
            buf = np.empty((program.n_slots * 2, words), dtype=np.uint64)
            program._chunk_buf = buf
        chunk = buf[:, :chunk_words]
        chunk[: good.n_slots * 2] = good_values[:, start:end]
        for force, value in ((selection.stem0, np.uint64(0)),
                             (selection.stem1, _FULL)):
            if force.size:
                chunk[force * 2] = value
                chunk[force * 2 + 1] = ~value
        for lit, seg, out in selection.levels:
            acc = np.bitwise_or.reduceat(
                np.bitwise_and.reduce(chunk[lit], axis=1), seg, axis=0
            )
            chunk[out * 2] = acc
            chunk[out * 2 + 1] = ~acc

        det = np.bitwise_or.reduceat(
            chunk[selection.det_overlay] ^ chunk[selection.det_good],
            selection.det_seg, axis=0,
        )
        if end == words:
            det[:, -1] &= tail_mask
        first = _first_set_bits(det)
        # A stale selection may still carry already-dropped faults;
        # they must not be re-recorded.
        hit = (first >= 0) & active[selection.det_faults]
        if hit.any():
            for fid, bit in zip(selection.det_faults[hit], first[hit]):
                hits[program.faults[fid]] = start * _WORD_BITS + int(bit)
            active[selection.det_faults[hit]] = False
            n_active -= int(np.count_nonzero(hit))

    if counters is not None:
        counters["row_words_active"] = (
            counters.get("row_words_active", 0.0) + rows_active
        )
        counters["row_words_capacity"] = (
            counters.get("row_words_capacity", 0.0) + rows_capacity
        )
    return hits


#: Per-view program cache: (site templates, good program, universe
#: program).  WeakKeyDictionary so views die naturally, and nothing
#: here is ever pickled -- pool workers rebuild from the view.
_CACHE: "WeakKeyDictionary[CombinationalView, tuple[_GoodProgram, dict[str, _SiteTemplate], list[FaultProgram]]]" = (
    WeakKeyDictionary()
)


def compile_fault_program(
    view: CombinationalView, faults: Sequence[Fault]
) -> FaultProgram:
    """Fetch (or build and cache) the fused program covering
    ``faults`` on ``view``.  A cached program is reused whenever it
    covers the requested universe -- campaigns shrink their fault list
    batch by batch, so one build serves the whole run."""
    entry = _CACHE.get(view)
    if entry is None:
        good = _GoodProgram(view)
        templates: dict[str, _SiteTemplate] = {}
        entry = (good, templates, [])
        _CACHE[view] = entry
    good, templates, programs = entry
    for program in programs:
        if all(fault in program.fault_index for fault in faults):
            return program
    program = FaultProgram(good, faults, templates)
    # Keep only the newest program: universes grow monotonically
    # within a flow (ATPG grades subsets of the fault-sim universe).
    programs.clear()
    programs.append(program)
    return program


def clear_fault_program_cache() -> None:
    """Drop every cached fault program (mainly for tests)."""
    _CACHE.clear()


def compiled_batch_hits(
    view: CombinationalView,
    bits: Mapping[str, np.ndarray],
    width: int,
    remaining: Sequence[Fault],
) -> dict[Fault, int]:
    """Batch kernel entry point registered as ``engine="compiled"``.

    Same signature and same results as
    :func:`repro.dft.faultsim._batch_first_hits_words`; reports
    throughput counters under ``dft.fault_sim.compiled``.
    """
    with stage_timer("dft.fault_sim.compiled") as stats:
        program = compile_fault_program(view, remaining)
        fill: dict[str, float] = {}
        hits = grade_batch(program, bits, width, remaining, counters=fill)
        stats.add(
            lane_patterns=float(width),
            faults_active=float(len(remaining)),
            faults_dropped=float(len(hits)),
            **fill,
        )
    return hits
