"""ATPG: random-pattern phase plus PODEM deterministic top-up.

The flow mirrors industrial practice on late-1990s control-dominated
designs like the paper's DSC controller: random patterns saturate in
the 80s, a PODEM phase (:mod:`repro.dft.podem`) targets the remaining
random-pattern-resistant faults one by one, proves some untestable
(redundant logic), and whatever aborts at the backtrack limit is
reported as untested.  The paper reports 93% coverage after scan
insertion -- experiment E4 regenerates that number on the synthetic
SoC netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..netlist import Module
from ..perf import stage_timer
from .faults import Fault, collapse_faults, enumerate_faults
from .faultsim import (
    CombinationalView,
    FaultSimResult,
    random_pattern_fault_sim,
    resolve_engine,
)
from .podem import Podem


@dataclass
class AtpgResult:
    """Final outcome of an ATPG run."""

    total_faults: int
    detected_random: int
    detected_deterministic: int
    undetected: list[Fault] = field(default_factory=list)
    untestable: list[Fault] = field(default_factory=list)
    patterns_random: int = 0
    patterns_deterministic: int = 0
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)

    @property
    def detected(self) -> int:
        return self.detected_random + self.detected_deterministic

    @property
    def coverage(self) -> float:
        """Detected / total (the paper's raw fault-coverage metric)."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    @property
    def test_efficiency(self) -> float:
        """Detected / (total - proven untestable)."""
        effective = self.total_faults - len(self.untestable)
        if effective <= 0:
            return 1.0
        return self.detected / effective

    @property
    def total_patterns(self) -> int:
        return self.patterns_random + self.patterns_deterministic

    def format_report(self) -> str:
        lines = [
            "ATPG summary",
            f"  fault universe      : {self.total_faults}",
            f"  random detected     : {self.detected_random}"
            f" ({self.patterns_random} patterns)",
            f"  deterministic extra : {self.detected_deterministic}"
            f" ({self.patterns_deterministic} patterns)",
            f"  proven untestable   : {len(self.untestable)}",
            f"  undetected (abort)  : {len(self.undetected)}",
            f"  fault coverage      : {self.coverage * 100:.1f}%",
            f"  test efficiency     : {self.test_efficiency * 100:.1f}%",
        ]
        return "\n".join(lines)


def _grade_pattern_scalar(
    view: CombinationalView,
    pattern: dict[str, int],
    candidates: Sequence[Fault],
) -> set[Fault]:
    """Reference single-pattern grading: big-int detect per fault."""
    good = view.evaluate(pattern, 1)
    return {
        fault for fault in candidates
        if view.detect_mask(fault, good, 1)
    }


def _grade_pattern_compiled(
    view: CombinationalView,
    pattern: dict[str, int],
    candidates: Sequence[Fault],
) -> set[Fault]:
    """Grade one PODEM pattern on the fused compiled program.

    One width-1 sweep of the (cached) fault program replaces the
    per-fault Python cone walk; detection outcomes are bit-identical
    to :func:`_grade_pattern_scalar`.
    """
    from .compiled import compiled_batch_hits

    bits = {
        net: np.array([pattern.get(net, 0)], dtype=np.uint8)
        for net in view.pseudo_inputs
    }
    return set(compiled_batch_hits(view, bits, 1, list(candidates)))


def _deterministic_phase(
    view: CombinationalView,
    undetected: Sequence[Fault],
    *,
    rng: np.random.Generator,
    backtrack_limit: int = 256,
    kernel: str = "bigint",
) -> tuple[set[Fault], list[Fault], int]:
    """PODEM phase with cross-fault dropping.

    Each PODEM pattern (unassigned inputs filled randomly) is fault-
    simulated against all still-pending faults, so one deterministic
    pattern often pays for several faults -- standard practice.
    ``kernel`` picks the grading path (``"compiled"`` grades the
    whole pending set in one fused sweep; anything else uses the
    scalar reference); the outcome is identical either way.
    Returns (detected, proven-untestable, patterns used).
    """
    engine = Podem(view, backtrack_limit=backtrack_limit)
    grade = (
        _grade_pattern_compiled if kernel == "compiled"
        else _grade_pattern_scalar
    )
    detected: set[Fault] = set()
    untestable: list[Fault] = []
    patterns_used = 0
    pending = list(undetected)
    while pending:
        fault = pending.pop(0)
        if fault in detected:
            continue
        outcome = engine.generate(fault)
        if outcome.status == "untestable":
            untestable.append(fault)
            continue
        if outcome.status == "aborted" or outcome.pattern is None:
            continue
        pattern = dict(outcome.pattern)
        for net in view.pseudo_inputs:
            if net not in pattern:
                pattern[net] = int(rng.integers(0, 2))
        patterns_used += 1
        candidates = [fault] + [f for f in pending if f not in detected]
        detected |= grade(view, pattern, candidates)
        pending = [f for f in pending if f not in detected]
    return detected, untestable, patterns_used


def run_atpg(
    module: Module,
    *,
    seed: int = 0,
    max_random_patterns: int = 2048,
    backtrack_limit: int = 256,
    collapse: bool = True,
    batch_size: int = 64,
    kernel: str = "words",
    engine: str | None = None,
    workers: int = 1,
) -> AtpgResult:
    """Full ATPG flow on a (scanned) module.

    The module should already contain scan flops (see
    :func:`repro.dft.insert_scan`); plain-flop modules work too -- the
    combinational view simply treats all flop boundaries as test
    points, which models perfect scan access.

    ``batch_size``, ``kernel``/``engine`` and ``workers`` tune fault
    simulation (see :func:`repro.dft.random_pattern_fault_sim`).
    ``engine="compiled"`` also grades PODEM candidate patterns on the
    fused compiled program instead of the per-fault scalar walk.
    Engine and worker count never change the result; ``batch_size``
    selects how many patterns are drawn per batch, so a different
    width applies a different (equally random) pattern stream.  The
    defaults match the historical behaviour pattern-for-pattern.
    """
    kernel = resolve_engine(engine, kernel)
    rng = np.random.default_rng(seed)
    view = CombinationalView(module)
    universe = enumerate_faults(module)
    if collapse:
        universe = collapse_faults(module, universe)

    random_result: FaultSimResult = random_pattern_fault_sim(
        view, universe, rng=rng, max_patterns=max_random_patterns,
        batch_size=batch_size, kernel=kernel, workers=workers,
    )
    undetected = [f for f in universe if f not in random_result.detected]
    with stage_timer("dft.atpg.podem") as stats:
        det_extra, untestable, det_patterns = _deterministic_phase(
            view, undetected, rng=rng, backtrack_limit=backtrack_limit,
            kernel=kernel,
        )
        stats.add(patterns=det_patterns, faults=len(undetected))
    still_undetected = [
        f for f in undetected if f not in det_extra and f not in untestable
    ]

    return AtpgResult(
        total_faults=len(universe),
        detected_random=len(random_result.detected),
        detected_deterministic=len(det_extra),
        undetected=still_undetected,
        untestable=untestable,
        patterns_random=random_result.patterns_applied,
        patterns_deterministic=det_patterns,
        coverage_curve=random_result.coverage_curve,
    )
