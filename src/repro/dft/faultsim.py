"""Bit-parallel stuck-at fault simulation on full-scan netlists.

Under full scan every flip-flop is a pseudo primary input (its Q net)
and pseudo primary output (its D net), so test generation reduces to
the combinational network between scan elements.
:class:`CombinationalView` extracts that network from a module and
evaluates it **bit-parallel**: each net's value across a batch of
patterns is one Python integer, one bit per pattern, and each cell is
evaluated from its precomputed truth table with bitwise operations.
Single-fault simulation then re-evaluates only the fanout cone of the
fault site -- the classic serial-fault / parallel-pattern scheme.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..netlist import Logic, Module
from ..netlist.netlist import Instance
from .faults import Fault


def _truth_minterms(cell) -> tuple[tuple[int, ...], ...]:
    """Input combinations (one tuple of 0/1 per input pin) for which a
    combinational cell outputs 1."""
    inputs = cell.input_pins
    minterms: list[tuple[int, ...]] = []
    for row in range(1 << len(inputs)):
        assignment = {
            pin: Logic((row >> k) & 1) for k, pin in enumerate(inputs)
        }
        if cell.evaluate(assignment) is Logic.ONE:
            minterms.append(tuple((row >> k) & 1 for k in range(len(inputs))))
    return tuple(minterms)


class CombinationalView:
    """The scan-test view of a module: combinational logic between
    pseudo primary inputs and pseudo primary outputs."""

    #: Input ports that are test infrastructure, not functional data.
    CONTROL_PORTS = ("clk", "scan_en")

    def __init__(self, module: Module) -> None:
        self.module = module
        self._order: list[Instance] = module.topological_combinational_order()
        self._minterms: dict[str, tuple[tuple[int, ...], ...]] = {}
        for inst in self._order:
            if inst.cell.name not in self._minterms:
                self._minterms[inst.cell.name] = _truth_minterms(inst.cell)

        flops = module.sequential_instances
        port_inputs = [
            name for name, p in module.ports.items()
            if p.direction == "input" and name not in self.CONTROL_PORTS
            and not name.startswith("scan_in")
        ]
        self.pseudo_inputs: list[str] = port_inputs + sorted(
            f.net_of("Q") for f in flops
        )
        port_outputs = [
            name for name, p in module.ports.items()
            if p.direction == "output" and not name.startswith("scan_out")
        ]
        self.pseudo_outputs: list[str] = port_outputs + sorted(
            f.net_of(f.cell.data_pin) for f in flops
        )
        # Fanout adjacency: net -> combinational instances loading it.
        self._net_loads: dict[str, list[str]] = {}
        for inst in self._order:
            for pin in inst.cell.input_pins:
                self._net_loads.setdefault(inst.net_of(pin), []).append(inst.name)
        self._topo_index = {inst.name: k for k, inst in enumerate(self._order)}

    # -- evaluation ---------------------------------------------------

    def random_patterns(
        self, rng: np.random.Generator, count: int
    ) -> dict[str, int]:
        """Pack ``count`` random patterns: one integer per pseudo input,
        bit *k* of each integer is pattern *k*'s value."""
        packed: dict[str, int] = {}
        for net in self.pseudo_inputs:
            bits = rng.integers(0, 2, size=count, dtype=np.uint8)
            packed[net] = int.from_bytes(
                np.packbits(bits, bitorder="little").tobytes(), "little"
            )
        return packed

    def _eval_instance(self, inst: Instance, values: Mapping[str, int],
                       mask: int, forced_pin: str | None = None,
                       forced_value: int = 0) -> int:
        minterms = self._minterms[inst.cell.name]
        pins = inst.cell.input_pins
        in_values = []
        for pin in pins:
            if pin == forced_pin:
                in_values.append(forced_value)
            else:
                in_values.append(values.get(inst.net_of(pin), 0))
        out = 0
        for minterm in minterms:
            term = mask
            for bit, value in zip(minterm, in_values):
                term &= value if bit else (~value & mask)
                if not term:
                    break
            out |= term
        return out

    def evaluate(
        self, packed_inputs: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Evaluate all nets for a packed batch of ``width`` patterns."""
        mask = (1 << width) - 1
        values: dict[str, int] = {
            net: packed_inputs.get(net, 0) for net in self.pseudo_inputs
        }
        for inst in self._order:
            out_net = inst.net_of(inst.cell.output_pins[0])
            values[out_net] = self._eval_instance(inst, values, mask)
        return values

    # -- fault machinery ------------------------------------------------

    def fanout_cone(self, start_instance: str) -> list[Instance]:
        """Combinational instances affected by ``start_instance``'s
        output, in topological order (including the start)."""
        seen = {start_instance}
        queue = deque([start_instance])
        while queue:
            name = queue.popleft()
            inst = self.module.instances[name]
            if inst.cell.is_sequential:
                continue
            out_net = inst.net_of(inst.cell.output_pins[0])
            for load in self._net_loads.get(out_net, ()):
                if load not in seen:
                    seen.add(load)
                    queue.append(load)
        members = [self.module.instances[n] for n in seen
                   if not self.module.instances[n].cell.is_sequential]
        members.sort(key=lambda i: self._topo_index[i.name])
        return members

    def support(self, instance: str) -> list[str]:
        """Pseudo inputs in the transitive fanin of an instance."""
        pi_set = set(self.pseudo_inputs)
        found: set[str] = set()
        seen_inst = {instance}
        queue = deque([instance])
        while queue:
            inst = self.module.instances[queue.popleft()]
            if inst.cell.is_sequential:
                continue
            for pin in inst.cell.input_pins:
                net = self.module.nets[inst.net_of(pin)]
                if net.name in pi_set:
                    found.add(net.name)
                if net.driver is not None:
                    drv = net.driver.instance
                    if drv not in seen_inst:
                        driver_inst = self.module.instances[drv]
                        if driver_inst.cell.is_sequential:
                            # its Q net is a pseudo input, caught above
                            continue
                        seen_inst.add(drv)
                        queue.append(drv)
        return sorted(found)

    def detect_mask(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        width: int,
    ) -> int:
        """Bitmask of patterns (within the evaluated batch) that detect
        ``fault``, given the good-circuit net values."""
        mask = (1 << width) - 1
        inst = self.module.instances[fault.instance]
        stuck = mask if fault.stuck_at else 0
        overlay: dict[str, int] = {}

        def value_of(net: str) -> int:
            if net in overlay:
                return overlay[net]
            return good_values.get(net, 0)

        direction = inst.cell.pin(fault.pin).direction
        if direction == "output":
            out_net = inst.net_of(fault.pin)
            if value_of(out_net) == stuck:
                return 0  # fault never activated in this batch
            overlay[out_net] = stuck
        else:
            faulty = self._eval_instance(
                inst, _OverlayView(overlay, good_values), mask,
                forced_pin=fault.pin, forced_value=stuck,
            )
            out_net = inst.net_of(inst.cell.output_pins[0])
            if faulty == good_values.get(out_net, 0):
                return 0
            overlay[out_net] = faulty

        for member in self.fanout_cone(fault.instance):
            if member.name == fault.instance:
                continue
            new = self._eval_instance(
                member, _OverlayView(overlay, good_values), mask
            )
            member_out = member.net_of(member.cell.output_pins[0])
            if new != good_values.get(member_out, 0):
                overlay[member_out] = new

        detected = 0
        for net in self.pseudo_outputs:
            if net in overlay:
                detected |= overlay[net] ^ good_values.get(net, 0)
        return detected & mask


class _OverlayView(dict):
    """Read-through overlay: fault values shadow good values."""

    def __init__(self, overlay: dict[str, int], base: Mapping[str, int]):
        super().__init__()
        self._overlay = overlay
        self._base = base

    def get(self, key: str, default: int = 0) -> int:
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key, default)


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation campaign."""

    total_faults: int
    detected: set[Fault] = field(default_factory=set)
    patterns_applied: int = 0
    #: (cumulative patterns, cumulative coverage) after each batch.
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)
    #: Patterns that detected at least one new fault (test set).
    effective_patterns: list[dict[str, int]] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return len(self.detected) / self.total_faults


def random_pattern_fault_sim(
    view: CombinationalView,
    faults: Sequence[Fault],
    *,
    rng: np.random.Generator,
    max_patterns: int = 4096,
    batch_size: int = 64,
    target_coverage: float | None = None,
) -> FaultSimResult:
    """Random-pattern fault simulation with fault dropping.

    Applies batches of random patterns until ``max_patterns`` is
    reached or ``target_coverage`` is met; detected faults are dropped
    from further simulation.
    """
    result = FaultSimResult(total_faults=len(faults))
    remaining: list[Fault] = list(faults)
    while result.patterns_applied < max_patterns and remaining:
        width = min(batch_size, max_patterns - result.patterns_applied)
        packed = view.random_patterns(rng, width)
        good = view.evaluate(packed, width)
        newly_detected: set[Fault] = set()
        detecting_bits = 0
        for fault in remaining:
            hit = view.detect_mask(fault, good, width)
            if hit:
                newly_detected.add(fault)
                detecting_bits |= hit & (-hit)  # keep first detecting pattern
        remaining = [f for f in remaining if f not in newly_detected]
        result.detected |= newly_detected
        result.patterns_applied += width
        result.coverage_curve.append((result.patterns_applied, result.coverage))
        if newly_detected:
            result.effective_patterns.append(packed)
        if target_coverage is not None and result.coverage >= target_coverage:
            break
    return result


def simulate_single_pattern(
    view: CombinationalView,
    pattern: Mapping[str, int],
    faults: Iterable[Fault],
) -> set[Fault]:
    """Which of ``faults`` does one (unpacked, 1-bit) pattern detect?"""
    good = view.evaluate(pattern, 1)
    return {f for f in faults if view.detect_mask(f, good, 1)}
