"""Bit-parallel stuck-at fault simulation on full-scan netlists.

Under full scan every flip-flop is a pseudo primary input (its Q net)
and pseudo primary output (its D net), so test generation reduces to
the combinational network between scan elements.
:class:`CombinationalView` extracts that network from a module and
evaluates it **bit-parallel**: each net's value across a batch of
patterns is one packed bit-vector, one bit per pattern, and each cell
is evaluated from its precomputed truth table with bitwise operations.
Single-fault simulation then re-evaluates only the fanout cone of the
fault site -- the classic serial-fault / parallel-pattern scheme.

Two interchangeable packed representations are provided:

* the original **big-int kernel** (one Python integer per net), the
  scalar reference path;
* a **numpy ``uint64`` word-array kernel** (one array of 64-bit words
  per net), which removes the practical 64-pattern batch cap and is
  the default for :func:`random_pattern_fault_sim`.

Both produce bit-identical detected-fault sets for the same RNG seed.
Fanout cones and supports are memoized per instance, and
:func:`random_pattern_fault_sim` can fan the fault list out over a
process pool (:mod:`repro.perf`) with a deterministic merge, so the
result is independent of worker count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..netlist import Logic, Module
from ..netlist.library import Cell
from ..netlist.netlist import Instance
from ..perf import fanout, stage_timer
from .faults import Fault

_WORD_BITS = 64

#: Truth tables cached per Cell at module level: repeated
#: CombinationalView construction (benchmarks build many views over
#: the same library) reuses them instead of re-enumerating 2^n rows.
_TRUTH_CACHE: dict[Cell, tuple[tuple[int, ...], ...]] = {}


def _truth_minterms(cell: Cell) -> tuple[tuple[int, ...], ...]:
    """Input combinations (one tuple of 0/1 per input pin) for which a
    combinational cell outputs 1.  Cached per cell."""
    cached = _TRUTH_CACHE.get(cell)
    if cached is not None:
        return cached
    inputs = cell.input_pins
    minterms: list[tuple[int, ...]] = []
    for row in range(1 << len(inputs)):
        assignment = {
            pin: Logic((row >> k) & 1) for k, pin in enumerate(inputs)
        }
        if cell.evaluate(assignment) is Logic.ONE:
            minterms.append(tuple((row >> k) & 1 for k in range(len(inputs))))
    result = tuple(minterms)
    _TRUTH_CACHE[cell] = result
    return result


def _n_words(width: int) -> int:
    return (width + _WORD_BITS - 1) // _WORD_BITS


def _pack_words(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 ``uint8`` vector into little-endian ``uint64`` words
    (bit *k* of the vector is bit ``k % 64`` of word ``k // 64``)."""
    packed = np.packbits(bits, bitorder="little")
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    return packed.view(np.uint64)


def _pack_bigint(bits: np.ndarray) -> int:
    """Pack a 0/1 ``uint8`` vector into one Python big integer."""
    return int.from_bytes(
        np.packbits(bits, bitorder="little").tobytes(), "little"
    )


def _first_set_bit(words: np.ndarray) -> int | None:
    """Index of the lowest set bit across a word array, or ``None``."""
    nonzero = np.flatnonzero(words)
    if nonzero.size == 0:
        return None
    word_index = int(nonzero[0])
    word = int(words[word_index])
    return word_index * _WORD_BITS + ((word & -word).bit_length() - 1)


class CombinationalView:
    """The scan-test view of a module: combinational logic between
    pseudo primary inputs and pseudo primary outputs."""

    #: Input ports that are test infrastructure, not functional data.
    CONTROL_PORTS = ("clk", "scan_en")

    def __init__(self, module: Module) -> None:
        self.module = module
        self._order: list[Instance] = module.topological_combinational_order()
        self._minterms: dict[str, tuple[tuple[int, ...], ...]] = {}
        for inst in self._order:
            if inst.cell.name not in self._minterms:
                self._minterms[inst.cell.name] = _truth_minterms(inst.cell)

        flops = module.sequential_instances
        port_inputs = [
            name for name, p in module.ports.items()
            if p.direction == "input" and name not in self.CONTROL_PORTS
            and not name.startswith("scan_in")
        ]
        self.pseudo_inputs: list[str] = port_inputs + sorted(
            f.net_of("Q") for f in flops
        )
        port_outputs = [
            name for name, p in module.ports.items()
            if p.direction == "output" and not name.startswith("scan_out")
        ]
        self.pseudo_outputs: list[str] = port_outputs + sorted(
            f.net_of(f.cell.data_pin) for f in flops
        )
        # Fanout adjacency: net -> combinational instances loading it.
        self._net_loads: dict[str, list[str]] = {}
        for inst in self._order:
            for pin in inst.cell.input_pins:
                self._net_loads.setdefault(inst.net_of(pin), []).append(inst.name)
        self._topo_index = {inst.name: k for k, inst in enumerate(self._order)}
        # Per-instance memos: a fault-sim campaign queries the same
        # cones for every fault in every batch.
        self._cone_cache: dict[str, tuple[Instance, ...]] = {}
        self._support_cache: dict[str, tuple[str, ...]] = {}
        self._mask_cache: dict[int, np.ndarray] = {}
        # Hot-loop lookups for the word kernel: input/output net names
        # per instance and minterm literal-row matrices per cell.
        self._in_nets: dict[str, tuple[str, ...]] = {}
        self._out_net: dict[str, str] = {}
        for inst in self._order:
            self._in_nets[inst.name] = tuple(
                inst.net_of(pin) for pin in inst.cell.input_pins
            )
            self._out_net[inst.name] = inst.net_of(inst.cell.output_pins[0])
        self._minterm_rows: dict[str, np.ndarray | None] = {}
        for cell_name, minterms in self._minterms.items():
            if not minterms or not minterms[0]:
                # Constant cells (no inputs): handled without a matrix.
                self._minterm_rows[cell_name] = None
                continue
            n_inputs = len(minterms[0])
            # Literal row j is input j, row n_inputs + j its inversion.
            self._minterm_rows[cell_name] = np.array(
                [[j if bit else n_inputs + j
                  for j, bit in enumerate(minterm)]
                 for minterm in minterms],
                dtype=np.intp,
            )

    def __getstate__(self) -> dict[str, Any]:
        # Drop memo caches when shipping the view to pool workers;
        # each worker rebuilds them as it simulates.
        state = self.__dict__.copy()
        state["_cone_cache"] = {}
        state["_support_cache"] = {}
        state["_mask_cache"] = {}
        return state

    # -- evaluation ---------------------------------------------------

    def random_pattern_bits(
        self, rng: np.random.Generator, count: int
    ) -> dict[str, np.ndarray]:
        """``count`` random patterns as unpacked 0/1 vectors per
        pseudo input (the common source for both packed kernels)."""
        return {
            net: rng.integers(0, 2, size=count, dtype=np.uint8)
            for net in self.pseudo_inputs
        }

    def random_patterns(
        self, rng: np.random.Generator, count: int
    ) -> dict[str, int]:
        """Pack ``count`` random patterns: one integer per pseudo input,
        bit *k* of each integer is pattern *k*'s value."""
        return {
            net: _pack_bigint(bits)
            for net, bits in self.random_pattern_bits(rng, count).items()
        }

    def _eval_instance(self, inst: Instance, values: Mapping[str, int],
                       mask: int, forced_pin: str | None = None,
                       forced_value: int = 0) -> int:
        minterms = self._minterms[inst.cell.name]
        pins = inst.cell.input_pins
        in_values = []
        for pin in pins:
            if pin == forced_pin:
                in_values.append(forced_value)
            else:
                in_values.append(values.get(inst.net_of(pin), 0))
        out = 0
        for minterm in minterms:
            term = mask
            for bit, value in zip(minterm, in_values):
                term &= value if bit else (~value & mask)
                if not term:
                    break
            out |= term
        return out

    def evaluate(
        self, packed_inputs: Mapping[str, int], width: int
    ) -> dict[str, int]:
        """Evaluate all nets for a packed batch of ``width`` patterns."""
        mask = (1 << width) - 1
        values: dict[str, int] = {
            net: packed_inputs.get(net, 0) for net in self.pseudo_inputs
        }
        for inst in self._order:
            out_net = inst.net_of(inst.cell.output_pins[0])
            values[out_net] = self._eval_instance(inst, values, mask)
        return values

    # -- word-array (numpy uint64) kernel -----------------------------

    def _mask_words(self, width: int) -> np.ndarray:
        """All-ones mask for ``width`` patterns (cached; do not mutate)."""
        mask = self._mask_cache.get(width)
        if mask is None:
            mask = np.full(_n_words(width), np.uint64(0xFFFFFFFFFFFFFFFF),
                           dtype=np.uint64)
            rem = width % _WORD_BITS
            if rem:
                mask[-1] = np.uint64((1 << rem) - 1)
            mask.setflags(write=False)
            self._mask_cache[width] = mask
        return mask

    def _eval_instance_words(
        self, inst: Instance, values: Mapping[str, np.ndarray],
        mask: np.ndarray, zeros: np.ndarray,
        forced_pin: str | None = None,
        forced_value: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate one instance on word arrays.

        Input values may mix shapes ``(words,)`` (shared good value)
        and ``(F, words)`` (per-fault overlays); broadcasting carries
        the fault axis through.  The cell function is computed as
        OR-of-minterms via one fancy-index into a stacked literal
        matrix plus two reductions -- a handful of numpy calls per
        instance, independent of input count and minterm count.
        """
        rows = self._minterm_rows[inst.cell.name]
        if rows is None:
            # Constant cell: output is 1 iff it has a (trivial) minterm.
            return mask if self._minterms[inst.cell.name] else zeros
        in_values = []
        stacked_shape: tuple[int, ...] | None = None
        for pin, net in zip(inst.cell.input_pins, self._in_nets[inst.name]):
            if pin == forced_pin:
                value = forced_value
            else:
                value = values.get(net, zeros)
            in_values.append(value)
            if value.ndim > 1:
                stacked_shape = value.shape  # a (F, words) overlay
        if stacked_shape is not None:
            in_values = [
                v if v.ndim > 1 else np.broadcast_to(v, stacked_shape)
                for v in in_values
            ]
        literals = np.stack(in_values)
        literals = np.concatenate([literals, ~literals])
        # (minterms, literals-per-minterm, *shape) -> AND within each
        # minterm, OR across minterms, then clip to the batch width.
        terms = np.bitwise_and.reduce(literals[rows], axis=1)
        return np.bitwise_or.reduce(terms, axis=0) & mask

    def evaluate_words(
        self, packed_inputs: Mapping[str, np.ndarray], width: int
    ) -> dict[str, np.ndarray]:
        """Word-array analogue of :meth:`evaluate`: every net's value
        is a ``uint64`` array, 64 patterns per word."""
        mask = self._mask_words(width)
        zeros = np.zeros_like(mask)
        values: dict[str, np.ndarray] = {
            net: packed_inputs.get(net, zeros) for net in self.pseudo_inputs
        }
        for inst in self._order:
            values[self._out_net[inst.name]] = self._eval_instance_words(
                inst, values, mask, zeros
            )
        return values

    # -- fault machinery ------------------------------------------------

    def fanout_cone(self, start_instance: str) -> Sequence[Instance]:
        """Combinational instances affected by ``start_instance``'s
        output, in topological order (including the start).  Memoized;
        treat the result as read-only."""
        cached = self._cone_cache.get(start_instance)
        if cached is not None:
            return cached
        seen = {start_instance}
        queue = deque([start_instance])
        while queue:
            name = queue.popleft()
            inst = self.module.instances[name]
            if inst.cell.is_sequential:
                continue
            out_net = inst.net_of(inst.cell.output_pins[0])
            for load in self._net_loads.get(out_net, ()):
                if load not in seen:
                    seen.add(load)
                    queue.append(load)
        members = [self.module.instances[n] for n in seen
                   if not self.module.instances[n].cell.is_sequential]
        members.sort(key=lambda i: self._topo_index[i.name])
        result = tuple(members)
        self._cone_cache[start_instance] = result
        return result

    def support(self, instance: str) -> Sequence[str]:
        """Pseudo inputs in the transitive fanin of an instance.
        Memoized; treat the result as read-only."""
        cached = self._support_cache.get(instance)
        if cached is not None:
            return cached
        pi_set = set(self.pseudo_inputs)
        found: set[str] = set()
        seen_inst = {instance}
        queue = deque([instance])
        while queue:
            inst = self.module.instances[queue.popleft()]
            if inst.cell.is_sequential:
                continue
            for pin in inst.cell.input_pins:
                net = self.module.nets[inst.net_of(pin)]
                if net.name in pi_set:
                    found.add(net.name)
                if net.driver is not None:
                    drv = net.driver.instance
                    if drv not in seen_inst:
                        driver_inst = self.module.instances[drv]
                        if driver_inst.cell.is_sequential:
                            # its Q net is a pseudo input, caught above
                            continue
                        seen_inst.add(drv)
                        queue.append(drv)
        result = tuple(sorted(found))
        self._support_cache[instance] = result
        return result

    def detect_mask(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        width: int,
    ) -> int:
        """Bitmask of patterns (within the evaluated batch) that detect
        ``fault``, given the good-circuit net values."""
        mask = (1 << width) - 1
        inst = self.module.instances[fault.instance]
        stuck = mask if fault.stuck_at else 0
        overlay: dict[str, int] = {}

        def value_of(net: str) -> int:
            if net in overlay:
                return overlay[net]
            return good_values.get(net, 0)

        direction = inst.cell.pin(fault.pin).direction
        if direction == "output":
            out_net = inst.net_of(fault.pin)
            if value_of(out_net) == stuck:
                return 0  # fault never activated in this batch
            overlay[out_net] = stuck
        else:
            faulty = self._eval_instance(
                inst, _OverlayView(overlay, good_values), mask,
                forced_pin=fault.pin, forced_value=stuck,
            )
            out_net = inst.net_of(inst.cell.output_pins[0])
            if faulty == good_values.get(out_net, 0):
                return 0
            overlay[out_net] = faulty

        for member in self.fanout_cone(fault.instance):
            if member.name == fault.instance:
                continue
            new = self._eval_instance(
                member, _OverlayView(overlay, good_values), mask
            )
            member_out = member.net_of(member.cell.output_pins[0])
            if new != good_values.get(member_out, 0):
                overlay[member_out] = new

        detected = 0
        for net in self.pseudo_outputs:
            if net in overlay:
                detected |= overlay[net] ^ good_values.get(net, 0)
        return detected & mask

    def detect_words(
        self,
        fault: Fault,
        good_values: Mapping[str, np.ndarray],
        width: int,
    ) -> np.ndarray:
        """Word-array analogue of :meth:`detect_mask`: returns the
        detecting-pattern mask as a ``uint64`` array."""
        mask = self._mask_words(width)
        zeros = np.zeros_like(mask)
        inst = self.module.instances[fault.instance]
        stuck = mask if fault.stuck_at else zeros
        overlay: dict[str, np.ndarray] = {}

        direction = inst.cell.pin(fault.pin).direction
        if direction == "output":
            out_net = inst.net_of(fault.pin)
            current = overlay.get(out_net, good_values.get(out_net, zeros))
            if np.array_equal(current, stuck):
                return zeros  # fault never activated in this batch
            overlay[out_net] = stuck
        else:
            faulty = self._eval_instance_words(
                inst, _OverlayView(overlay, good_values), mask, zeros,
                forced_pin=fault.pin, forced_value=stuck,
            )
            out_net = inst.net_of(inst.cell.output_pins[0])
            if np.array_equal(faulty, good_values.get(out_net, zeros)):
                return zeros
            overlay[out_net] = faulty

        for member in self.fanout_cone(fault.instance):
            if member.name == fault.instance:
                continue
            new = self._eval_instance_words(
                member, _OverlayView(overlay, good_values), mask, zeros
            )
            member_out = member.net_of(member.cell.output_pins[0])
            if not np.array_equal(new, good_values.get(member_out, zeros)):
                overlay[member_out] = new

        detected = zeros.copy()
        for net in self.pseudo_outputs:
            if net in overlay:
                np.bitwise_or(
                    detected,
                    overlay[net] ^ good_values.get(net, zeros),
                    out=detected,
                )
        np.bitwise_and(detected, mask, out=detected)
        return detected

    def detect_words_site(
        self,
        instance: str,
        site_faults: Sequence[Fault],
        good_values: Mapping[str, np.ndarray],
        width: int,
    ) -> np.ndarray:
        """Detecting-pattern masks for **all faults on one instance**
        at once: returns shape ``(len(site_faults), words)``.

        The faults share a fanout cone, so the cone is evaluated once
        with a stacked fault axis instead of once per fault -- the
        fault-parallel half of the word kernel.  Row ``f`` is
        bit-identical to ``detect_words(site_faults[f], ...)``.
        """
        mask = self._mask_words(width)
        zeros = np.zeros_like(mask)
        inst = self.module.instances[instance]
        out_net = self._out_net.get(instance) or inst.net_of(
            inst.cell.output_pins[0]
        )
        rows = []
        for fault in site_faults:
            stuck = mask if fault.stuck_at else zeros
            if inst.cell.pin(fault.pin).direction == "output":
                rows.append(stuck)
            else:
                rows.append(self._eval_instance_words(
                    inst, good_values, mask, zeros,
                    forced_pin=fault.pin, forced_value=stuck,
                ))
        overlay: dict[str, np.ndarray] = {out_net: np.stack(rows)}

        for member in self.fanout_cone(instance):
            if member.name == instance:
                continue
            new = self._eval_instance_words(
                member, _OverlayView(overlay, good_values), mask, zeros
            )
            member_out = self._out_net[member.name]
            if not np.array_equal(new, good_values.get(member_out, zeros)):
                overlay[member_out] = new

        detected = np.zeros((len(site_faults),) + mask.shape, dtype=mask.dtype)
        for net in self.pseudo_outputs:
            value = overlay.get(net)
            if value is not None:
                np.bitwise_or(
                    detected,
                    value ^ good_values.get(net, zeros),
                    out=detected,
                )
        np.bitwise_and(detected, mask, out=detected)
        return detected


class _OverlayView(dict):
    """Read-through overlay: fault values shadow good values."""

    def __init__(self, overlay: dict, base: Mapping) -> None:
        super().__init__()
        self._overlay = overlay
        self._base = base

    def get(self, key: str, default: Any = 0) -> Any:
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key, default)


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation campaign."""

    total_faults: int
    detected: set[Fault] = field(default_factory=set)
    patterns_applied: int = 0
    #: (cumulative patterns, cumulative coverage) after each batch.
    coverage_curve: list[tuple[int, float]] = field(default_factory=list)
    #: Single-pattern test set: for every detected fault, the first
    #: pattern that detected it (deduplicated; one dict of 0/1 values
    #: per pseudo input).
    effective_patterns: list[dict[str, int]] = field(default_factory=list)
    #: fault -> index into :attr:`effective_patterns` of the pattern
    #: that first detected it.
    detection_index: dict[Fault, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return len(self.detected) / self.total_faults

    def detecting_pattern(self, fault: Fault) -> dict[str, int] | None:
        """The recorded pattern that first detected ``fault``."""
        index = self.detection_index.get(fault)
        if index is None:
            return None
        return self.effective_patterns[index]


# -- batch evaluators (one per packed representation) ----------------------


def _batch_first_hits_words(
    view: CombinationalView,
    bits: Mapping[str, np.ndarray],
    width: int,
    remaining: Sequence[Fault],
) -> dict[Fault, int]:
    """Word-kernel batch: fault -> first detecting pattern index.

    Faults are grouped by instance so each fault site's fanout cone is
    evaluated once (stacked along a fault axis) per batch.
    """
    packed = {net: _pack_words(vec) for net, vec in bits.items()}
    good = view.evaluate_words(packed, width)
    by_site: dict[str, list[Fault]] = {}
    for fault in remaining:
        by_site.setdefault(fault.instance, []).append(fault)
    hits: dict[Fault, int] = {}
    for instance, site_faults in by_site.items():
        detected = view.detect_words_site(instance, site_faults, good, width)
        for row, fault in enumerate(site_faults):
            first = _first_set_bit(detected[row])
            if first is not None:
                hits[fault] = first
    return hits


def _batch_first_hits_bigint(
    view: CombinationalView,
    bits: Mapping[str, np.ndarray],
    width: int,
    remaining: Sequence[Fault],
) -> dict[Fault, int]:
    """Big-int (scalar reference) batch: fault -> first detecting bit."""
    packed = {net: _pack_bigint(vec) for net, vec in bits.items()}
    good = view.evaluate(packed, width)
    hits: dict[Fault, int] = {}
    for fault in remaining:
        mask = view.detect_mask(fault, good, width)
        if mask:
            hits[fault] = (mask & -mask).bit_length() - 1
    return hits


_BatchKernel = Callable[
    [CombinationalView, Mapping[str, np.ndarray], int, Sequence[Fault]],
    dict[Fault, int],
]

_BATCH_KERNELS: dict[str, _BatchKernel] = {
    "words": _batch_first_hits_words,
    "bigint": _batch_first_hits_bigint,
}

#: Public engine names -> batch kernels.  ``engine`` is the PR 5-style
#: knob (mirroring the functional simulator's event/compiled choice);
#: ``kernel`` remains as the historical spelling.
_ENGINE_KERNELS = {
    "compiled": "compiled",
    "words": "words",
    "scalar": "bigint",
}


def _get_kernel(kernel: str) -> _BatchKernel:
    """Resolve a kernel name, lazily registering the compiled engine
    (which lives in :mod:`repro.dft.compiled` and imports this
    module, so it cannot be registered at import time)."""
    fn = _BATCH_KERNELS.get(kernel)
    if fn is None and kernel == "compiled":
        from .compiled import compiled_batch_hits

        fn = _BATCH_KERNELS["compiled"] = compiled_batch_hits
    if fn is None:
        raise ValueError(f"unknown kernel {kernel!r}")
    return fn


def resolve_engine(engine: str | None, kernel: str) -> str:
    """Effective kernel name for an (engine, kernel) pair.

    ``engine`` (``"compiled"`` | ``"words"`` | ``"scalar"``) wins when
    given; otherwise the legacy ``kernel`` name passes through.  All
    engines are bit-identical; this only selects the evaluation path.
    """
    if engine is None:
        return kernel
    mapped = _ENGINE_KERNELS.get(engine)
    if mapped is None:
        raise ValueError(
            f"unknown engine {engine!r} "
            f"(expected one of {sorted(_ENGINE_KERNELS)})"
        )
    return mapped


def _record_batch(
    result: FaultSimResult,
    view: CombinationalView,
    bits: Mapping[str, np.ndarray],
    width: int,
    hits: Mapping[Fault, int],
) -> None:
    """Fold one batch's detections into the running result."""
    result.detected.update(hits)
    result.patterns_applied += width
    result.coverage_curve.append((result.patterns_applied, result.coverage))
    by_bit: dict[int, list[Fault]] = {}
    for fault, bit in hits.items():
        by_bit.setdefault(bit, []).append(fault)
    for bit in sorted(by_bit):
        pattern = {
            net: int(bits[net][bit]) for net in view.pseudo_inputs
        }
        index = len(result.effective_patterns)
        result.effective_patterns.append(pattern)
        for fault in by_bit[bit]:
            result.detection_index[fault] = index


def _batch_schedule(max_patterns: int, batch_size: int) -> list[int]:
    """Batch widths the serial loop would use, in order."""
    widths: list[int] = []
    applied = 0
    while applied < max_patterns:
        width = min(batch_size, max_patterns - applied)
        widths.append(width)
        applied += width
    return widths


_PartitionTask = tuple[
    CombinationalView, list[Fault], str, Mapping[str, Any], list[int], str
]


def _fault_partition_worker(
    task: _PartitionTask,
) -> dict[Fault, tuple[int, int]]:
    """Simulate one fault partition over the shared pattern schedule.

    Returns fault -> (batch index, pattern bit) of its first
    detection.  Every worker regenerates the identical pattern stream
    from the snapshotted RNG state, so detections are exactly the ones
    the serial loop would have seen.
    """
    view, faults, generator_name, rng_state, widths, kernel = task
    bit_generator = getattr(np.random, generator_name)()
    bit_generator.state = rng_state
    rng = np.random.Generator(bit_generator)
    batch_eval = _get_kernel(kernel)
    remaining = list(faults)
    first: dict[Fault, tuple[int, int]] = {}
    for batch_index, width in enumerate(widths):
        if not remaining:
            break
        bits = view.random_pattern_bits(rng, width)
        hits = batch_eval(view, bits, width, remaining)
        for fault, bit in hits.items():
            first[fault] = (batch_index, bit)
        remaining = [f for f in remaining if f not in hits]
    return first


def random_pattern_fault_sim(
    view: CombinationalView,
    faults: Sequence[Fault],
    *,
    rng: np.random.Generator,
    max_patterns: int = 4096,
    batch_size: int = 64,
    target_coverage: float | None = None,
    kernel: str = "words",
    engine: str | None = None,
    workers: int = 1,
) -> FaultSimResult:
    """Random-pattern fault simulation with fault dropping.

    Applies batches of random patterns until ``max_patterns`` is
    reached or ``target_coverage`` is met; detected faults are dropped
    from further simulation.

    ``engine`` selects the evaluation path: ``"compiled"`` (the fused
    flat-program backend of :mod:`repro.dft.compiled`), ``"words"``
    (the numpy ``uint64`` word kernel) or ``"scalar"`` (the big-int
    reference).  The legacy ``kernel`` spelling (``"words"`` /
    ``"bigint"``) is honoured when ``engine`` is not given.  All
    engines give bit-identical results -- coverage, coverage curve,
    first-detecting-pattern attribution and drop order.  ``workers >
    1`` partitions the fault list over a process pool; the merge
    replays the serial batch loop from per-fault first-detection
    records, so the result (and the caller's ``rng`` state afterwards)
    is identical for any worker count and any engine.
    """
    kernel = resolve_engine(engine, kernel)
    _get_kernel(kernel)  # validate before any rng draw
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n_workers = max(1, int(workers)) if workers is not None else 1
    with stage_timer("dft.fault_sim") as stats:
        if n_workers > 1 and len(faults) > 1:
            result = _parallel_fault_sim(
                view, faults, rng=rng, max_patterns=max_patterns,
                batch_size=batch_size, target_coverage=target_coverage,
                kernel=kernel, workers=n_workers,
            )
        else:
            result = _serial_fault_sim(
                view, faults, rng=rng, max_patterns=max_patterns,
                batch_size=batch_size, target_coverage=target_coverage,
                kernel=kernel,
            )
        stats.add(patterns=result.patterns_applied,
                  faults=len(faults),
                  detected=len(result.detected))
    return result


def _serial_fault_sim(
    view: CombinationalView,
    faults: Sequence[Fault],
    *,
    rng: np.random.Generator,
    max_patterns: int,
    batch_size: int,
    target_coverage: float | None,
    kernel: str,
) -> FaultSimResult:
    batch_eval = _get_kernel(kernel)
    result = FaultSimResult(total_faults=len(faults))
    remaining: list[Fault] = list(faults)
    while result.patterns_applied < max_patterns and remaining:
        width = min(batch_size, max_patterns - result.patterns_applied)
        bits = view.random_pattern_bits(rng, width)
        hits = batch_eval(view, bits, width, remaining)
        _record_batch(result, view, bits, width, hits)
        remaining = [f for f in remaining if f not in hits]
        if target_coverage is not None and result.coverage >= target_coverage:
            break
    return result


def _parallel_fault_sim(
    view: CombinationalView,
    faults: Sequence[Fault],
    *,
    rng: np.random.Generator,
    max_patterns: int,
    batch_size: int,
    target_coverage: float | None,
    kernel: str,
    workers: int,
) -> FaultSimResult:
    """Fault-partition fan-out with a deterministic serial replay.

    Workers each simulate a contiguous slice of the fault list against
    the full pattern schedule (regenerated from a snapshot of ``rng``).
    The parent then replays the serial batch loop -- advancing its own
    ``rng`` identically -- using the merged first-detection records
    instead of re-simulating, so early-stop semantics
    (``target_coverage``, everything-detected) match the serial path.
    """
    widths = _batch_schedule(max_patterns, batch_size)
    generator_name = type(rng.bit_generator).__name__
    rng_state = rng.bit_generator.state
    n_chunks = min(workers, len(faults))
    bounds = np.linspace(0, len(faults), n_chunks + 1).astype(int)
    tasks = [
        (view, list(faults[bounds[k]:bounds[k + 1]]), generator_name,
         rng_state, widths, kernel)
        for k in range(n_chunks)
        if bounds[k] < bounds[k + 1]
    ]
    first: dict[Fault, tuple[int, int]] = {}
    for part in fanout(_fault_partition_worker, tasks, workers=workers,
                       stage="dft.fault_sim.fanout"):
        first.update(part)

    by_batch: dict[int, dict[Fault, int]] = {}
    for fault in faults:  # original order, for stable grouping
        hit = first.get(fault)
        if hit is not None:
            batch_index, bit = hit
            by_batch.setdefault(batch_index, {})[fault] = bit

    result = FaultSimResult(total_faults=len(faults))
    remaining_count = len(faults)
    for batch_index, width in enumerate(widths):
        if result.patterns_applied >= max_patterns or remaining_count == 0:
            break
        bits = view.random_pattern_bits(rng, width)  # same stream as serial
        hits = by_batch.get(batch_index, {})
        _record_batch(result, view, bits, width, hits)
        remaining_count -= len(hits)
        if target_coverage is not None and result.coverage >= target_coverage:
            break
    return result


def simulate_single_pattern(
    view: CombinationalView,
    pattern: Mapping[str, int],
    faults: Iterable[Fault],
) -> set[Fault]:
    """Which of ``faults`` does one (unpacked, 1-bit) pattern detect?"""
    good = view.evaluate(pattern, 1)
    return {f for f in faults if view.detect_mask(f, good, 1)}
