"""Scan insertion.

Replaces every plain flip-flop in a module with its scan-equivalent
cell and stitches the scan flops into shift chains, adding
``scan_in<k>`` / ``scan_out<k>`` / ``scan_en`` ports.  This mirrors the
paper's Section-3 flow step "after scan insertion, the fault coverage
was 93%".

The insertion is performed on a copy by default so the functional
netlist is preserved for equivalence checking (scan insertion must be
formally transparent when ``scan_en`` is low).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol

from ..netlist import Logic, Module
from ..sim import LogicSimulator

if TYPE_CHECKING:
    from ..lint.core import Finding

#: Functional flop -> scan flop replacement map.
_SCAN_EQUIVALENT = {"DFF": "SDFF", "DFFR": "SDFFR"}


class _Placement(Protocol):
    """Anything that can report instance coordinates (the physical
    package's Placement, or any stand-in with the same method)."""

    def position_um(self, instance: str) -> tuple[float, float]:
        ...


class ScanDrcError(ValueError):
    """Scan design-rule violations block insertion.

    Subclasses :class:`ValueError` so pre-DRC callers' error handling
    keeps working.  Carries the offending lint findings.
    """

    def __init__(
        self, module_name: str, findings: Iterable["Finding"]
    ) -> None:
        self.findings = list(findings)
        details = "; ".join(f.message for f in self.findings[:5])
        extra = len(self.findings) - 5
        if extra > 0:
            details += f" (+{extra} more)"
        super().__init__(
            f"scan DRC failed for module {module_name}: {details}"
        )


@dataclass(frozen=True)
class ScanChain:
    """One stitched scan chain: ordered flop instance names."""

    index: int
    scan_in_port: str
    scan_out_port: str
    flops: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.flops)


@dataclass
class ScanReport:
    """Result of scan insertion."""

    module_name: str
    chains: list[ScanChain] = field(default_factory=list)
    replaced_flops: int = 0
    already_scan: int = 0
    area_overhead_um2: float = 0.0

    @property
    def total_scan_flops(self) -> int:
        return sum(len(c) for c in self.chains)

    @property
    def max_chain_length(self) -> int:
        return max((len(c) for c in self.chains), default=0)


def insert_scan(
    module: Module,
    *,
    n_chains: int = 1,
    in_place: bool = False,
    chain_order: list[str] | None = None,
    drc: bool = True,
) -> tuple[Module, ScanReport]:
    """Swap flops for scan flops and stitch ``n_chains`` chains.

    ``chain_order`` optionally fixes the global flop ordering (e.g. a
    placement-aware order from :mod:`repro.physical`); default is
    name order, which is deterministic.

    By default the scan design rules (:mod:`repro.lint.scandrc`) gate
    insertion: uncontrollable resets, gated clocks, latches and
    missing scan equivalents raise :class:`ScanDrcError` up front
    instead of failing mid-rewrite.  Pass ``drc=False`` to skip the
    gate (the legacy behaviour).

    Returns the scanned module and a :class:`ScanReport`.
    """
    if n_chains < 1:
        raise ValueError("n_chains must be >= 1")
    if "scan_en" in module.ports:
        raise ValueError(
            f"module {module.name} already contains scan infrastructure"
        )
    scanned = module if in_place else module.copy(module.name + "_scan")
    report = ScanReport(module_name=scanned.name)

    flop_names = [inst.name for inst in scanned.sequential_instances]
    if chain_order is not None:
        missing = set(flop_names) - set(chain_order)
        if missing:
            raise ValueError(f"chain_order missing flops: {sorted(missing)[:5]}")
        flop_names = [n for n in chain_order if n in set(flop_names)]
    else:
        flop_names = sorted(flop_names)
    if not flop_names:
        raise ValueError(f"module {module.name} has no flip-flops to scan")

    if drc:
        from ..lint import check_scan_drc  # lazy: avoid import cycle

        violations = check_scan_drc(module)
        if violations:
            raise ScanDrcError(module.name, violations)

    area_before = scanned.total_area_um2
    scanned.add_port("scan_en", "input")

    # Pass 1: replace every functional flop with its scan equivalent.
    scan_flops: list[str] = []
    for name in flop_names:
        inst = scanned.instances[name]
        cell_name = inst.cell.name
        if cell_name in _SCAN_EQUIVALENT:
            connections = dict(inst.connections)
            scanned.remove_instance(name)
            connections["SE"] = "scan_en"
            connections["SI"] = f"__si_{name}"  # stitched in pass 2
            scanned.add_instance(name, _SCAN_EQUIVALENT[cell_name], connections)
            report.replaced_flops += 1
        elif inst.cell.scan_in_pin is not None:
            report.already_scan += 1
        else:
            raise ValueError(
                f"no scan equivalent for cell {cell_name} (instance {name})"
            )
        scan_flops.append(name)

    # Pass 2: stitch chains of balanced length.
    per_chain = (len(scan_flops) + n_chains - 1) // n_chains
    for chain_index in range(n_chains):
        members = scan_flops[chain_index * per_chain:(chain_index + 1) * per_chain]
        if not members:
            break
        si_port = f"scan_in{chain_index}"
        so_port = f"scan_out{chain_index}"
        scanned.add_port(si_port, "input")
        scanned.add_port(so_port, "output")
        previous_q = si_port
        for name in members:
            scanned.rewire_pin(name, "SI", previous_q)
            previous_q = scanned.instances[name].net_of("Q")
        scanned.add_instance(
            f"__so_buf{chain_index}", "BUF_X2", {"A": previous_q, "Y": so_port}
        )
        report.chains.append(
            ScanChain(chain_index, si_port, so_port, tuple(members))
        )

    # Drop the placeholder SI nets left over from pass 1.
    for name in list(scanned.nets):
        if name.startswith("__si_") and not scanned.nets[name].is_driven \
                and scanned.nets[name].fanout == 0:
            del scanned.nets[name]

    report.area_overhead_um2 = scanned.total_area_um2 - area_before
    return scanned, report


def shift_in(
    sim: LogicSimulator,
    chain: ScanChain,
    bits: list[Logic],
    *,
    clock_port: str = "clk",
) -> None:
    """Shift a vector into a chain (LSB enters first, ends at the
    chain tail), leaving ``scan_en`` asserted."""
    if len(bits) != len(chain):
        raise ValueError(f"need {len(chain)} bits, got {len(bits)}")
    sim.set_input("scan_en", Logic.ONE)
    for bit in reversed(bits):
        sim.set_input(chain.scan_in_port, bit)
        sim.clock_edge(clock_port)


def shift_out(
    sim: LogicSimulator,
    chain: ScanChain,
    *,
    clock_port: str = "clk",
) -> list[Logic]:
    """Shift the chain contents out, returning head-to-tail values."""
    sim.set_input("scan_en", Logic.ONE)
    sim.set_input(chain.scan_in_port, Logic.ZERO)
    observed: list[Logic] = []
    for _ in range(len(chain)):
        observed.append(sim.read(chain.scan_out_port))
        sim.clock_edge(clock_port)
    observed.reverse()
    return observed


def placement_aware_chain_order(
    module: Module, placement: _Placement
) -> list[str]:
    """Order flops by a greedy nearest-neighbour tour over placement.

    Scan stitching in name order zig-zags across the die; re-ordering
    along a short tour cuts the scan-routing wirelength substantially
    (the "hierarchical DFT and physical implementation" coupling of
    Section 4).  Pass the result as ``chain_order`` to
    :func:`insert_scan`.
    """
    flops = [f.name for f in module.sequential_instances]
    if not flops:
        return []
    remaining = set(flops)
    # Start at the lowest-left flop.
    current = min(remaining, key=lambda n: placement.position_um(n))
    order = [current]
    remaining.discard(current)
    while remaining:
        cx, cy = placement.position_um(current)
        current = min(
            remaining,
            key=lambda n: (
                (placement.position_um(n)[0] - cx) ** 2
                + (placement.position_um(n)[1] - cy) ** 2
            ),
        )
        order.append(current)
        remaining.discard(current)
    return order


def chain_wirelength_um(
    order: list[str], placement: _Placement
) -> float:
    """Total stitch length of a chain order under a placement."""
    total = 0.0
    for a, b in zip(order, order[1:]):
        ax, ay = placement.position_um(a)
        bx, by = placement.position_um(b)
        total += abs(ax - bx) + abs(ay - by)
    return total


def chain_integrity_test(
    sim: LogicSimulator,
    chain: ScanChain,
    *,
    clock_port: str = "clk",
) -> bool:
    """Flush a 00110011... pattern through the chain and check it
    emerges intact -- the standard scan-chain integrity test."""
    pattern = [Logic((i >> 1) & 1) for i in range(len(chain))]
    shift_in(sim, chain, pattern, clock_port=clock_port)
    observed = shift_out(sim, chain, clock_port=clock_port)
    return observed == pattern
