"""Content-addressed artifact store for stage results.

The flow-as-a-service lever: every static stage result (per-cone
analysis transfers, per-module lint findings, analysis summaries, BMC
payloads) is a pure function of *content fingerprints* -- of the
design slice it covers, of the rule/domain version, and of the
configuration it ran under.  :class:`ArtifactStore` keys canonical-JSON
payloads by the sha256 of exactly those parts, so an ECO reruns only
the cones it touched and a warm flow splices everything else from the
store, byte-for-byte identical to a cold run.

Design rules the clients rely on:

* **keys are content addresses** -- :func:`content_key` hashes the
  canonical JSON of ``(domain, version, fingerprints, config)``; a
  version bump or config change is a different address, so stale
  results are unreachable rather than "invalidated";
* **payloads are canonical JSON values** -- anything
  ``json.dumps(..., sort_keys=True)`` accepts; a payload read back
  after :meth:`~ArtifactStore.save`/:meth:`~ArtifactStore.load` is
  equal to the one stored, so persisted warm runs reproduce in-memory
  warm runs exactly;
* **eviction is deterministic** -- least-recently-used by the
  operation sequence (hits refresh recency), so two processes issuing
  the same get/put sequence hold the same entries;
* **counters are observable** -- hits/misses/puts/evictions per
  domain, mirrored onto :data:`repro.perf.REGISTRY` under
  ``store.<domain>`` so ``--perf`` breakdowns and bench JSON surface
  the hit rate of every client.

An ambient default store (:func:`get_default_store`,
:func:`using_store`) lets deep call chains -- lint rules calling
``analyze_module`` -- share one store without threading it through
every signature.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..perf import REGISTRY

#: Schema version of the persisted store file itself (not of any
#: client's payloads -- clients carry their own versions in the key).
STORE_SCHEMA_VERSION = 1


class StoreError(Exception):
    """Problem with the store itself (corrupt file, bad payload)."""


def canonical_json(payload: Any) -> str:
    """The one serialized form of a payload: sorted keys, no spaces.

    Raises :class:`StoreError` on values JSON cannot represent, so a
    client cannot accidentally store something that would not survive
    persistence.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"payload is not canonical-JSON-able: {exc}") \
            from None


def content_key(
    domain: str,
    version: str,
    fingerprints: Sequence[str],
    config: Any = None,
) -> str:
    """Content address of one artifact.

    ``domain`` names the client family (``analysis.cone``,
    ``lint.module``, ...), ``version`` is that client's result-schema/
    algorithm version (bump it and every old entry becomes
    unreachable), ``fingerprints`` are the input content digests and
    ``config`` any JSON-able configuration that changes the result.
    """
    payload = canonical_json(
        [domain, version, list(fingerprints), config]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class DomainCounters:
    """Hit/miss/put/eviction tallies for one client domain."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "puts": float(self.puts),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }


@dataclass
class ArtifactStore:
    """Content-addressed result cache with deterministic LRU eviction.

    ``max_entries`` bounds the store; 0 means unbounded.  Entries are
    held as canonical-JSON *strings* so a stored payload is immutable
    (callers cannot alias into the cache) and persistence is exact.
    """

    max_entries: int = 0
    _entries: OrderedDict[str, tuple[str, str]] = field(
        default_factory=OrderedDict
    )
    _counters: dict[str, DomainCounters] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._entries)

    def _domain_counters(self, domain: str) -> DomainCounters:
        counters = self._counters.get(domain)
        if counters is None:
            counters = self._counters[domain] = DomainCounters()
        return counters

    # -- the cache protocol -------------------------------------------

    def get(
        self,
        domain: str,
        version: str,
        fingerprints: Sequence[str],
        config: Any = None,
    ) -> Any:
        """Fetch a payload, or ``None`` on miss.

        A hit refreshes the entry's recency (deterministic LRU) and
        returns a fresh object decoded from the canonical JSON, never
        a reference another caller could have mutated.
        """
        key = content_key(domain, version, fingerprints, config)
        counters = self._domain_counters(domain)
        entry = self._entries.get(key)
        if entry is None:
            counters.misses += 1
            REGISTRY.count(f"store.{domain}", misses=1)
            return None
        self._entries.move_to_end(key)
        counters.hits += 1
        REGISTRY.count(f"store.{domain}", hits=1)
        return json.loads(entry[1])

    def put(
        self,
        domain: str,
        version: str,
        fingerprints: Sequence[str],
        payload: Any,
        config: Any = None,
    ) -> str:
        """Store a payload under its content address; returns the key."""
        key = content_key(domain, version, fingerprints, config)
        self._entries[key] = (domain, canonical_json(payload))
        self._entries.move_to_end(key)
        counters = self._domain_counters(domain)
        counters.puts += 1
        REGISTRY.count(f"store.{domain}", puts=1)
        while self.max_entries > 0 and len(self._entries) > self.max_entries:
            _, (evicted_domain, _) = self._entries.popitem(last=False)
            self._domain_counters(evicted_domain).evictions += 1
            REGISTRY.count(f"store.{evicted_domain}", evictions=1)
        return key

    def fetch_or_compute(
        self,
        domain: str,
        version: str,
        fingerprints: Sequence[str],
        compute: Any,
        config: Any = None,
    ) -> Any:
        """``get`` falling back to ``compute()`` + ``put``.

        The returned value is always the canonical-JSON round-trip of
        the payload -- identical on the hit and miss paths, so clients
        never see a type (tuple vs list...) that only a cold run
        produces.
        """
        cached = self.get(domain, version, fingerprints, config)
        if cached is not None:
            return cached
        payload = compute()
        self.put(domain, version, fingerprints, payload, config)
        return json.loads(canonical_json(payload))

    # -- observability ------------------------------------------------

    def counters(self) -> dict[str, DomainCounters]:
        """Per-domain counters (live objects, keyed by domain name)."""
        return dict(self._counters)

    def stats(self) -> dict[str, dict[str, float]]:
        """Serializable counter snapshot plus entry count."""
        out: dict[str, dict[str, float]] = {
            domain: counters.as_dict()
            for domain, counters in sorted(self._counters.items())
        }
        out["_store"] = {"entries": float(len(self._entries))}
        return out

    def format_report(self) -> str:
        lines = [f"artifact store: {len(self._entries)} entries"]
        for domain, counters in sorted(self._counters.items()):
            lines.append(
                f"  {domain:24s} {counters.hits:6d} hits"
                f" {counters.misses:6d} misses"
                f" ({counters.hit_rate * 100:5.1f}%)"
                f" {counters.puts:6d} puts"
                f" {counters.evictions:4d} evicted"
            )
        return "\n".join(lines)

    # -- persistence --------------------------------------------------

    def save(self, path: str, *, canonical: bool = False) -> None:
        """Persist every entry (not the counters) as canonical JSON.

        The write is atomic: the body lands in a temporary file in the
        target directory first and is then :func:`os.replace`-d over
        ``path``, so a concurrent :meth:`load` always sees one
        writer's *complete* snapshot -- racing writers resolve to
        last-writer-wins, never to an interleaved or truncated file.

        ``canonical=True`` orders entries by content key instead of
        recency, so two stores holding the same *set* of artifacts
        serialize byte-identically no matter what operation order
        built them (the service determinism ``cmp`` relies on this);
        the default keeps recency order so a reloaded store resumes
        the same LRU state.
        """
        entries = list(self._entries.items())
        if canonical:
            entries.sort()
        body = {
            "schema": STORE_SCHEMA_VERSION,
            "entries": [
                [key, domain, payload]
                for key, (domain, payload) in entries
            ],
        }
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory, delete=False,
            prefix=os.path.basename(path) + ".", suffix=".tmp",
        )
        try:
            with handle:
                handle.write(json.dumps(body, sort_keys=True, indent=1))
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str, *, max_entries: int = 0) -> "ArtifactStore":
        """Load a persisted store; recency order is the saved order.

        Because :meth:`save` replaces the file atomically, a load that
        races concurrent writers returns the complete snapshot of
        whichever writer last won the rename -- never a torn mix.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                body = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt store file {path!r}: {exc}") \
                    from None
        if not isinstance(body, Mapping) or "entries" not in body:
            raise StoreError(f"store file {path!r} missing 'entries'")
        if body.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store file {path!r} has schema {body.get('schema')!r},"
                f" expected {STORE_SCHEMA_VERSION}"
            )
        store = cls(max_entries=max_entries)
        for entry in body["entries"]:
            key, domain, payload = entry
            store._entries[str(key)] = (str(domain), str(payload))
        return store


# -- ambient default store ------------------------------------------------

#: The process-wide store deep call chains share.  Always present, so
#: every ``analyze_module`` call is cached even without explicit
#: threading; replace or scope it with :func:`set_default_store` /
#: :func:`using_store`.
_DEFAULT_STORE = ArtifactStore()


def get_default_store() -> ArtifactStore:
    """The ambient store used when no store is passed explicitly."""
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore) -> ArtifactStore:
    """Replace the ambient store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous


@contextmanager
def using_store(store: ArtifactStore) -> Iterator[ArtifactStore]:
    """Scope the ambient store to one block (flow stages, tests)."""
    previous = set_default_store(store)
    try:
        yield store
    finally:
        set_default_store(previous)
