"""Content-addressed artifact cache for incremental flow stages.

:class:`ArtifactStore` keys canonical-JSON payloads by the sha256 of
``(domain, version, input fingerprints, config)``; clients --
per-cone analysis transfers, per-module lint findings and analysis
summaries, BMC payloads -- re-derive only what the design change
reached and splice cached results elsewhere, byte-identical to a cold
run.  See :mod:`repro.store.store` for the full contract.
"""

from .store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    DomainCounters,
    StoreError,
    canonical_json,
    content_key,
    get_default_store,
    set_default_store,
    using_store,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "DomainCounters",
    "StoreError",
    "canonical_json",
    "content_key",
    "get_default_store",
    "set_default_store",
    "using_store",
]
