"""Table-driven multi-corner STA over a characterized NLDM library.

This is the signoff companion of the legacy linear-model
:class:`repro.sta.TimingAnalyzer`: gate delays come from bilinear
interpolation of per-arc (input slew x output load) lookup tables in a
:class:`repro.liberty.CellLibrary`, (arrival, slew) pairs propagate
per net through a levelized arc graph, setup (max/late) and hold
(min/early) are swept simultaneously, and every requested process
corner is evaluated in the same pass.

Two engines share one compiled :class:`TimingGraph` and one report
builder:

* ``engine="scalar"`` -- the retained reference: a per-arc Python
  walker, one corner at a time (corners fan out across processes via
  :func:`repro.perf.fanout`);
* ``engine="vectorized"`` -- :mod:`repro.sta.vectorized`: one numpy
  gather + reduce per level with corners as extra lanes.

Both engines perform the identical float64 operations in the identical
order per value (shared precomputed loads, shared clamped bilinear
formula, order-insensitive max/min reductions), so their
:class:`MultiCornerTimingReport` canonical JSON is byte-identical for
any corner set and worker count -- the same determinism contract as
``repro.sim.compiled`` and ``repro.dft.compiled``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..liberty import CellLibrary, default_cell_library
from ..liberty.tables import FloatArray, IntArray, lookup_scalar, table_array
from ..netlist import Module
from ..perf import fanout, stage_timer
from .analyzer import TimingConstraints

# ---------------------------------------------------------------------------
# Compiled timing graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelArcs:
    """All timing arcs of one topological level, grouped by output net.

    Arcs are contiguous per (instance, output pin) stage so both
    engines reduce the same candidate runs: ``group_start`` holds
    reduceat offsets into the arc arrays and ``out_net`` the output
    net of each group.
    """

    src_net: IntArray
    out_net_per_arc: IntArray
    table_id: IntArray
    group_start: IntArray
    out_net: IntArray


@dataclass(frozen=True)
class StageInfo:
    """Backtracking info for the stage driving one net."""

    instance: str
    cell: str
    is_launch: bool
    arcs: tuple[tuple[int, int], ...]  # (src_net_id, table_id)


@dataclass(frozen=True)
class TimingGraph:
    """A module levelized into table-indexed timing arcs.

    Immutable and picklable; cached per
    ``(module.fingerprint(), library.fingerprint())`` like the
    compiled simulation program.  Net loads are *not* part of the
    graph -- they depend on placed wire caps and the corner, and are
    computed per analysis call.
    """

    net_names: tuple[str, ...]
    net_id: dict[str, int]
    slew_grid: FloatArray
    load_grid: FloatArray
    slew_grid_t: tuple[float, ...]
    load_grid_t: tuple[float, ...]
    delay_tables: FloatArray  # [T, S, L]
    tran_tables: FloatArray  # [T, S, L]
    pin_cap_ff: FloatArray  # [N] sum of sink pin caps per net
    fanout_count: IntArray  # [N] max(fanout, 1) for wire estimation
    port_input_nets: IntArray
    flop_q_net: IntArray
    flop_table_id: IntArray
    levels: tuple[LevelArcs, ...]
    stages: dict[int, StageInfo]
    endpoints: tuple[tuple[str, str, int], ...]  # (key, kind, net_id)
    num_arcs: int


_GRAPH_CACHE: dict[tuple[str, str], TimingGraph] = {}
_GRAPH_CACHE_MAX = 16


def compile_timing_graph(module: Module, library: CellLibrary) -> TimingGraph:
    """Levelize one module's timing arcs against a characterized library.

    Cached on ``(module.fingerprint(), library.fingerprint())``.
    """
    key = (module.fingerprint(), library.fingerprint())
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached
    with stage_timer("sta.compile") as stats:
        graph = _compile(module, library)
        stats.add(arcs=graph.num_arcs, nets=len(graph.net_names))
    if len(_GRAPH_CACHE) >= _GRAPH_CACHE_MAX:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[key] = graph
    return graph


def _compile(module: Module, library: CellLibrary) -> TimingGraph:
    net_names = tuple(sorted(module.nets))
    net_id = {name: i for i, name in enumerate(net_names)}
    n_nets = len(net_names)

    # Table stack: one id per distinct (cell, related, output) arc.
    table_ids: dict[tuple[str, str, str], int] = {}
    delay_stack: list[FloatArray] = []
    tran_stack: list[FloatArray] = []

    def table_id_of(cell_name: str, related: str, output: str) -> int:
        tid = table_ids.get((cell_name, related, output))
        if tid is None:
            cell = library.cell(cell_name)
            for arc in cell.arcs:
                if arc.related_pin == related and arc.output_pin == output:
                    tid = len(delay_stack)
                    table_ids[(cell_name, related, output)] = tid
                    delay_stack.append(table_array(arc.delay_ps))
                    tran_stack.append(table_array(arc.transition_ps))
                    return tid
            raise KeyError(
                f"cell {cell_name} has no arc {related}->{output}")
        return tid

    # Net loads: sum of characterized sink pin caps, in net-load order.
    pin_cap = np.zeros(n_nets, dtype=np.float64)
    fanout_count = np.ones(n_nets, dtype=np.int64)
    for name, net in module.nets.items():
        idx = net_id[name]
        cap = 0.0
        for ref in net.loads:
            inst = module.instances[ref.instance]
            cap += library.cell(inst.cell.name).pin(ref.pin).capacitance_ff
        pin_cap[idx] = cap
        fanout_count[idx] = max(net.fanout, 1)

    port_input_nets = np.asarray(
        sorted(
            net_id[name]
            for name, port in module.ports.items()
            if port.direction == "input"
        ),
        dtype=np.int64,
    )

    stages: dict[int, StageInfo] = {}
    num_arcs = 0

    # Flop launch arcs: one clock-to-output arc per sequential output.
    flop_q: list[int] = []
    flop_tid: list[int] = []
    for flop in sorted(module.sequential_instances, key=lambda i: i.name):
        lib_cell = library.cell(flop.cell.name)
        for out_pin in flop.cell.output_pins:
            if not lib_cell.arcs_to(out_pin):
                continue
            q_idx = net_id[flop.net_of(out_pin)]
            arc = lib_cell.arcs_to(out_pin)[0]
            tid = table_id_of(flop.cell.name, arc.related_pin, out_pin)
            flop_q.append(q_idx)
            flop_tid.append(tid)
            stages[q_idx] = StageInfo(flop.name, flop.cell.name, True, ())
            num_arcs += 1

    # Combinational stages, levelized.  A stage is one (instance,
    # output pin); multi-output cells contribute one stage per output.
    level_of: dict[str, int] = {}
    by_level: dict[int, list[tuple[str, str, int, list[tuple[int, int]]]]] = {}
    for inst in module.topological_combinational_order():
        lvl = 0
        for src in module.fanin_instances(inst):
            if not src.cell.is_sequential:
                lvl = max(lvl, level_of[src.name] + 1)
        level_of[inst.name] = lvl
        lib_cell = library.cell(inst.cell.name)
        for out_pin in inst.cell.output_pins:
            arcs = lib_cell.arcs_to(out_pin)
            if not arcs:
                continue  # tie/spare: output stays a timing source
            out_idx = net_id[inst.net_of(out_pin)]
            arc_list = [
                (net_id[inst.net_of(a.related_pin)],
                 table_id_of(inst.cell.name, a.related_pin, out_pin))
                for a in arcs
            ]
            by_level.setdefault(lvl, []).append(
                (inst.name, out_pin, out_idx, arc_list))
            stages[out_idx] = StageInfo(
                inst.name, inst.cell.name, False, tuple(arc_list))
            num_arcs += len(arc_list)

    levels: list[LevelArcs] = []
    for lvl in sorted(by_level):
        group_start: list[int] = []
        out_nets: list[int] = []
        src: list[int] = []
        out_per_arc: list[int] = []
        tids: list[int] = []
        for inst_name, out_pin, out_idx, arc_list in sorted(by_level[lvl]):
            group_start.append(len(src))
            out_nets.append(out_idx)
            for src_idx, tid in arc_list:
                src.append(src_idx)
                out_per_arc.append(out_idx)
                tids.append(tid)
        levels.append(
            LevelArcs(
                src_net=np.asarray(src, dtype=np.int64),
                out_net_per_arc=np.asarray(out_per_arc, dtype=np.int64),
                table_id=np.asarray(tids, dtype=np.int64),
                group_start=np.asarray(group_start, dtype=np.int64),
                out_net=np.asarray(out_nets, dtype=np.int64),
            )
        )

    endpoints: list[tuple[str, str, int]] = []
    for flop in sorted(module.sequential_instances, key=lambda i: i.name):
        if flop.cell.data_pin is None:
            continue
        endpoints.append(
            ("flop:" + flop.name, "flop",
             net_id[flop.net_of(flop.cell.data_pin)]))
    for name in sorted(module.ports):
        if module.ports[name].direction == "output":
            endpoints.append(("port:" + name, "port", net_id[name]))

    if not delay_stack:  # keep the stacks well-shaped for empty designs
        shape = (0, len(library.slew_index_ps), len(library.load_index_ff))
        delay_tables = np.zeros(shape, dtype=np.float64)
        tran_tables = np.zeros(shape, dtype=np.float64)
    else:
        delay_tables = np.stack(delay_stack)
        tran_tables = np.stack(tran_stack)

    return TimingGraph(
        net_names=net_names,
        net_id=net_id,
        slew_grid=np.asarray(library.slew_index_ps, dtype=np.float64),
        load_grid=np.asarray(library.load_index_ff, dtype=np.float64),
        slew_grid_t=library.slew_index_ps,
        load_grid_t=library.load_index_ff,
        delay_tables=delay_tables,
        tran_tables=tran_tables,
        pin_cap_ff=pin_cap,
        fanout_count=fanout_count,
        port_input_nets=port_input_nets,
        flop_q_net=np.asarray(flop_q, dtype=np.int64),
        flop_table_id=np.asarray(flop_tid, dtype=np.int64),
        levels=tuple(levels),
        stages=stages,
        endpoints=tuple(endpoints),
        num_arcs=num_arcs,
    )


def compute_loads(
    graph: TimingGraph,
    constraints: TimingConstraints,
    net_wire_cap_ff: Mapping[str, float],
    corners: Sequence,
) -> FloatArray:
    """Per-corner net loads ``[C, N]``: pin caps + derated wire caps.

    Computed once and shared by both engines so load float64 values are
    identical by construction.
    """
    n_nets = len(graph.net_names)
    wire = np.empty(n_nets, dtype=np.float64)
    if net_wire_cap_ff:
        estimate = constraints.wire_cap_per_fanout_ff * graph.fanout_count
        for i, name in enumerate(graph.net_names):
            placed = net_wire_cap_ff.get(name)
            wire[i] = estimate[i] if placed is None else placed
    else:
        wire[:] = constraints.wire_cap_per_fanout_ff * graph.fanout_count
    derate = np.asarray([c.wire_derate for c in corners], dtype=np.float64)
    return graph.pin_cap_ff[None, :] + wire[None, :] * derate[:, None]


# ---------------------------------------------------------------------------
# Scalar reference sweep (retained per-arc walker)
# ---------------------------------------------------------------------------


def sweep_scalar_corner(
    graph: TimingGraph,
    loads_row: FloatArray,
    delay_derate: float,
    slew_derate: float,
    constraints: TimingConstraints,
) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray]:
    """Reference per-arc walk of one corner.

    Returns ``(arrival_setup, slew_setup, arrival_hold, slew_hold)``,
    each ``[N]`` float64.  Plain Python arithmetic per arc; the
    vectorized engine must reproduce every value bit-for-bit.
    """
    n = len(graph.net_names)
    inf = float("inf")
    arr_s = np.zeros(n, dtype=np.float64)
    arr_h = np.full(n, inf, dtype=np.float64)
    slew_s = np.full(n, constraints.input_slew_ps, dtype=np.float64)
    slew_h = np.full(n, constraints.input_slew_ps, dtype=np.float64)
    arr_s[graph.port_input_nets] = constraints.input_delay_ps

    delay_tables = graph.delay_tables
    tran_tables = graph.tran_tables
    sgrid, lgrid = graph.slew_grid_t, graph.load_grid_t
    clock_slew = constraints.clock_slew_ps

    for q_idx, tid in zip(graph.flop_q_net, graph.flop_table_id):
        load = float(loads_row[q_idx])
        delay = lookup_scalar(
            delay_tables[tid], sgrid, lgrid, clock_slew, load) * delay_derate
        tran = lookup_scalar(
            tran_tables[tid], sgrid, lgrid, clock_slew, load) * slew_derate
        arr_s[q_idx] = delay
        arr_h[q_idx] = delay
        slew_s[q_idx] = tran
        slew_h[q_idx] = tran

    for level in graph.levels:
        src = level.src_net
        tids = level.table_id
        starts = level.group_start
        n_groups = len(level.out_net)
        for g in range(n_groups):
            lo = int(starts[g])
            hi = int(starts[g + 1]) if g + 1 < n_groups else len(src)
            out_idx = int(level.out_net[g])
            load = float(loads_row[out_idx])
            best_as, best_ts = -inf, -inf
            best_ah, best_th = inf, inf
            for a in range(lo, hi):
                s_idx = int(src[a])
                tid = int(tids[a])
                cand = float(arr_s[s_idx]) + lookup_scalar(
                    delay_tables[tid], sgrid, lgrid,
                    float(slew_s[s_idx]), load) * delay_derate
                if cand > best_as:
                    best_as = cand
                tran = lookup_scalar(
                    tran_tables[tid], sgrid, lgrid,
                    float(slew_s[s_idx]), load) * slew_derate
                if tran > best_ts:
                    best_ts = tran
                cand_h = float(arr_h[s_idx]) + lookup_scalar(
                    delay_tables[tid], sgrid, lgrid,
                    float(slew_h[s_idx]), load) * delay_derate
                if cand_h < best_ah:
                    best_ah = cand_h
                tran_h = lookup_scalar(
                    tran_tables[tid], sgrid, lgrid,
                    float(slew_h[s_idx]), load) * slew_derate
                if tran_h < best_th:
                    best_th = tran_h
            arr_s[out_idx] = best_as
            slew_s[out_idx] = best_ts
            arr_h[out_idx] = best_ah
            slew_h[out_idx] = best_th

    return arr_s, slew_s, arr_h, slew_h


def _scalar_corner_task(
    task: tuple[TimingGraph, FloatArray, float, float, TimingConstraints],
) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray]:
    """Picklable per-corner worker for :func:`repro.perf.fanout`."""
    graph, loads_row, delay_derate, slew_derate, constraints = task
    return sweep_scalar_corner(
        graph, loads_row, delay_derate, slew_derate, constraints)


# ---------------------------------------------------------------------------
# Report model
# ---------------------------------------------------------------------------


@dataclass
class NldmPathPoint:
    """One hop on a table-timed path."""

    instance: str
    cell: str
    net: str
    arrival_ps: float
    delay_ps: float
    slew_ps: float

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "cell": self.cell,
            "net": self.net,
            "arrival_ps": self.arrival_ps,
            "delay_ps": self.delay_ps,
            "slew_ps": self.slew_ps,
        }


@dataclass
class CornerTimingReport:
    """QoR of one corner of one analysis."""

    corner: str
    wns_ps: float
    tns_ps: float
    violating_endpoints: int
    total_endpoints: int
    hold_wns_ps: float
    hold_violating_endpoints: int
    worst_endpoint: str | None = None
    critical_path: list[NldmPathPoint] = field(default_factory=list)

    @property
    def setup_clean(self) -> bool:
        return self.wns_ps >= 0.0

    @property
    def hold_clean(self) -> bool:
        return self.hold_wns_ps >= 0.0

    def to_dict(self) -> dict:
        return {
            "corner": self.corner,
            "wns_ps": self.wns_ps,
            "tns_ps": self.tns_ps,
            "violating_endpoints": self.violating_endpoints,
            "total_endpoints": self.total_endpoints,
            "hold_wns_ps": self.hold_wns_ps,
            "hold_violating_endpoints": self.hold_violating_endpoints,
            "worst_endpoint": self.worst_endpoint,
            "critical_path": [p.to_dict() for p in self.critical_path],
        }


@dataclass
class MultiCornerTimingReport:
    """Signoff QoR across all analyzed corners.

    ``canonical_json`` excludes the engine tag: it is the byte-exact
    QoR contract the scalar and vectorized engines must both satisfy.
    """

    clock_period_ps: float
    engine: str
    corners: list[CornerTimingReport] = field(default_factory=list)

    def corner(self, name: str) -> CornerTimingReport:
        for report in self.corners:
            if report.corner == name:
                return report
        raise KeyError(f"no corner {name!r} in report")

    @property
    def worst_corner(self) -> CornerTimingReport:
        if not self.corners:
            raise ValueError("empty report")
        return min(self.corners, key=lambda r: r.wns_ps)

    @property
    def setup_clean(self) -> bool:
        return all(r.setup_clean for r in self.corners)

    @property
    def hold_clean(self) -> bool:
        return all(r.hold_clean for r in self.corners)

    @property
    def wns_ps(self) -> float:
        """Worst setup slack across corners."""
        return min(r.wns_ps for r in self.corners)

    @property
    def hold_wns_ps(self) -> float:
        """Worst hold slack across corners."""
        return min(r.hold_wns_ps for r in self.corners)

    def to_dict(self, *, include_engine: bool = True) -> dict:
        payload: dict = {
            "clock_period_ps": self.clock_period_ps,
            "corners": [r.to_dict() for r in self.corners],
        }
        if include_engine:
            payload["engine"] = self.engine
        return payload

    def canonical_json(self) -> str:
        """Engine-independent byte-exact QoR serialization."""
        return json.dumps(
            self.to_dict(include_engine=False),
            sort_keys=True,
            separators=(",", ":"),
        )

    def format_report(self) -> str:
        lines = [
            f"NLDM STA QoR ({self.engine} engine)",
            f"  clock period : {self.clock_period_ps:.0f} ps"
            f" ({1e6 / self.clock_period_ps:.1f} MHz)",
        ]
        for r in self.corners:
            lines.append(
                f"  [{r.corner}] setup WNS {r.wns_ps:9.1f} ps"
                f"  TNS {r.tns_ps:11.1f} ps"
                f"  viol {r.violating_endpoints}/{r.total_endpoints}"
                f"  | hold WNS {r.hold_wns_ps:8.1f} ps"
                f"  viol {r.hold_violating_endpoints}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared report builder + path extraction
# ---------------------------------------------------------------------------


def _extract_path(
    graph: TimingGraph,
    endpoint_net: int,
    arr_s: FloatArray,
    slew_s: FloatArray,
    loads_row: FloatArray,
    delay_derate: float,
) -> list[NldmPathPoint]:
    """Backtrack the worst setup path ending at one net (one corner)."""
    points: list[NldmPathPoint] = []
    current = endpoint_net
    for _ in range(len(graph.stages) + 2):
        stage = graph.stages.get(current)
        if stage is None:
            break
        net_name = graph.net_names[current]
        if stage.is_launch:
            points.append(
                NldmPathPoint(
                    instance=stage.instance,
                    cell=stage.cell,
                    net=net_name,
                    arrival_ps=float(arr_s[current]),
                    delay_ps=float(arr_s[current]),
                    slew_ps=float(slew_s[current]),
                )
            )
            break
        load = float(loads_row[current])
        best_src, best_delay, best_val = -1, 0.0, -float("inf")
        for src_idx, tid in stage.arcs:
            delay = lookup_scalar(
                graph.delay_tables[tid], graph.slew_grid_t,
                graph.load_grid_t, float(slew_s[src_idx]), load,
            ) * delay_derate
            cand = float(arr_s[src_idx]) + delay
            if cand > best_val:
                best_src, best_delay, best_val = src_idx, delay, cand
        points.append(
            NldmPathPoint(
                instance=stage.instance,
                cell=stage.cell,
                net=net_name,
                arrival_ps=float(arr_s[current]),
                delay_ps=best_delay,
                slew_ps=float(slew_s[current]),
            )
        )
        if best_src < 0:
            break
        current = best_src
    points.reverse()
    return points


def build_report(
    graph: TimingGraph,
    constraints: TimingConstraints,
    corner_names: Sequence[str],
    delay_derates: FloatArray,
    loads: FloatArray,
    arr_s: FloatArray,
    slew_s: FloatArray,
    arr_h: FloatArray,
    *,
    engine: str,
    with_critical_path: bool = True,
) -> MultiCornerTimingReport:
    """Turn swept (arrival, slew) arrays into the QoR report.

    Shared by both engines: byte-identical input arrays therefore
    yield byte-identical reports.
    """
    c = constraints
    ep_nets = np.asarray([e[2] for e in graph.endpoints], dtype=np.int64)
    is_flop = np.asarray(
        [e[1] == "flop" for e in graph.endpoints], dtype=bool)
    required = np.where(
        is_flop,
        c.clock_period_ps - c.setup_ps - c.clock_uncertainty_ps,
        c.clock_period_ps - c.output_delay_ps,
    )

    report = MultiCornerTimingReport(
        clock_period_ps=c.clock_period_ps, engine=engine)
    for ci, name in enumerate(corner_names):
        if len(ep_nets) == 0:
            report.corners.append(
                CornerTimingReport(name, 0.0, 0.0, 0, 0, 0.0, 0))
            continue
        arrivals = arr_s[ci, ep_nets]
        slack = required - arrivals
        violating = slack < 0.0
        wns_idx = int(np.argmin(slack))
        wns = float(slack[wns_idx])
        tns = float(slack[violating].sum()) if violating.any() else 0.0

        hold_arr = arr_h[ci, ep_nets]
        hold_checked = is_flop & np.isfinite(hold_arr)
        if hold_checked.any():
            hold_slack = hold_arr[hold_checked] - c.hold_ps
            hold_wns = float(hold_slack.min())
            hold_violating = int((hold_slack < 0.0).sum())
        else:
            hold_wns = 0.0
            hold_violating = 0

        worst_key = graph.endpoints[wns_idx][0]
        path: list[NldmPathPoint] = []
        if with_critical_path:
            path = _extract_path(
                graph, int(ep_nets[wns_idx]), arr_s[ci], slew_s[ci],
                loads[ci], float(delay_derates[ci]),
            )
        report.corners.append(
            CornerTimingReport(
                corner=name,
                wns_ps=wns,
                tns_ps=tns,
                violating_endpoints=int(violating.sum()),
                total_endpoints=len(ep_nets),
                hold_wns_ps=hold_wns,
                hold_violating_endpoints=hold_violating,
                worst_endpoint=worst_key,
                critical_path=path,
            )
        )
    return report


# ---------------------------------------------------------------------------
# Analyzer facade
# ---------------------------------------------------------------------------


class NldmTimingAnalyzer:
    """Multi-corner table-driven STA over one flat module."""

    def __init__(
        self,
        module: Module,
        constraints: TimingConstraints,
        *,
        library: CellLibrary | None = None,
        net_wire_cap_ff: Mapping[str, float] | None = None,
    ) -> None:
        self.module = module
        self.constraints = constraints
        self.library = (
            library if library is not None
            else default_cell_library(module.library)
        )
        self.net_wire_cap_ff = dict(net_wire_cap_ff or {})
        self.graph = compile_timing_graph(module, self.library)

    def _resolve_corners(
        self, corners: Sequence[str] | None
    ) -> tuple[list[str], list]:
        names = list(corners) if corners else list(self.library.corner_names())
        return names, [self.library.corner(n) for n in names]

    def sweep(
        self,
        *,
        corners: Sequence[str] | None = None,
        engine: str = "vectorized",
        workers: int | None = None,
    ) -> tuple[list[str], FloatArray, FloatArray, FloatArray, FloatArray,
               FloatArray, FloatArray]:
        """Run one (arrival, slew) sweep.

        Returns ``(corner_names, delay_derates, loads, arrival_setup,
        slew_setup, arrival_hold, slew_hold)``; array shapes ``[C]``,
        ``[C, N]``.
        """
        names, corner_objs = self._resolve_corners(corners)
        loads = compute_loads(
            self.graph, self.constraints, self.net_wire_cap_ff, corner_objs)
        delay_derates = np.asarray(
            [c.delay_derate for c in corner_objs], dtype=np.float64)
        slew_derates = np.asarray(
            [c.slew_derate for c in corner_objs], dtype=np.float64)

        with stage_timer("sta.sweep") as stats:
            if engine == "vectorized":
                from .vectorized import sweep_vectorized

                arr_s, slew_s, arr_h, slew_h = sweep_vectorized(
                    self.graph, loads, delay_derates, slew_derates,
                    self.constraints,
                )
            elif engine == "scalar":
                tasks = [
                    (self.graph, loads[i], float(delay_derates[i]),
                     float(slew_derates[i]), self.constraints)
                    for i in range(len(names))
                ]
                results = fanout(
                    _scalar_corner_task, tasks, workers=workers)
                arr_s = np.stack([r[0] for r in results])
                slew_s = np.stack([r[1] for r in results])
                arr_h = np.stack([r[2] for r in results])
                slew_h = np.stack([r[3] for r in results])
            else:
                raise ValueError(
                    f"unknown STA engine {engine!r} "
                    "(expected 'vectorized' or 'scalar')")
            stats.add(arcs=self.graph.num_arcs * len(names),
                      corners=len(names))
        return names, delay_derates, loads, arr_s, slew_s, arr_h, slew_h

    def analyze(
        self,
        *,
        corners: Sequence[str] | None = None,
        engine: str = "vectorized",
        workers: int | None = None,
        with_critical_path: bool = True,
    ) -> MultiCornerTimingReport:
        """Setup + hold analysis across corners; the QoR report."""
        names, derates, loads, arr_s, slew_s, arr_h, _ = self.sweep(
            corners=corners, engine=engine, workers=workers)
        return build_report(
            self.graph, self.constraints, names, derates, loads,
            arr_s, slew_s, arr_h,
            engine=engine, with_critical_path=with_critical_path,
        )

    def endpoint_slacks(
        self,
        *,
        corner: str = "tt",
        engine: str = "vectorized",
    ) -> dict[str, float]:
        """Setup slack per endpoint key at one corner.

        Keys are ``flop:<instance>`` / ``port:<name>`` like the report's
        ``worst_endpoint``.
        """
        c = self.constraints
        _, _, _, arr_s, _, _, _ = self.sweep(
            corners=[corner], engine=engine)
        slacks: dict[str, float] = {}
        for key, kind, net_idx in self.graph.endpoints:
            required = (
                c.clock_period_ps - c.setup_ps - c.clock_uncertainty_ps
                if kind == "flop"
                else c.clock_period_ps - c.output_delay_ps
            )
            slacks[key] = required - float(arr_s[0, net_idx])
        return slacks


def analyze_timing(
    module: Module,
    constraints: TimingConstraints,
    *,
    library: CellLibrary | None = None,
    net_wire_cap_ff: Mapping[str, float] | None = None,
    corners: Sequence[str] | None = None,
    engine: str = "vectorized",
    workers: int | None = None,
    with_critical_path: bool = True,
) -> MultiCornerTimingReport:
    """One-call multi-corner NLDM STA (the CLI / flow entry point)."""
    analyzer = NldmTimingAnalyzer(
        module, constraints, library=library, net_wire_cap_ff=net_wire_cap_ff)
    return analyzer.analyze(
        corners=corners, engine=engine, workers=workers,
        with_critical_path=with_critical_path,
    )
