"""Vectorized multi-corner (arrival, slew) sweep.

One numpy pass per topological level, the same shape as the compiled
simulator's level sweep: gather per-arc source arrivals/slews,
bilinear-interpolate every delay/transition table of the level in one
batched lookup, add derates, and reduce per output net with
``np.maximum.reduceat`` (setup/late) and ``np.minimum.reduceat``
(hold/early).  Process corners ride as extra lanes ``[C, ...]`` on
every array, so analyzing ss/tt/ff costs one sweep, not three.

Bit-identity with :func:`repro.sta.nldm.sweep_scalar_corner` is by
construction: both engines consume the same precomputed ``[C, N]``
load array and table stacks, evaluate the same clamped bilinear
formula in the same operation order (:mod:`repro.liberty.tables`), and
reduce with exact order-insensitive max/min -- so every float64 in
the swept arrays, and therefore the canonical QoR JSON, matches the
per-arc reference for any corner set and worker count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..liberty.tables import FloatArray, lookup_vector
from .analyzer import TimingConstraints

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .nldm import TimingGraph


def sweep_vectorized(
    graph: "TimingGraph",
    loads: FloatArray,
    delay_derates: FloatArray,
    slew_derates: FloatArray,
    constraints: TimingConstraints,
) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray]:
    """Sweep all corners at once.

    ``loads`` is ``[C, N]`` from :func:`repro.sta.nldm.compute_loads`;
    returns ``(arrival_setup, slew_setup, arrival_hold, slew_hold)``,
    each ``[C, N]`` float64.
    """
    n_corners = len(delay_derates)
    n_nets = len(graph.net_names)
    dd = delay_derates[:, None]
    sd = slew_derates[:, None]

    arr_s = np.zeros((n_corners, n_nets), dtype=np.float64)
    arr_h = np.full((n_corners, n_nets), np.inf, dtype=np.float64)
    slew_s = np.full(
        (n_corners, n_nets), constraints.input_slew_ps, dtype=np.float64)
    slew_h = np.full(
        (n_corners, n_nets), constraints.input_slew_ps, dtype=np.float64)
    arr_s[:, graph.port_input_nets] = constraints.input_delay_ps

    if len(graph.flop_q_net):
        q = graph.flop_q_net
        q_loads = loads[:, q]
        q_slews = np.full_like(q_loads, constraints.clock_slew_ps)
        launch = lookup_vector(
            graph.delay_tables, graph.flop_table_id,
            graph.slew_grid, graph.load_grid, q_slews, q_loads,
        ) * dd
        launch_tran = lookup_vector(
            graph.tran_tables, graph.flop_table_id,
            graph.slew_grid, graph.load_grid, q_slews, q_loads,
        ) * sd
        arr_s[:, q] = launch
        arr_h[:, q] = launch
        slew_s[:, q] = launch_tran
        slew_h[:, q] = launch_tran

    for level in graph.levels:
        src = level.src_net
        out = level.out_net
        arc_loads = loads[:, level.out_net_per_arc]

        delays = lookup_vector(
            graph.delay_tables, level.table_id,
            graph.slew_grid, graph.load_grid, slew_s[:, src], arc_loads,
        ) * dd
        trans = lookup_vector(
            graph.tran_tables, level.table_id,
            graph.slew_grid, graph.load_grid, slew_s[:, src], arc_loads,
        ) * sd
        delays_h = lookup_vector(
            graph.delay_tables, level.table_id,
            graph.slew_grid, graph.load_grid, slew_h[:, src], arc_loads,
        ) * dd
        trans_h = lookup_vector(
            graph.tran_tables, level.table_id,
            graph.slew_grid, graph.load_grid, slew_h[:, src], arc_loads,
        ) * sd

        arr_s[:, out] = np.maximum.reduceat(
            arr_s[:, src] + delays, level.group_start, axis=1)
        slew_s[:, out] = np.maximum.reduceat(
            trans, level.group_start, axis=1)
        arr_h[:, out] = np.minimum.reduceat(
            arr_h[:, src] + delays_h, level.group_start, axis=1)
        slew_h[:, out] = np.minimum.reduceat(
            trans_h, level.group_start, axis=1)

    return arr_s, slew_s, arr_h, slew_h
