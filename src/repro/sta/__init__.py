"""Static timing analysis.

Two generations live side by side:

* :class:`TimingAnalyzer` -- the legacy linear delay model
  (intrinsic + R * C), kept for the flow stages that predate the
  characterized library;
* :class:`NldmTimingAnalyzer` -- table-driven multi-corner signoff
  STA over a :class:`repro.liberty.CellLibrary`, with a vectorized
  level-sweep engine and a bit-identical scalar reference.
"""

from .analyzer import (
    PathPoint,
    PathReport,
    TimingAnalyzer,
    TimingConstraints,
    TimingReport,
)
from .nldm import (
    CornerTimingReport,
    MultiCornerTimingReport,
    NldmPathPoint,
    NldmTimingAnalyzer,
    TimingGraph,
    analyze_timing,
    compile_timing_graph,
)

__all__ = [
    "CornerTimingReport",
    "MultiCornerTimingReport",
    "NldmPathPoint",
    "NldmTimingAnalyzer",
    "PathPoint",
    "PathReport",
    "TimingAnalyzer",
    "TimingConstraints",
    "TimingGraph",
    "TimingReport",
    "analyze_timing",
    "compile_timing_graph",
]
