"""Static timing analysis: linear delay model, setup/hold, QoR."""

from .analyzer import (
    PathPoint,
    PathReport,
    TimingAnalyzer,
    TimingConstraints,
    TimingReport,
)

__all__ = [
    "PathPoint",
    "PathReport",
    "TimingAnalyzer",
    "TimingConstraints",
    "TimingReport",
]
