"""Static timing analysis.

Implements the classic block-based STA the paper's sign-off flow uses
("timing-driven placement and routing, physical synthesis, formal
verification and STA QoR check"):

* a linear delay model -- gate delay = intrinsic + Rdrive * Cload,
  with load from pin capacitances plus (estimated or placed) wire
  capacitance;
* forward max/min arrival propagation from launch points (input ports
  and flop clock-to-Q);
* required times from capture points (flop setup/hold and output
  ports);
* worst negative slack (WNS), total negative slack (TNS), per-endpoint
  slack, and critical-path extraction for ECO fixing.

All times are picoseconds; capacitances femtofarads; resistance
kiloohms (1 kOhm * 1 fF = 1 ps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..netlist import Module
from ..netlist.netlist import Instance


@dataclass(frozen=True)
class TimingConstraints:
    """Clock and boundary constraints for one analysis run."""

    clock_period_ps: float
    clock_port: str = "clk"
    setup_ps: float = 120.0
    hold_ps: float = 40.0
    input_delay_ps: float = 0.0
    output_delay_ps: float = 0.0
    clock_uncertainty_ps: float = 50.0
    #: Estimated extra wire capacitance per fanout pin when no placed
    #: wire capacitances are supplied.
    wire_cap_per_fanout_ff: float = 3.0
    #: Transition time assumed at input ports (NLDM table lookups).
    input_slew_ps: float = 40.0
    #: Clock edge transition at flop clock pins (NLDM table lookups).
    clock_slew_ps: float = 30.0

    def __post_init__(self) -> None:
        if self.clock_period_ps <= 0:
            raise ValueError("clock period must be positive")


@dataclass
class PathPoint:
    """One hop on a timing path."""

    instance: str
    cell: str
    net: str
    arrival_ps: float
    delay_ps: float


@dataclass
class PathReport:
    """A complete endpoint timing path."""

    endpoint: str
    endpoint_kind: str  # "flop" | "port"
    slack_ps: float
    arrival_ps: float
    required_ps: float
    points: list[PathPoint] = field(default_factory=list)

    def format_report(self) -> str:
        lines = [
            f"Path to {self.endpoint} ({self.endpoint_kind})",
            f"  arrival {self.arrival_ps:8.1f} ps   required "
            f"{self.required_ps:8.1f} ps   slack {self.slack_ps:8.1f} ps",
        ]
        for point in self.points:
            lines.append(
                f"    {point.instance:24s} {point.cell:12s} -> {point.net:20s}"
                f" +{point.delay_ps:7.1f} @ {point.arrival_ps:8.1f}"
            )
        return "\n".join(lines)


@dataclass
class TimingReport:
    """QoR summary of one STA run."""

    clock_period_ps: float
    wns_ps: float
    tns_ps: float
    violating_endpoints: int
    total_endpoints: int
    hold_wns_ps: float
    hold_violating_endpoints: int
    critical_path: PathReport | None = None

    @property
    def setup_clean(self) -> bool:
        return self.wns_ps >= 0.0

    @property
    def hold_clean(self) -> bool:
        return self.hold_wns_ps >= 0.0

    @property
    def max_frequency_mhz(self) -> float:
        """Highest clock frequency this logic supports."""
        limiting = self.clock_period_ps - self.wns_ps
        if limiting <= 0:
            return float("inf")
        return 1e6 / limiting

    def format_report(self) -> str:
        lines = [
            "STA QoR",
            f"  clock period : {self.clock_period_ps:.0f} ps"
            f" ({1e6 / self.clock_period_ps:.1f} MHz)",
            f"  setup WNS    : {self.wns_ps:8.1f} ps"
            f"   TNS {self.tns_ps:10.1f} ps"
            f"   violations {self.violating_endpoints}/{self.total_endpoints}",
            f"  hold  WNS    : {self.hold_wns_ps:8.1f} ps"
            f"   violations {self.hold_violating_endpoints}",
            f"  max frequency: {self.max_frequency_mhz:.1f} MHz",
        ]
        return "\n".join(lines)


class TimingAnalyzer:
    """Block-based STA over one flat module."""

    def __init__(
        self,
        module: Module,
        constraints: TimingConstraints,
        *,
        net_wire_cap_ff: Mapping[str, float] | None = None,
    ) -> None:
        self.module = module
        self.constraints = constraints
        self.net_wire_cap_ff = dict(net_wire_cap_ff or {})
        self._order = module.topological_combinational_order()

    # -- delay model ----------------------------------------------------

    def load_cap_ff(self, net_name: str) -> float:
        """Capacitive load on a net: pin caps plus wire cap."""
        net = self.module.nets[net_name]
        cap = 0.0
        for ref in net.loads:
            inst = self.module.instances[ref.instance]
            cap += inst.cell.pin(ref.pin).capacitance_ff
        wire = self.net_wire_cap_ff.get(net_name)
        if wire is None:
            wire = self.constraints.wire_cap_per_fanout_ff * max(net.fanout, 1)
        return cap + wire

    def stage_delay_ps(self, inst: Instance, output_pin: str | None = None
                       ) -> float:
        """Delay through one cell driving one of its output nets.

        ``output_pin`` defaults to the first output -- the only output
        for every cell in the default library -- but multi-output
        cells (e.g. a full adder's sum/carry) time each output against
        its own load.
        """
        if output_pin is None:
            output_pin = inst.cell.output_pins[0]
        out_net = inst.net_of(output_pin)
        return (
            inst.cell.intrinsic_delay_ps
            + inst.cell.drive_resistance_kohm * self.load_cap_ff(out_net)
        )

    # -- arrival propagation ----------------------------------------------

    def _launch_arrivals(self, *, hold_mode: bool = False) -> dict[str, float]:
        arrivals: dict[str, float] = {}
        for name, port in self.module.ports.items():
            if port.direction == "input":
                # Unconstrained inputs are excluded from hold checks
                # (standard sign-off practice: IO hold is checked only
                # against explicit input delays).
                arrivals[name] = (
                    float("inf") if hold_mode else self.constraints.input_delay_ps
                )
        for flop in self.module.sequential_instances:
            for out_pin in flop.cell.output_pins:
                q_net = flop.net_of(out_pin)
                arrivals[q_net] = self.stage_delay_ps(flop, out_pin)
        return arrivals

    def compute_arrivals(
        self, *, worst: bool = True, hold_mode: bool = False
    ) -> dict[str, float]:
        """Max (setup) or min (hold) arrival time per net."""
        pick = max if worst else min
        arrivals = self._launch_arrivals(hold_mode=hold_mode)
        for inst in self._order:
            input_arrivals = [
                arrivals.get(inst.net_of(pin), 0.0)
                for pin in inst.cell.input_pins
            ]
            base = pick(input_arrivals) if input_arrivals else 0.0
            # Every output pin propagates -- a multi-output cell (e.g.
            # a full adder) times each output against its own load.
            for out_pin in inst.cell.output_pins:
                out_net = inst.net_of(out_pin)
                arrivals[out_net] = base + self.stage_delay_ps(inst, out_pin)
        return arrivals

    def _endpoints(self) -> list[tuple[str, str, str]]:
        """(key, kind, observed net) for every timing endpoint."""
        points: list[tuple[str, str, str]] = []
        for flop in self.module.sequential_instances:
            points.append((flop.name, "flop", flop.net_of(flop.cell.data_pin)))
        for name, port in self.module.ports.items():
            if port.direction == "output":
                points.append((name, "port", name))
        return points

    # -- analysis ---------------------------------------------------------

    def analyze(self, *, with_critical_path: bool = True) -> TimingReport:
        """Run setup and hold analysis, returning the QoR report."""
        c = self.constraints
        arrivals = self.compute_arrivals(worst=True)
        min_arrivals = self.compute_arrivals(worst=False, hold_mode=True)

        setup_required_flop = (
            c.clock_period_ps - c.setup_ps - c.clock_uncertainty_ps
        )
        setup_required_port = c.clock_period_ps - c.output_delay_ps

        wns = float("inf")
        tns = 0.0
        violating = 0
        hold_wns = float("inf")
        hold_violating = 0
        worst_endpoint: tuple[str, str, str] | None = None
        endpoints = self._endpoints()
        for key, kind, net in endpoints:
            arrival = arrivals.get(net, 0.0)
            required = setup_required_flop if kind == "flop" else setup_required_port
            slack = required - arrival
            if slack < wns:
                wns = slack
                worst_endpoint = (key, kind, net)
            if slack < 0:
                tns += slack
                violating += 1
            if kind == "flop":
                min_arrival = min_arrivals.get(net, float("inf"))
                if min_arrival == float("inf"):
                    continue  # only port-launched paths: not a hold check
                hold_slack = min_arrival - c.hold_ps
                hold_wns = min(hold_wns, hold_slack)
                if hold_slack < 0:
                    hold_violating += 1
        if not endpoints:
            wns = hold_wns = 0.0

        critical = None
        if with_critical_path and worst_endpoint is not None:
            key, kind, net = worst_endpoint
            required = setup_required_flop if kind == "flop" else setup_required_port
            critical = self.extract_path(net, kind=kind, endpoint=key,
                                         arrivals=arrivals, required=required)

        return TimingReport(
            clock_period_ps=c.clock_period_ps,
            wns_ps=wns,
            tns_ps=tns,
            violating_endpoints=violating,
            total_endpoints=len(endpoints),
            hold_wns_ps=hold_wns if hold_wns != float("inf") else 0.0,
            hold_violating_endpoints=hold_violating,
            critical_path=critical,
        )

    def extract_path(
        self,
        net: str,
        *,
        kind: str,
        endpoint: str,
        arrivals: Mapping[str, float] | None = None,
        required: float | None = None,
    ) -> PathReport:
        """Trace the worst path ending at ``net``."""
        if arrivals is None:
            arrivals = self.compute_arrivals(worst=True)
        if required is None:
            c = self.constraints
            required = (
                c.clock_period_ps - c.setup_ps - c.clock_uncertainty_ps
                if kind == "flop"
                else c.clock_period_ps - c.output_delay_ps
            )
        points: list[PathPoint] = []
        current = net
        for _ in range(len(self.module.instances) + 2):
            driver = self.module.nets[current].driver
            if driver is None:
                break
            inst = self.module.instances[driver.instance]
            points.append(
                PathPoint(
                    instance=inst.name,
                    cell=inst.cell.name,
                    net=current,
                    arrival_ps=arrivals.get(current, 0.0),
                    delay_ps=self.stage_delay_ps(inst, driver.pin),
                )
            )
            if inst.cell.is_sequential:
                break
            # Step to the input with the latest arrival.
            best_net, best_arrival = None, -1.0
            for pin in inst.cell.input_pins:
                pin_net = inst.net_of(pin)
                if arrivals.get(pin_net, 0.0) >= best_arrival:
                    best_net = pin_net
                    best_arrival = arrivals.get(pin_net, 0.0)
            if best_net is None:
                break
            current = best_net
        points.reverse()
        arrival = arrivals.get(net, 0.0)
        return PathReport(
            endpoint=endpoint,
            endpoint_kind=kind,
            slack_ps=required - arrival,
            arrival_ps=arrival,
            required_ps=required,
            points=points,
        )

    def endpoint_slacks(self) -> dict[str, float]:
        """Setup slack for every endpoint (flop name or output port)."""
        c = self.constraints
        arrivals = self.compute_arrivals(worst=True)
        slacks: dict[str, float] = {}
        for key, kind, net in self._endpoints():
            required = (
                c.clock_period_ps - c.setup_ps - c.clock_uncertainty_ps
                if kind == "flop"
                else c.clock_period_ps - c.output_delay_ps
            )
            slacks[key] = required - arrivals.get(net, 0.0)
        return slacks
