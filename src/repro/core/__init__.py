"""The end-to-end SOC design-service flow."""

from .flow import (
    FLOW_STAGE_DEFS,
    FLOW_STAGES,
    DesignServiceFlow,
    FlowReport,
    FlowStage,
    flow_stage_order,
)

__all__ = [
    "FLOW_STAGE_DEFS",
    "FLOW_STAGES",
    "DesignServiceFlow",
    "FlowReport",
    "FlowStage",
    "flow_stage_order",
]
