"""The end-to-end SOC design-service flow."""

from .flow import DesignServiceFlow, FlowReport

__all__ = ["DesignServiceFlow", "FlowReport"]
