"""repro -- a simulated SOC design-service flow.

Reproduction of "Integration, Verification and Layout of a Complex
Multimedia SOC" (Chen, Lin & Lin, DATE 2005): a Python model of the
complete design-service lifecycle of the paper's digital-still-camera
controller, from IP integration through verification, DFT, physical
implementation, packaging, and mass-production yield ramp.

Subpackages
-----------
netlist        gate-level netlist IR, cell library, generators
lint           static design-rule analysis: structural, CDC, X, scan, SoC map
sim            four-value logic simulation, vendor dialects
verification   testbenches, regression running, cross-simulator compare
formal         equivalence checking
jpeg           baseline JPEG codec + hardware pipeline model
mbist          memory BIST: fault models, March tests, BIST generator
dft            scan insertion, fault simulation, ATPG
sta            static timing analysis
physical       floorplan, placement, routing
package        TFBGA package model and pin assignment
eco            engineering change orders and design versioning
ip             IP catalogue and integration quality model
manufacturing  yield, wafer, probe, ramp, die cost
reliability    qualification stress tests
fa             failure analysis workflow
project        project/schedule simulation
dsc            digital still camera reference application
core           the end-to-end design-service flow
perf           stage timers, throughput counters, process fan-out
"""

__version__ = "1.0.0"
