"""Digital-still-camera reference application.

Exercises the SoC model end-to-end the way the product did: a Bayer
sensor frame is synthesised, demosaicked by the image pipeline,
JPEG-compressed (real codec from :mod:`repro.jpeg`), and written to an
SD card -- with the shot-to-shot time budget the paper's requirement
("3M pixels @ 0.1Sec") imposes on the JPEG stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..jpeg import HardwareJpegModel, encode_color, psnr
from ..jpeg.codec import EncodeStats


@dataclass(frozen=True)
class SensorConfig:
    """A CCD/CMOS sensor grade."""

    name: str
    width: int
    height: int
    readout_mpix_per_s: float = 40.0
    noise_sigma: float = 2.5

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6

    @property
    def readout_seconds(self) -> float:
        return self.width * self.height / (self.readout_mpix_per_s * 1e6)


SENSOR_2MP = SensorConfig("2MP CCD", 1600, 1200)
SENSOR_3MP = SensorConfig("3MP CCD", 2048, 1536)


def synthesize_bayer_frame(
    sensor: SensorConfig, *, seed: int = 0
) -> np.ndarray:
    """A synthetic RGGB Bayer mosaic of a photographic-looking scene."""
    rng = np.random.default_rng(seed)
    height, width = sensor.height, sensor.width
    y, x = np.mgrid[0:height, 0:width].astype(np.float64)
    # Scene: sky gradient + ground texture + a bright disc (sun).
    red = 120 + 80 * np.sin(x / 211.0) + 20 * np.cos(y / 97.0)
    green = 110 + 70 * np.cos(x / 157.0 + y / 311.0)
    blue = 140 + 90 * (y / height)
    disc = ((x - width * 0.7) ** 2 + (y - height * 0.25) ** 2
            < (0.06 * width) ** 2)
    for plane in (red, green, blue):
        plane[disc] = 250.0
    mosaic = np.empty((height, width), dtype=np.float64)
    mosaic[0::2, 0::2] = red[0::2, 0::2]      # R
    mosaic[0::2, 1::2] = green[0::2, 1::2]    # G
    mosaic[1::2, 0::2] = green[1::2, 0::2]    # G
    mosaic[1::2, 1::2] = blue[1::2, 1::2]     # B
    mosaic += rng.normal(0, sensor.noise_sigma, size=mosaic.shape)
    return np.clip(mosaic, 0, 255)


def demosaic_bilinear(mosaic: np.ndarray) -> np.ndarray:
    """Bilinear RGGB demosaic to full-resolution RGB."""
    height, width = mosaic.shape
    red = np.zeros_like(mosaic)
    green = np.zeros_like(mosaic)
    blue = np.zeros_like(mosaic)
    red[0::2, 0::2] = mosaic[0::2, 0::2]
    green[0::2, 1::2] = mosaic[0::2, 1::2]
    green[1::2, 0::2] = mosaic[1::2, 0::2]
    blue[1::2, 1::2] = mosaic[1::2, 1::2]

    def fill(plane: np.ndarray) -> np.ndarray:
        # Average of the nonzero neighbours in a 3x3 window.
        padded = np.pad(plane, 1, mode="edge")
        mask = np.pad((plane > 0).astype(np.float64), 1, mode="edge")
        total = np.zeros_like(plane)
        count = np.zeros_like(plane)
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                total += padded[1 + dy:1 + dy + height,
                                1 + dx:1 + dx + width]
                count += mask[1 + dy:1 + dy + height,
                              1 + dx:1 + dx + width]
        filled = plane.copy()
        holes = plane == 0
        with np.errstate(invalid="ignore", divide="ignore"):
            estimate = np.where(count > 0, total / np.maximum(count, 1), 0)
        filled[holes] = estimate[holes]
        return filled

    rgb = np.stack([fill(red), fill(green), fill(blue)], axis=-1)
    return np.clip(rgb, 0, 255)


@dataclass(frozen=True)
class SdCardModel:
    """Write-path model of the SD/MMC card interface."""

    write_mb_per_s: float = 2.0   # a 2004-era SD card
    command_overhead_ms: float = 4.0

    def write_seconds(self, n_bytes: int) -> float:
        return (self.command_overhead_ms / 1e3
                + n_bytes / (self.write_mb_per_s * 1e6))


@dataclass
class ShotTiming:
    """Per-stage time for one captured photo."""

    sensor_readout_s: float
    demosaic_s: float
    jpeg_encode_s: float
    card_write_s: float

    @property
    def total_s(self) -> float:
        return (self.sensor_readout_s + self.demosaic_s
                + self.jpeg_encode_s + self.card_write_s)

    def format_report(self) -> str:
        return (
            f"readout {self.sensor_readout_s * 1e3:6.1f} ms | "
            f"demosaic {self.demosaic_s * 1e3:6.1f} ms | "
            f"jpeg {self.jpeg_encode_s * 1e3:6.1f} ms | "
            f"card {self.card_write_s * 1e3:6.1f} ms | "
            f"total {self.total_s * 1e3:6.1f} ms"
        )


@dataclass
class ShotResult:
    """One simulated photograph."""

    sensor: SensorConfig
    jpeg_stream: bytes
    encode_stats: EncodeStats
    timing: ShotTiming
    quality_psnr_db: float


def simulate_shot(
    *,
    sensor: SensorConfig = SENSOR_3MP,
    quality: int = 85,
    jpeg_engine: HardwareJpegModel | None = None,
    card: SdCardModel | None = None,
    seed: int = 0,
    downsample_for_speed: int = 4,
) -> ShotResult:
    """Capture one photo through the full pipeline.

    ``downsample_for_speed`` runs the *algorithmic* path (demosaic +
    real JPEG encode) on a 1/n-scale frame to keep runtime sane, while
    the *timing* path uses the full-resolution hardware model -- the
    codec is resolution-independent, so image quality statistics remain
    representative.
    """
    engine = jpeg_engine or HardwareJpegModel()
    card = card or SdCardModel()
    small = SensorConfig(
        sensor.name,
        sensor.width // downsample_for_speed,
        sensor.height // downsample_for_speed,
        sensor.readout_mpix_per_s,
        sensor.noise_sigma,
    )
    mosaic = synthesize_bayer_frame(small, seed=seed)
    rgb = demosaic_bilinear(mosaic).astype(np.uint8)
    stream, stats = encode_color(rgb, quality=quality)
    from ..jpeg import decode

    decoded = decode(stream)
    quality_db = psnr(rgb, decoded)

    # Timing at FULL resolution.
    full_bytes = int(len(stream) * downsample_for_speed**2)
    # Demosaic runs in the image pipeline at ~1 pixel/clock @ 66 MHz.
    demosaic_s = sensor.width * sensor.height / 66e6
    timing = ShotTiming(
        sensor_readout_s=sensor.readout_seconds,
        demosaic_s=demosaic_s,
        jpeg_encode_s=engine.encode_seconds(sensor.width, sensor.height),
        card_write_s=card.write_seconds(full_bytes),
    )
    return ShotResult(
        sensor=sensor,
        jpeg_stream=stream,
        encode_stats=stats,
        timing=timing,
        quality_psnr_db=quality_db,
    )


def simulate_burst(
    count: int,
    *,
    sensor: SensorConfig = SENSOR_3MP,
    seed: int = 0,
    **kwargs,
) -> list[ShotResult]:
    """A burst of shots (distinct scenes via the seed)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        simulate_shot(sensor=sensor, seed=seed + index, **kwargs)
        for index in range(count)
    ]
