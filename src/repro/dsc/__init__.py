"""Digital still camera reference application."""

from .playback import (
    DisplayMode,
    LCD_15IN,
    PlaybackResult,
    TV_NTSC,
    TV_PAL,
    downscale_nearest,
    play_back,
)
from .camera import (
    SENSOR_2MP,
    SENSOR_3MP,
    SdCardModel,
    SensorConfig,
    ShotResult,
    ShotTiming,
    demosaic_bilinear,
    simulate_burst,
    simulate_shot,
    synthesize_bayer_frame,
)

__all__ = [
    "SENSOR_2MP",
    "SENSOR_3MP",
    "SdCardModel",
    "SensorConfig",
    "ShotResult",
    "ShotTiming",
    "demosaic_bilinear",
    "simulate_burst",
    "simulate_shot",
    "synthesize_bayer_frame",
    "DisplayMode",
    "LCD_15IN",
    "PlaybackResult",
    "TV_NTSC",
    "TV_PAL",
    "downscale_nearest",
    "play_back",
]
