"""Playback path: JPEG review on the LCD and the TV output.

The Section-2 IP list includes an LCD interface (+8-bit DAC) and an
NTSC/PAL TV encoder (+10-bit video DAC) because a camera also *plays
back*: decode the stored JPEG, downscale to the display, and hit the
display's refresh cadence.  This module models that path, reusing the
real codec for correctness and the hardware engine model for timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..jpeg import HardwareJpegModel, decode
from ..jpeg.codec import JpegError


@dataclass(frozen=True)
class DisplayMode:
    """One display the DSC can drive."""

    name: str
    width: int
    height: int
    refresh_hz: float
    interlaced: bool = False

    @property
    def frame_budget_s(self) -> float:
        return 1.0 / self.refresh_hz


#: The camera's built-in 1.5" LCD.
LCD_15IN = DisplayMode("LCD 1.5in", 280, 220, refresh_hz=60.0)

#: Composite TV outputs via the NTSC/PAL encoder.
TV_NTSC = DisplayMode("NTSC", 720, 480, refresh_hz=29.97, interlaced=True)
TV_PAL = DisplayMode("PAL", 720, 576, refresh_hz=25.0, interlaced=True)


def downscale_nearest(image: np.ndarray, width: int, height: int
                      ) -> np.ndarray:
    """Nearest-neighbour scaler (what the LCD path hardware does)."""
    if width < 1 or height < 1:
        raise ValueError("target dimensions must be positive")
    src_h, src_w = image.shape[:2]
    rows = (np.arange(height) * src_h // height).clip(0, src_h - 1)
    cols = (np.arange(width) * src_w // width).clip(0, src_w - 1)
    return image[rows][:, cols]


@dataclass
class PlaybackResult:
    """One review-mode frame."""

    display: DisplayMode
    decode_seconds: float
    scale_seconds: float
    frame: np.ndarray
    meets_refresh: bool

    @property
    def total_seconds(self) -> float:
        return self.decode_seconds + self.scale_seconds

    def format_report(self) -> str:
        return (
            f"{self.display.name:9s} decode {self.decode_seconds * 1e3:6.1f}"
            f" ms + scale {self.scale_seconds * 1e3:5.1f} ms"
            f" (budget {self.display.frame_budget_s * 1e3:5.1f} ms)"
            f" -> {'OK' if self.meets_refresh else 'DROPS FRAMES'}"
        )


def play_back(
    jpeg_stream: bytes,
    *,
    display: DisplayMode = LCD_15IN,
    engine: HardwareJpegModel | None = None,
    source_width: int | None = None,
    source_height: int | None = None,
) -> PlaybackResult:
    """Decode a stored JPEG and scale it to a display.

    The pixels come from the real decoder; the timing uses the
    hardware engine at full stored resolution (pass ``source_width``/
    ``source_height`` when the stream is a scaled-down stand-in).
    """
    engine = engine or HardwareJpegModel()
    try:
        image = decode(jpeg_stream)
    except (JpegError, Exception) as exc:
        raise JpegError(f"cannot play back stream: {exc}") from exc
    height, width = image.shape[:2]
    timing_w = source_width or width
    timing_h = source_height or height
    # Decode pipeline: same block throughput as encode.
    decode_s = engine.encode_seconds(timing_w, timing_h)
    frame = downscale_nearest(np.asarray(image), display.width,
                              display.height)
    # Scaler: one output pixel per clock.
    scale_s = display.width * display.height / (engine.clock_mhz * 1e6)
    # Review mode shows a still: the budget is one refresh period for
    # the *scaling/display* path; decode may take a few frames but the
    # displayed frame must then sustain refresh.
    meets = scale_s <= display.frame_budget_s
    return PlaybackResult(
        display=display,
        decode_seconds=decode_s,
        scale_seconds=scale_s,
        frame=frame,
        meets_refresh=meets,
    )
