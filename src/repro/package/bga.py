"""BGA package model (TFBGA256) and die pad ring.

The DSC controller shipped in a TFBGA256.  For substrate-routability
analysis each ball and each die pad is reduced to its angle around the
package/die centre: a signal's substrate trace is (to first order) a
chord from its bond finger angle to its ball angle, and two traces
that *interleave* angularly must cross somewhere in the substrate --
the standard escape-routing abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: JEDEC ball-row letters (I, O, Q, S, X, Z skipped).
_ROW_LETTERS = "ABCDEFGHJKLMNPRTUVWY"


@dataclass(frozen=True)
class Ball:
    """One package ball."""

    name: str
    row: int
    col: int
    x_mm: float
    y_mm: float

    @property
    def angle(self) -> float:
        """Angle (radians, 0..2pi) around the package centre."""
        return math.atan2(self.y_mm, self.x_mm) % (2 * math.pi)

    @property
    def radius_mm(self) -> float:
        return math.hypot(self.x_mm, self.y_mm)


class BgaPackage:
    """A square BGA with a full ball grid."""

    def __init__(self, name: str, rows: int, cols: int, pitch_mm: float
                 ) -> None:
        if rows > len(_ROW_LETTERS):
            raise ValueError("too many rows for JEDEC lettering")
        self.name = name
        self.rows = rows
        self.cols = cols
        self.pitch_mm = pitch_mm
        self.balls: dict[str, Ball] = {}
        x_offset = (cols - 1) / 2
        y_offset = (rows - 1) / 2
        for row in range(rows):
            for col in range(cols):
                ball_name = f"{_ROW_LETTERS[row]}{col + 1}"
                self.balls[ball_name] = Ball(
                    name=ball_name,
                    row=row,
                    col=col,
                    x_mm=(col - x_offset) * pitch_mm,
                    y_mm=(y_offset - row) * pitch_mm,
                )

    def __len__(self) -> int:
        return len(self.balls)

    def ball(self, name: str) -> Ball:
        try:
            return self.balls[name]
        except KeyError:
            raise KeyError(f"no ball {name!r} on {self.name}") from None

    def center_balls(self, ring: int) -> list[str]:
        """Balls within ``ring`` positions of the grid centre --
        conventionally assigned to power/ground."""
        names = []
        for ball in self.balls.values():
            if (abs(ball.row - (self.rows - 1) / 2) <= ring
                    and abs(ball.col - (self.cols - 1) / 2) <= ring):
                names.append(ball.name)
        return sorted(names)

    def signal_balls(self, power_ring: int = 2) -> list[str]:
        """Assignable signal balls (non-power), outermost first.

        Outer balls have the shortest escape routes, so they are the
        preferred signal locations.
        """
        power = set(self.center_balls(power_ring))
        candidates = [b for b in self.balls.values() if b.name not in power]
        candidates.sort(key=lambda b: -b.radius_mm)
        return [b.name for b in candidates]


def tfbga256() -> BgaPackage:
    """The paper's package: 16x16 TFBGA, 0.8 mm pitch."""
    return BgaPackage("TFBGA256", rows=16, cols=16, pitch_mm=0.8)


@dataclass
class DiePadRing:
    """Bond pads in order around the die (counter-clockwise from the
    bottom-left corner)."""

    signals: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.signals) != len(set(self.signals)):
            raise ValueError("duplicate signals in pad ring")

    def __len__(self) -> int:
        return len(self.signals)

    def pad_angle(self, signal: str) -> float:
        """Angle of the signal's bond pad around the die centre."""
        index = self.signals.index(signal)
        return 2 * math.pi * index / len(self.signals)

    def angles(self) -> dict[str, float]:
        step = 2 * math.pi / len(self.signals)
        return {s: i * step for i, s in enumerate(self.signals)}


#: Signal groups of the DSC controller pad ring (Section 2's IP list),
#: in a plausible placement order around the die.
DSC_SIGNAL_GROUPS: tuple[tuple[str, int], ...] = (
    ("sdram_a", 13),      # SDRAM address
    ("sdram_d", 32),      # SDRAM data
    ("sdram_ctl", 9),     # RAS/CAS/WE/CS/CKE/DQM/CLK
    ("sensor_d", 12),     # CCD/CMOS sensor input
    ("sensor_ctl", 6),
    ("lcd_d", 18),        # LCD interface + 8-bit DAC feed
    ("lcd_ctl", 5),
    ("tv_dac", 10),       # 10-bit video DAC analogue out
    ("usb", 4),           # DP/DM + control
    ("sd_card", 9),       # SD/MMC host
    ("flash", 16),        # external flash bus
    ("uart_gpio", 14),
    ("strobe_af", 6),     # camera strobe / autofocus
    ("clk_pll", 6),       # crystals, PLL supplies
    ("jtag_test", 8),     # JTAG + scan/test controls
)


def dsc_pad_ring() -> DiePadRing:
    """The DSC controller's ~170-signal pad ring."""
    signals: list[str] = []
    for group, count in DSC_SIGNAL_GROUPS:
        for index in range(count):
            signals.append(f"{group}{index}")
    return DiePadRing(signals)
